#!/usr/bin/env bash
# Regenerates every figure and ablation of EXPERIMENTS.md into results/.
# Usage: ./run_all_experiments.sh [results_dir]
set -euo pipefail

out="${1:-results}"
mkdir -p "$out"

figures=(fig3 fig4 fig5 fig6 fig7 fig8 fig9)
ablations=(
  ablation_theta ablation_noise ablation_m ablation_init ablation_policy
  ablation_origin ablation_representation ablation_freshness
  ablation_probing ablation_workload ablation_maintenance ablation_churn
)

cargo build --release -p ecg-bench --bins

for bin in "${figures[@]}" "${ablations[@]}"; do
  echo "=== $bin"
  cargo run --release -q -p ecg-bench --bin "$bin" | tee "$out/$bin.txt"
done

echo "all outputs written to $out/"
