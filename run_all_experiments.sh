#!/usr/bin/env bash
# Regenerates every figure and ablation of EXPERIMENTS.md into results/.
#
# Usage: ./run_all_experiments.sh [results_dir]
#        ./run_all_experiments.sh --check
#
# --check regenerates everything into a temporary directory and diffs it
# against the committed copies under results/, exiting non-zero on any
# drift. Every experiment is seeded, so the outputs are byte-stable; a
# diff means a code change altered experiment behaviour.
set -euo pipefail

check=0
out="results"
if [[ "${1:-}" == "--check" ]]; then
  check=1
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' EXIT
elif [[ -n "${1:-}" ]]; then
  out="$1"
fi

figures=(fig3 fig4 fig5 fig6 fig7 fig8 fig9)
ablations=(
  ablation_theta ablation_noise ablation_m ablation_init ablation_policy
  ablation_origin ablation_representation ablation_freshness
  ablation_probing ablation_workload ablation_maintenance ablation_churn
  ablation_resilience ablation_placement ablation_lifecycle
)

cargo build --release -p ecg-bench --bins

root="$(pwd)"
# Some binaries (ablation_churn) write side files under results/ relative
# to their working directory; in check mode they run inside the temp dir
# so the working tree is never touched.
mkdir -p "$out" "$out/results"

for bin in "${figures[@]}" "${ablations[@]}"; do
  echo "=== $bin"
  # ablation_maintenance and ablation_placement double as observability
  # goldens: their metrics JSON is committed under results/ and
  # re-checked for drift.
  extra=()
  case "$bin" in
    ablation_maintenance|ablation_placement)
      extra=(--metrics-out "metrics_$bin.json")
      ;;
  esac
  if [[ $check -eq 1 ]]; then
    (cd "$out" && "$root/target/release/$bin" "${extra[@]}" > "$bin.txt")
  else
    if [[ ${#extra[@]} -gt 0 ]]; then
      extra=(--metrics-out "$out/metrics_$bin.json")
    fi
    cargo run --release -q -p ecg-bench --bin "$bin" -- "${extra[@]}" | tee "$out/$bin.txt"
  fi
done

if [[ $check -eq 1 ]]; then
  status=0
  for committed in results/*; do
    name="$(basename "$committed")"
    fresh="$out/$name"
    [[ -f "$fresh" ]] || fresh="$out/results/$name"
    if [[ ! -f "$fresh" ]]; then
      echo "MISSING: $name was not regenerated" >&2
      status=1
      continue
    fi
    if ! diff -q "$committed" "$fresh" > /dev/null; then
      echo "DRIFT: $name differs from the committed copy:" >&2
      diff -u "$committed" "$fresh" | head -40 >&2 || true
      status=1
    fi
  done
  if [[ $status -eq 0 ]]; then
    echo "check passed: regenerated outputs match results/ byte for byte"
  fi
  exit $status
fi

# Observability summary: pretty-print the captured metrics document.
metrics="$out/metrics_ablation_maintenance.json"
if [[ -f "$metrics" ]] && command -v python3 > /dev/null; then
  echo
  echo "=== observability summary ($metrics)"
  python3 - "$metrics" <<'PY'
import json, sys

doc = json.load(open(sys.argv[1]))
metrics = doc["metrics"]
rows = [("counter", k, str(v)) for k, v in metrics["counters"].items()]
rows += [("gauge", k, f"{v:g}") for k, v in metrics["gauges"].items()]
rows += [
    ("histogram", k, f"n={h['count']} p50={h['p50']:g} p99={h['p99']:g}")
    for k, h in metrics["histograms"].items()
]

def walk(nodes, depth=0):
    for p in nodes:
        rows.append(("phase", "  " * depth + p["name"], f"calls={p['calls']} work={p['work']:g}"))
        walk(p["children"], depth + 1)

walk(doc["phases"])
rows.append(("trace", "events", str(doc["trace"]["recorded"])))
width = max(len(k) for _, k, _ in rows)
for kind, key, val in rows:
    print(f"{kind:<9} {key:<{width}}  {val}")
PY
fi

echo "all outputs written to $out/"
