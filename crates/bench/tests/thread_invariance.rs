//! End-to-end thread-count invariance: the experiment binaries must
//! emit byte-identical output whatever `ECG_THREADS` says.
//!
//! This is the binary-level counterpart of the in-process invariance
//! tests in `ecg-par`, `ecg-clustering`, `ecg-coords`, and
//! `ecg-workload`: one figure binary and one ablation binary (the
//! observability golden, including its `--metrics-out` document) run at
//! 1 and 4 threads and their stdout bytes are compared. Parallelism may
//! change time, never results.

use std::path::PathBuf;
use std::process::Command;

fn run(exe: &str, threads: &str, args: &[&str]) -> Vec<u8> {
    let out = Command::new(exe)
        .args(args)
        .env("ECG_THREADS", threads)
        .output()
        .unwrap_or_else(|e| panic!("failed to run {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} with ECG_THREADS={threads} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn scratch_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ecg_thread_invariance_{}_{name}",
        std::process::id()
    ))
}

#[test]
fn fig_binary_stdout_is_thread_count_invariant() {
    let exe = env!("CARGO_BIN_EXE_fig6");
    let one = run(exe, "1", &[]);
    let four = run(exe, "4", &[]);
    assert!(!one.is_empty(), "fig6 produced no output");
    assert_eq!(one, four, "fig6 stdout differs between 1 and 4 threads");
}

#[test]
fn ablation_binary_stdout_and_metrics_are_thread_count_invariant() {
    let exe = env!("CARGO_BIN_EXE_ablation_maintenance");
    let metrics_one = scratch_path("metrics_t1.json");
    let metrics_four = scratch_path("metrics_t4.json");
    let one = run(
        exe,
        "1",
        &["--metrics-out", metrics_one.to_str().expect("utf-8 path")],
    );
    let four = run(
        exe,
        "4",
        &["--metrics-out", metrics_four.to_str().expect("utf-8 path")],
    );
    assert!(!one.is_empty(), "ablation_maintenance produced no output");
    assert_eq!(
        one, four,
        "ablation_maintenance stdout differs between 1 and 4 threads"
    );
    let doc_one = std::fs::read(&metrics_one).expect("metrics written at 1 thread");
    let doc_four = std::fs::read(&metrics_four).expect("metrics written at 4 threads");
    assert!(!doc_one.is_empty(), "empty metrics document");
    assert_eq!(
        doc_one, doc_four,
        "metrics JSON differs between 1 and 4 threads"
    );
    let _ = std::fs::remove_file(&metrics_one);
    let _ = std::fs::remove_file(&metrics_four);
}
