//! Criterion bench: K-means clustering over landmark feature vectors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecg_clustering::medoids::pam;
use ecg_clustering::{kmeans, kmeans_capped, FeatureMatrix, Initializer, KmeansConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn points(n: usize, dim: usize, seed: u64) -> FeatureMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = FeatureMatrix::with_capacity(n, dim);
    for _ in 0..n {
        let row: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..200.0)).collect();
        m.push_row(&row);
    }
    m
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    for &n in &[100usize, 500] {
        for &k in &[10usize, 50] {
            let pts = points(n, 25, 42);
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), format!("k{k}")),
                &(pts, k),
                |b, (pts, k)| {
                    let mut rng = StdRng::seed_from_u64(7);
                    b.iter(|| {
                        kmeans(
                            pts,
                            KmeansConfig::new(*k),
                            &Initializer::RandomRepresentative,
                            &mut rng,
                        )
                        .expect("clustering")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_initializers(c: &mut Criterion) {
    let pts = points(500, 25, 42);
    let weights: Vec<f64> = (0..500).map(|i| 1.0 / (1.0 + i as f64)).collect();
    let mut group = c.benchmark_group("kmeans_init");
    for (name, init) in [
        ("uniform", Initializer::RandomRepresentative),
        ("weighted", Initializer::Weighted(weights)),
        ("kmeans++", Initializer::KmeansPlusPlus),
    ] {
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| init.select(&pts, 50, &mut rng).expect("seeding"))
        });
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    let pts = points(300, 25, 42);
    let mut group = c.benchmark_group("clustering_variants");
    group.sample_size(10);
    group.bench_function("kmeans", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            kmeans(
                &pts,
                KmeansConfig::new(30),
                &Initializer::RandomRepresentative,
                &mut rng,
            )
            .expect("clustering")
        })
    });
    group.bench_function("kmeans_capped", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            kmeans_capped(
                &pts,
                KmeansConfig::new(30),
                &Initializer::RandomRepresentative,
                15,
                &mut rng,
            )
            .expect("clustering")
        })
    });
    group.bench_function("pam", |b| {
        let dist = |a: usize, bb: usize| -> f64 {
            pts[a]
                .iter()
                .zip(&pts[bb])
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| pam(pts.len(), 30, dist, 3, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_kmeans, bench_initializers, bench_variants);
criterion_main!(benches);
