//! Criterion bench: GNP Euclidean embedding vs. feature vectors.
//!
//! Quantifies the paper's §5.2 cost argument: Euclidean-space mapping is
//! "computationally intensive" while feature vectors are nearly free.

use criterion::{criterion_group, criterion_main, Criterion};
use ecg_bench::Scenario;
use ecg_coords::{build_feature_vectors, embed_network, GnpConfig, ProbeConfig, Prober};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_representations(c: &mut Criterion) {
    let network = Scenario::network_only(100, 11);
    let landmarks: Vec<usize> = (0..15).collect();
    let nodes: Vec<usize> = (16..=100).collect();

    let mut group = c.benchmark_group("position_representation");
    group.sample_size(10);
    group.bench_function("feature_vectors", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let prober = Prober::new(network.rtt_matrix(), ProbeConfig::default());
            build_feature_vectors(&prober, &nodes, &landmarks, &mut rng)
        })
    });
    group.bench_function("gnp_embedding", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GnpConfig::default()
            .dimensions(7)
            .restarts(1)
            .max_iterations(400);
        b.iter(|| {
            let prober = Prober::new(network.rtt_matrix(), ProbeConfig::default());
            embed_network(cfg, &prober, &nodes, &landmarks, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_representations);
criterion_main!(benches);
