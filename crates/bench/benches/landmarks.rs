//! Criterion bench: landmark selection and full group formation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecg_bench::Scenario;
use ecg_coords::{ProbeConfig, Prober};
use ecg_core::{select_landmarks, GfCoordinator, LandmarkSelector, SchemeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_selectors(c: &mut Criterion) {
    let network = Scenario::network_only(300, 5);
    let mut group = c.benchmark_group("landmark_selection");
    for (name, selector) in [
        ("greedy", LandmarkSelector::GreedyMaxMin),
        ("random", LandmarkSelector::Random),
        ("min_dist", LandmarkSelector::MinDist),
    ] {
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| {
                let prober = Prober::new(network.rtt_matrix(), ProbeConfig::default());
                select_landmarks(&prober, selector, 25, 4, &mut rng).expect("selection")
            })
        });
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("form_groups");
    group.sample_size(10);
    for &n in &[100usize, 300] {
        let network = Scenario::network_only(n, 6);
        for (name, scheme) in [
            ("sl", SchemeConfig::sl(n / 10)),
            ("sdsl", SchemeConfig::sdsl(n / 10, 1.0)),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &network, |b, network| {
                let coord = GfCoordinator::new(scheme.clone());
                let mut rng = StdRng::seed_from_u64(4);
                b.iter(|| coord.form_groups(network, &mut rng).expect("formation"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_selectors, bench_full_pipeline);
criterion_main!(benches);
