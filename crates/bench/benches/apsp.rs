//! Criterion bench: topology generation and all-pairs RTT computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecg_topology::shortest_path::{all_pairs_rtt, dijkstra};
use ecg_topology::{NodeId, TransitStubConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_generate");
    for &stubs in &[2usize, 4, 8] {
        let cfg = TransitStubConfig::default().stub_domains_per_transit_node(stubs);
        group.bench_with_input(
            BenchmarkId::from_parameter(cfg.total_nodes()),
            &cfg,
            |b, cfg| {
                b.iter(|| cfg.generate(&mut StdRng::seed_from_u64(1)));
            },
        );
    }
    group.finish();
}

fn bench_dijkstra(c: &mut Criterion) {
    let topo = TransitStubConfig::default().generate(&mut StdRng::seed_from_u64(2));
    c.bench_function("dijkstra_400_nodes", |b| {
        b.iter(|| dijkstra(topo.graph(), NodeId(0)))
    });
}

fn bench_apsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_pairs_rtt");
    group.sample_size(10);
    for &stubs in &[2usize, 4] {
        let cfg = TransitStubConfig::default().stub_domains_per_transit_node(stubs);
        let topo = cfg.generate(&mut StdRng::seed_from_u64(3));
        group.bench_with_input(
            BenchmarkId::from_parameter(cfg.total_nodes()),
            &topo,
            |b, topo| {
                b.iter(|| all_pairs_rtt(topo.graph()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_dijkstra, bench_apsp);
criterion_main!(benches);
