//! Criterion bench: simulator replay throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ecg_bench::Scenario;
use ecg_core::{GfCoordinator, SchemeConfig};
use ecg_sim::{simulate, GroupMap};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_replay");
    group.sample_size(10);
    for &caches in &[50usize, 150] {
        let scenario = Scenario::build(caches, 60_000.0, 13);
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = GfCoordinator::new(SchemeConfig::sl(caches / 10))
            .form_groups(&scenario.network, &mut rng)
            .expect("formation");
        let map = GroupMap::new(caches, outcome.groups().to_vec()).expect("groups");
        let config = scenario.sim_config(60_000.0);
        group.throughput(Throughput::Elements(scenario.trace.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(caches),
            &scenario,
            |b, scenario| {
                b.iter(|| {
                    simulate(
                        &scenario.network,
                        &map,
                        &scenario.workload.catalog,
                        &scenario.trace,
                        config,
                    )
                    .expect("simulation")
                })
            },
        );
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    use ecg_workload::SportingEventConfig;
    let mut group = c.benchmark_group("workload_generate");
    group.sample_size(10);
    group.bench_function("sporting_event_100c_60s", |b| {
        b.iter(|| {
            SportingEventConfig::default()
                .caches(100)
                .duration_ms(60_000.0)
                .generate(&mut StdRng::seed_from_u64(3))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_replay, bench_workload_generation);
criterion_main!(benches);
