//! Ablation: churn tolerance of the formed groupings.
//!
//! The paper evaluates group formation over a healthy network. This
//! experiment injects churn — random cache crashes and recoveries, a
//! slice of them permanent retirements — and compares how SL, SDSL, and
//! a random grouping degrade as the churn rate rises: average latency
//! split into healthy and degraded windows, failovers to the origin,
//! and (for the maintained schemes) the interaction-cost drift after
//! replaying the same churn through incremental retire/readmit
//! maintenance.
//!
//! Besides the usual text table, the full per-cell simulation reports
//! are written to `results/ablation_churn.json` for downstream
//! analysis.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin ablation_churn [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, par_map, MetricsSink, Scenario, Table};
use ecg_coords::ProbeConfig;
use ecg_core::{GfCoordinator, GroupMaintainer, SchemeConfig};
use ecg_faults::{report_to_json, ChurnConfig, ChurnDriver, FaultPlan};
use ecg_obs::Obs;
use ecg_sim::{simulate_with_faults_observed, GroupMap, SimReport};
use ecg_topology::CacheId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CACHES: usize = 60;
const GROUPS: usize = 8;
const DURATION_MS: f64 = 120_000.0;
const MEAN_DOWNTIME_MS: f64 = 15_000.0;
const RETIREMENT_FRACTION: f64 = 0.1;
const CHURN_RATES: [f64; 4] = [0.0, 2.0, 6.0, 12.0];

type Scheme = (&'static str, Vec<Vec<CacheId>>, Option<GroupMaintainer>);

struct Cell {
    scheme: &'static str,
    churn_per_hour: f64,
    groups: Vec<Vec<CacheId>>,
    maintainer: Option<GroupMaintainer>,
    plan: FaultPlan,
}

struct CellResult {
    scheme: &'static str,
    churn_per_hour: f64,
    report: SimReport,
    max_drift: Option<f64>,
}

/// A size-balanced random partition — the "no scheme" baseline.
fn random_groups(caches: usize, k: usize, rng: &mut StdRng) -> Vec<Vec<CacheId>> {
    let mut ids: Vec<CacheId> = (0..caches).map(CacheId).collect();
    for i in (1..ids.len()).rev() {
        ids.swap(i, rng.gen_range(0..=i));
    }
    let mut groups = vec![Vec::new(); k];
    for (i, id) in ids.into_iter().enumerate() {
        groups[i % k].push(id);
    }
    groups
}

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    println!(
        "Ablation: grouping under churn ({CACHES} caches, K = {GROUPS}, \
         {:.0} s, mean downtime {:.0} s, {:.0}% retirements)\n",
        DURATION_MS / 1000.0,
        MEAN_DOWNTIME_MS / 1000.0,
        100.0 * RETIREMENT_FRACTION
    );

    let scenario = Scenario::build(CACHES, DURATION_MS, 77);
    let config = scenario.sim_config(DURATION_MS);

    let mut rng = StdRng::seed_from_u64(78);
    let sl = GfCoordinator::new(SchemeConfig::sl(GROUPS))
        .form_groups_observed(&scenario.network, &mut rng, obs.as_mut())
        .expect("SL formation");
    let sdsl = GfCoordinator::new(SchemeConfig::sdsl(GROUPS, 1.0))
        .form_groups_observed(&scenario.network, &mut rng, obs.as_mut())
        .expect("SDSL formation");
    let random = random_groups(CACHES, GROUPS, &mut rng);

    let schemes: Vec<Scheme> = vec![
        (
            "SL",
            sl.groups().to_vec(),
            Some(GroupMaintainer::new(
                &scenario.network,
                sl,
                ProbeConfig::default(),
            )),
        ),
        (
            "SDSL",
            sdsl.groups().to_vec(),
            Some(GroupMaintainer::new(
                &scenario.network,
                sdsl,
                ProbeConfig::default(),
            )),
        ),
        ("random", random, None),
    ];

    // One plan per churn rate, shared by all three schemes so every
    // scheme faces the identical outage sequence.
    let mut cells = Vec::new();
    for &rate in &CHURN_RATES {
        let plan = ChurnConfig::default()
            .crashes_per_hour_per_cache(rate)
            .mean_downtime_ms(MEAN_DOWNTIME_MS)
            .retirement_fraction(RETIREMENT_FRACTION)
            .generate(
                CACHES,
                DURATION_MS,
                &mut StdRng::seed_from_u64(1_000 + rate as u64),
            );
        for (scheme, groups, maintainer) in &schemes {
            cells.push(Cell {
                scheme,
                churn_per_hour: rate,
                groups: groups.clone(),
                maintainer: maintainer.clone(),
                plan: plan.clone(),
            });
        }
    }

    let collect = sink.enabled();
    let pairs: Vec<(CellResult, Option<Obs>)> = par_map(cells, |cell| {
        let mut cell_obs = if collect { Some(Obs::new()) } else { None };
        let map = GroupMap::new(CACHES, cell.groups.clone()).expect("valid partition");
        let report = simulate_with_faults_observed(
            &scenario.network,
            &map,
            &scenario.workload.catalog,
            &scenario.trace,
            config,
            &cell.plan.schedule(),
            cell_obs.as_mut(),
        )
        .expect("simulation succeeds");
        let max_drift = cell.maintainer.map(|m| {
            let mut driver = ChurnDriver::new(m);
            driver
                .apply_observed(
                    &scenario.network,
                    &cell.plan,
                    &mut StdRng::seed_from_u64(2_000 + cell.churn_per_hour as u64),
                    cell_obs.as_mut(),
                )
                .expect("churn replay succeeds");
            driver.max_drift()
        });
        (
            CellResult {
                scheme: cell.scheme,
                churn_per_hour: cell.churn_per_hour,
                report,
                max_drift,
            },
            cell_obs,
        )
    });
    // Absorb per-cell bundles in input order: the merged document is
    // independent of worker scheduling.
    sink.absorb(obs);
    let mut results = Vec::with_capacity(pairs.len());
    for (r, cell_obs) in pairs {
        sink.absorb(cell_obs);
        results.push(r);
    }

    let mut table = Table::new([
        "churn/hr",
        "scheme",
        "avg_ms",
        "healthy_ms",
        "degraded_ms",
        "degraded%",
        "hit%",
        "failovers",
        "max_drift",
    ]);
    let mut json_cells = Vec::new();
    for r in &results {
        let deg = &r.report.metrics.degradation;
        table.row([
            format!("{:.0}", r.churn_per_hour),
            r.scheme.to_string(),
            f2(r.report.average_latency_ms()),
            deg.healthy.mean_latency_ms().map_or("-".into(), f2),
            deg.degraded.mean_latency_ms().map_or("-".into(), f2),
            format!("{:.1}", 100.0 * deg.degraded_fraction().unwrap_or(0.0)),
            format!(
                "{:.1}",
                100.0 * r.report.metrics.group_hit_rate().unwrap_or(0.0)
            ),
            deg.failovers.to_string(),
            r.max_drift.map_or("-".into(), f2),
        ]);
        json_cells.push(format!(
            "{{\"scheme\":\"{}\",\"churn_per_hour_per_cache\":{},\"max_drift\":{},\"report\":{}}}",
            r.scheme,
            r.churn_per_hour,
            r.max_drift.map_or("null".to_string(), |d| format!("{d}")),
            report_to_json(&r.report)
        ));
    }
    table.print();
    println!(
        "\nexpected: with no churn all schemes match their fault-free \
         latency; as churn grows, degraded-window latency and failovers \
         climb while the latency-aware groupings (SL, SDSL) keep their \
         healthy-window latency and drift near 1 — random grouping has \
         the same failover count but a worse latency floor to fall back \
         to."
    );

    let json = format!(
        "{{\"caches\":{CACHES},\"groups\":{GROUPS},\"duration_ms\":{DURATION_MS},\
         \"mean_downtime_ms\":{MEAN_DOWNTIME_MS},\"retirement_fraction\":{RETIREMENT_FRACTION},\
         \"cells\":[{}]}}",
        json_cells.join(",")
    );
    let path = std::path::Path::new("results").join("ablation_churn.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&path, &json).expect("write results JSON");
    println!("\nfull reports written to {}", path.display());
    sink.write();
}
