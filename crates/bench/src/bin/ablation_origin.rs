//! Ablation: origin server placement.
//!
//! The paper assumes the origin's location is "pre-decided". This
//! ablation asks how much it matters: the same caches and workload with
//! the origin on a backbone (transit) node vs. buried in a stub domain,
//! comparing SL and SDSL. A stub-homed origin stretches most
//! cache-to-origin paths, which should (a) raise absolute latencies and
//! (b) *increase* SDSL's edge, since server distances become more
//! heterogeneous.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin ablation_origin [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, mean, MetricsSink, Table};
use ecg_core::{GfCoordinator, SchemeConfig};
use ecg_sim::{simulate_observed, GroupMap, SimConfig};
use ecg_topology::{EdgeNetwork, OriginPlacement, TransitStubConfig};
use ecg_workload::SportingEventConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    let caches = 200;
    let duration_ms = 120_000.0;
    let k = 20;
    let form_seeds = [1u64, 2, 3];

    println!("Ablation: origin placement ({caches} caches, K = {k})\n");
    let mut table = Table::new(["origin", "mean_origin_rtt", "SL_ms", "SDSL_ms", "SDSL_gain"]);
    for (label, placement) in [
        ("transit", OriginPlacement::TransitNode),
        ("stub", OriginPlacement::StubNode),
    ] {
        let mut rng = StdRng::seed_from_u64(4_040);
        let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
        let network = EdgeNetwork::place(&topo, caches, placement, &mut rng).expect("placement");
        let workload = SportingEventConfig::default()
            .caches(caches)
            .documents(1_500)
            .duration_ms(duration_ms)
            .generate(&mut rng);
        let trace = workload.merged_trace();
        let config = SimConfig::default()
            .cache_capacity_bytes(512 * 1024)
            .warmup_ms(duration_ms / 6.0);

        let mut latencies = [Vec::new(), Vec::new()];
        for &seed in &form_seeds {
            for (slot, scheme) in [SchemeConfig::sl(k), SchemeConfig::sdsl(k, 1.0)]
                .into_iter()
                .enumerate()
            {
                let mut form_rng = StdRng::seed_from_u64(seed);
                let outcome = GfCoordinator::new(scheme)
                    .form_groups_observed(&network, &mut form_rng, obs.as_mut())
                    .expect("group formation");
                let map = GroupMap::new(caches, outcome.groups().to_vec()).expect("valid groups");
                let report = simulate_observed(
                    &network,
                    &map,
                    &workload.catalog,
                    &trace,
                    config,
                    obs.as_mut(),
                )
                .expect("simulation");
                latencies[slot].push(report.average_latency_ms());
            }
        }
        let (sl, sdsl) = (mean(&latencies[0]), mean(&latencies[1]));
        table.row([
            label.to_string(),
            f2(network.mean_origin_rtt()),
            f2(sl),
            f2(sdsl),
            format!("{:.1}%", 100.0 * (sl - sdsl) / sl),
        ]);
    }
    table.print();
    println!(
        "\nexpected: SDSL helps in both placements; the stub-homed origin \
         typically has more heterogeneous cache-to-origin distances, which \
         widens SDSL's edge."
    );
    sink.absorb(obs);
    sink.write();
}
