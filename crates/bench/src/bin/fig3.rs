//! Figure 3: average client latency vs. average cache group size.
//!
//! A 500-cache network partitioned by the SL scheme into groups of
//! increasing average size (K = N / size). Reports the network-wide
//! average latency plus the 50 caches nearest to and farthest from the
//! origin. The paper's findings to reproduce:
//!
//! 1. every curve is U-shaped (cooperation first helps, then group
//!    interaction costs dominate), and
//! 2. the three curves bottom out at *different* group sizes — the far
//!    caches want bigger groups than the near ones — which is the
//!    motivation for SDSL.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin fig3 [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, mean, par_map, MetricsSink, Scenario, Table};
use ecg_core::{GfCoordinator, SchemeConfig};
use ecg_obs::Obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let caches = 500;
    let duration_ms = 120_000.0;
    let sizes = [2usize, 5, 10, 25, 50, 100, 250, 500];
    let form_seeds = [11u64, 12];

    println!("Figure 3: avg latency vs avg group size ({caches} caches, SL scheme)\n");
    let scenario = Scenario::build(caches, duration_ms, 42);
    let near = scenario.network.caches_nearest_origin(50);
    let far = scenario.network.caches_farthest_origin(50);
    let config = scenario.sim_config(duration_ms);

    let mut table = Table::new(["group_size", "K", "all_ms", "near50_ms", "far50_ms"]);
    let scenario_ref = &scenario;
    let (near_ref, far_ref) = (&near, &far);
    let collect = sink.enabled();
    let rows = par_map(sizes.to_vec(), |size| {
        let mut obs = if collect { Some(Obs::new()) } else { None };
        let k = (caches / size).max(1);
        let (mut all, mut near_l, mut far_l) = (Vec::new(), Vec::new(), Vec::new());
        for &seed in &form_seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = GfCoordinator::new(SchemeConfig::sl(k))
                .form_groups_observed(&scenario_ref.network, &mut rng, obs.as_mut())
                .expect("group formation");
            let report =
                scenario_ref.simulate_groups_observed(outcome.groups(), config, obs.as_mut());
            all.push(report.average_latency_ms());
            near_l.push(report.metrics.mean_latency_of(near_ref).unwrap_or(0.0));
            far_l.push(report.metrics.mean_latency_of(far_ref).unwrap_or(0.0));
        }
        (
            [
                size.to_string(),
                k.to_string(),
                f2(mean(&all)),
                f2(mean(&near_l)),
                f2(mean(&far_l)),
            ],
            obs,
        )
    });
    for (row, obs) in rows {
        sink.absorb(obs);
        table.row(row);
    }
    table.print();
    println!(
        "\nexpected shape: U-shaped curves with minima at different group sizes \
         (near-origin caches prefer smaller groups than far caches)."
    );
    sink.write();
}
