//! Ablation: re-formation policies under continuous churn.
//!
//! The lifecycle supervisor keeps a grouping formed as caches crash,
//! recover, and retire. This experiment sweeps its re-formation policy
//! — `static` (never act), `repair` (re-seat only), `eager`, and
//! `balanced` — against rising churn rates, then replays the same
//! sporting-event trace *epoch by epoch*: each serving interval of the
//! supervisor's timeline is simulated under its own grouping and the
//! segments are merged, so the latency numbers reflect exactly what
//! clients would have seen across every re-formation.
//!
//! Besides the usual text table, the full per-cell timelines and
//! simulation reports are written to `results/ablation_lifecycle.json`.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin ablation_lifecycle [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, par_map, MetricsSink, Scenario, Table};
use ecg_core::SchemeConfig;
use ecg_faults::{report_to_json, ChurnConfig, FaultPlan};
use ecg_lifecycle::{
    FormationSupervisor, FormationTimeline, ReformDecision, ReformPolicy, SupervisorConfig,
};
use ecg_obs::Obs;
use ecg_replay::{replay_epochs_observed, ReplayConfig, ReplayEpoch};
use ecg_sim::SimReport;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CACHES: usize = 60;
const GROUPS: usize = 8;
const DURATION_MS: f64 = 120_000.0;
const STEP_MS: f64 = 10_000.0;
const MEAN_DOWNTIME_MS: f64 = 15_000.0;
const RETIREMENT_FRACTION: f64 = 0.1;
const CHURN_RATES: [f64; 3] = [0.0, 6.0, 24.0];
const POLICIES: [&str; 4] = ["static", "repair", "eager", "balanced"];

struct Cell {
    policy: &'static str,
    churn_per_hour: f64,
    plan: FaultPlan,
}

struct CellResult {
    policy: &'static str,
    churn_per_hour: f64,
    timeline: FormationTimeline,
    report: SimReport,
}

fn main() {
    let mut sink = MetricsSink::from_args();
    println!(
        "Ablation: lifecycle re-formation policies under churn \
         ({CACHES} caches, K = {GROUPS}, {:.0} s, {:.0} s windows, \
         mean downtime {:.0} s, {:.0}% retirements)\n",
        DURATION_MS / 1000.0,
        STEP_MS / 1000.0,
        MEAN_DOWNTIME_MS / 1000.0,
        100.0 * RETIREMENT_FRACTION
    );

    let scenario = Scenario::build(CACHES, DURATION_MS, 81);
    let config = scenario.sim_config(DURATION_MS);

    // One churn plan per rate, shared by all policies so every policy
    // faces the identical outage sequence.
    let mut cells = Vec::new();
    for &rate in &CHURN_RATES {
        let plan = ChurnConfig::default()
            .crashes_per_hour_per_cache(rate)
            .mean_downtime_ms(MEAN_DOWNTIME_MS)
            .retirement_fraction(RETIREMENT_FRACTION)
            .generate(
                CACHES,
                DURATION_MS,
                &mut StdRng::seed_from_u64(1_000 + rate as u64),
            );
        for policy in POLICIES {
            cells.push(Cell {
                policy,
                churn_per_hour: rate,
                plan: plan.clone(),
            });
        }
    }

    let collect = sink.enabled();
    let pairs: Vec<(CellResult, Option<Obs>)> = par_map(cells, |cell| {
        let mut cell_obs = if collect { Some(Obs::new()) } else { None };
        let policy = ReformPolicy::by_name(cell.policy).expect("known policy preset");
        let supervisor = FormationSupervisor::new(
            SupervisorConfig::new(SchemeConfig::sl(GROUPS))
                .step_ms(STEP_MS)
                .policy(policy),
        );
        let schedule = cell.plan.schedule();
        let mut rng = StdRng::seed_from_u64(2_000 + cell.churn_per_hour as u64);
        let timeline = supervisor
            .run_observed(
                &scenario.network,
                &schedule,
                DURATION_MS,
                &mut rng,
                cell_obs.as_mut(),
            )
            .expect("supervised run succeeds");
        let epochs: Vec<ReplayEpoch> = timeline
            .epoch_spans()
            .map(|(start, groups)| ReplayEpoch::new(start, groups.clone()))
            .collect();
        let replay = replay_epochs_observed(
            &scenario.network,
            &epochs,
            &scenario.workload.catalog,
            &scenario.trace,
            &ReplayConfig::new().sim(config).schedule(schedule),
            cell_obs.as_mut(),
        )
        .expect("epoch replay succeeds");
        (
            CellResult {
                policy: cell.policy,
                churn_per_hour: cell.churn_per_hour,
                timeline,
                report: replay.report,
            },
            cell_obs,
        )
    });
    // Absorb per-cell bundles in input order: the merged document is
    // independent of worker scheduling.
    let mut results = Vec::with_capacity(pairs.len());
    for (r, cell_obs) in pairs {
        sink.absorb(cell_obs);
        results.push(r);
    }

    let mut table = Table::new([
        "churn/hr",
        "policy",
        "epochs",
        "repairs",
        "partial",
        "full",
        "max_drift",
        "avg_ms",
        "hit%",
        "failovers",
    ]);
    let mut json_cells = Vec::new();
    for r in &results {
        let t = &r.timeline;
        table.row([
            format!("{:.0}", r.churn_per_hour),
            r.policy.to_string(),
            t.epochs().len().to_string(),
            t.decision_count(ReformDecision::Repair).to_string(),
            t.decision_count(ReformDecision::PartialReform).to_string(),
            t.decision_count(ReformDecision::FullReform).to_string(),
            f2(t.max_drift()),
            f2(r.report.average_latency_ms()),
            format!(
                "{:.1}",
                100.0 * r.report.metrics.group_hit_rate().unwrap_or(0.0)
            ),
            r.report.metrics.degradation.failovers.to_string(),
        ]);
        json_cells.push(format!(
            "{{\"policy\":\"{}\",\"churn_per_hour_per_cache\":{},\"timeline\":{},\"report\":{}}}",
            r.policy,
            r.churn_per_hour,
            t.to_json(),
            report_to_json(&r.report)
        ));
    }
    table.print();
    println!(
        "\nexpected: with no churn every policy keeps a single epoch and \
         identical latency; under churn the acting policies re-form — \
         more epochs, drift pinned near 1 while the static baseline \
         drifts — and balanced spends fewer re-formations than eager. \
         Average latency is *higher* for the acting policies: every \
         epoch switch cold-restarts the caches in replay, so the \
         re-warm cost of each re-formation is charged honestly against \
         its tighter grouping."
    );

    let json = format!(
        "{{\"caches\":{CACHES},\"groups\":{GROUPS},\"duration_ms\":{DURATION_MS},\
         \"step_ms\":{STEP_MS},\"mean_downtime_ms\":{MEAN_DOWNTIME_MS},\
         \"retirement_fraction\":{RETIREMENT_FRACTION},\"cells\":[{}]}}",
        json_cells.join(",")
    );
    let path = std::path::Path::new("results").join("ablation_lifecycle.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&path, &json).expect("write results JSON");
    println!("\nfull timelines and reports written to {}", path.display());
    sink.write();
}
