//! Ablation: probe measurement noise.
//!
//! The paper probes each landmark "multiple times and records the
//! average RTT" but never quantifies how measurement error affects
//! clustering accuracy. This sweep varies the per-probe log-normal
//! noise σ and the number of probes averaged per measurement, reporting
//! the SL scheme's average group interaction cost.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin ablation_noise [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, interaction_cost_ms, mean, MetricsSink, Scenario, Table};
use ecg_coords::ProbeConfig;
use ecg_core::{GfCoordinator, SchemeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    let caches = 300;
    let k = 30;
    let sigmas = [0.0, 0.05, 0.1, 0.2, 0.4];
    let probe_counts = [1usize, 3, 10];
    let seeds: Vec<u64> = (0..8).collect();

    println!(
        "Ablation: probe noise vs clustering accuracy\n\
         ({caches} caches, K = {k}, SL scheme; cells = avg GIC in ms)\n"
    );
    let network = Scenario::network_only(caches, 4_242);
    let mut table = Table::new(["sigma", "1_probe", "3_probes", "10_probes"]);
    for &sigma in &sigmas {
        let mut cells = vec![format!("{:.0}%", sigma * 100.0)];
        for &probes in &probe_counts {
            let coord = GfCoordinator::new(
                SchemeConfig::sl(k).probe(
                    ProbeConfig::default()
                        .noise_sigma(sigma)
                        .probes_per_measurement(probes),
                ),
            );
            let gics: Vec<f64> = seeds
                .iter()
                .map(|&seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let outcome = coord
                        .form_groups_observed(&network, &mut rng, obs.as_mut())
                        .expect("group formation");
                    interaction_cost_ms(&outcome, &network)
                })
                .collect();
            cells.push(f2(mean(&gics)));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "\nexpected: accuracy degrades as σ grows; averaging more probes \
         per measurement recovers most of the loss."
    );
    sink.absorb(obs);
    sink.write();
}
