//! Figure 7: feature-vector representation vs. GNP Euclidean embedding.
//!
//! A 500-cache network, the *same* 25 greedily chosen landmarks for both
//! representations, K swept from 10 to 100. The SL scheme clusters raw
//! RTT feature vectors; the comparator first embeds every node into a
//! 7-dimensional Euclidean space with GNP (Ng & Zhang) and clusters the
//! coordinates. Reports average group interaction cost (ms).
//!
//! Paper's finding: the cheap feature vectors cluster as accurately as
//! the expensive Euclidean embedding — neither dominates across K.
//!
//! The position estimates are computed once per seed and reused across
//! all K values (they do not depend on K), exactly as a deployment
//! would.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin fig7 [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, mean, MetricsSink, Scenario, Table};
use ecg_clustering::{average_group_interaction_cost, kmeans_observed, Initializer, KmeansConfig};
use ecg_coords::{
    build_feature_vectors, embed_network, FeatureMatrix, GnpConfig, ProbeConfig, Prober,
};
use ecg_core::{select_landmarks, LandmarkSelector};
use ecg_sim::LatencyModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    let caches = 500;
    let ks = [10usize, 25, 50, 75, 100];
    let seeds: Vec<u64> = (0..3).collect();
    let gnp_config = GnpConfig::default()
        .dimensions(7)
        .restarts(2)
        .max_iterations(600);

    println!(
        "Figure 7: avg group interaction cost (ms), feature vectors vs GNP\n\
         ({caches} caches, same 25 greedy landmarks, D = 7)\n"
    );
    let network = Scenario::network_only(caches, 77_000);
    let model = LatencyModel::default();
    let cost = |a: usize, b: usize| {
        model.interaction_cost(
            network.cache_to_cache(ecg_topology::CacheId(a), ecg_topology::CacheId(b)),
            8.0 * 1024.0,
        )
    };

    // Per seed: landmark selection + both representations, then K-means
    // per K on each.
    let mut fv_gic = vec![Vec::new(); ks.len()];
    let mut gnp_gic = vec![Vec::new(); ks.len()];
    for &seed in &seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let prober = Prober::new(network.rtt_matrix(), ProbeConfig::default());
        let selection = select_landmarks(&prober, LandmarkSelector::GreedyMaxMin, 25, 4, &mut rng)
            .expect("landmark selection");
        let nodes: Vec<usize> = (1..=caches).collect();

        let fvs = build_feature_vectors(&prober, &nodes, &selection.landmarks, &mut rng);
        let mut fv_points = FeatureMatrix::with_capacity(fvs.len(), selection.landmarks.len());
        for fv in &fvs {
            fv_points.push_row(fv.as_slice());
        }

        let coords = embed_network(gnp_config, &prober, &nodes, &selection.landmarks, &mut rng);
        let mut gnp_points = FeatureMatrix::with_capacity(coords.len(), 7);
        for c in &coords {
            gnp_points.push_row(c.as_slice());
        }

        if let Some(o) = obs.as_mut() {
            o.metrics.add("scheme.probes_sent", prober.probes_sent());
        }

        for (ki, &k) in ks.iter().enumerate() {
            for (points, out) in [(&fv_points, &mut fv_gic), (&gnp_points, &mut gnp_gic)] {
                let clustering = kmeans_observed(
                    points,
                    KmeansConfig::new(k),
                    &Initializer::RandomRepresentative,
                    &mut rng,
                    obs.as_mut(),
                )
                .expect("clustering");
                out[ki].push(average_group_interaction_cost(&clustering.clusters(), cost));
            }
        }
    }

    let mut table = Table::new(["K", "feature_vectors", "gnp_euclidean"]);
    for (ki, &k) in ks.iter().enumerate() {
        table.row([k.to_string(), f2(mean(&fv_gic[ki])), f2(mean(&gnp_gic[ki]))]);
    }
    table.print();
    println!(
        "\nexpected: the two columns track each other closely — the simple \
         feature-vector representation is sufficient for cache clustering."
    );
    sink.absorb(obs);
    sink.write();
}
