//! Ablation: clustering initialization and algorithm choices.
//!
//! Compares four ways of forming K groups from the same feature
//! vectors:
//!
//! * SL's uniform K-means seeding,
//! * k-means++ seeding (stronger spread, not in the paper),
//! * SDSL's server-distance-weighted seeding (θ = 1),
//! * agglomerative average-linkage clustering over the *true* RTT
//!   matrix — an oracle-ish upper bound that skips the landmark
//!   estimation entirely.
//!
//! Reports the average group interaction cost.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin ablation_init [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, interaction_cost_ms, mean, MetricsSink, Scenario, Table};
use ecg_clustering::average_group_interaction_cost;
use ecg_clustering::hierarchical::{agglomerative, Linkage};
use ecg_core::{GfCoordinator, GroupInit, SchemeConfig};
use ecg_sim::LatencyModel;
use ecg_topology::CacheId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    let caches = 300;
    let ks = [10usize, 30, 60];
    let seeds: Vec<u64> = (0..6).collect();

    println!(
        "Ablation: initialization / algorithm comparison ({caches} caches)\n\
         cells = avg group interaction cost (ms)\n"
    );
    let network = Scenario::network_only(caches, 9_090);
    let model = LatencyModel::default();

    let mut table = Table::new([
        "K",
        "uniform_SL",
        "kmeans_pp",
        "weighted_SDSL",
        "hierarchical_oracle",
    ]);
    for &k in &ks {
        let mut cells = vec![k.to_string()];

        // The three K-means variants go through the full pipeline.
        for init in [
            SchemeConfig::sl(k),
            SchemeConfig::sl(k).init(GroupInit::KmeansPlusPlus),
            SchemeConfig::sdsl(k, 1.0),
        ] {
            let coord = GfCoordinator::new(init);
            let gics: Vec<f64> = seeds
                .iter()
                .map(|&seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let outcome = coord
                        .form_groups_observed(&network, &mut rng, obs.as_mut())
                        .expect("group formation");
                    interaction_cost_ms(&outcome, &network)
                })
                .collect();
            cells.push(f2(mean(&gics)));
        }

        // Oracle: agglomerative clustering of the ground-truth RTTs.
        let clusters = agglomerative(caches, k, Linkage::Average, |a, b| {
            network.cache_to_cache(CacheId(a), CacheId(b))
        });
        let oracle = average_group_interaction_cost(&clusters, |a, b| {
            model.interaction_cost(network.cache_to_cache(CacheId(a), CacheId(b)), 8.0 * 1024.0)
        });
        cells.push(f2(oracle));
        table.row(cells);
    }
    table.print();
    println!(
        "\nexpected: the landmark-based variants land within striking \
         distance of the ground-truth hierarchical oracle; k-means++ and \
         uniform seeding are comparable on this objective."
    );
    sink.absorb(obs);
    sink.write();
}
