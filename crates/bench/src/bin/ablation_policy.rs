//! Ablation: cache replacement policy.
//!
//! The paper's caches run the Cache Clouds utility-based replacement
//! scheme. This ablation swaps the policy (utility, LRU, LFU, GDSF)
//! under identical SDSL groups and workload, reporting latency, group
//! hit rate, and origin offload.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin ablation_policy [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, MetricsSink, Scenario, Table};
use ecg_cache::PolicyKind;
use ecg_core::{GfCoordinator, SchemeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    let caches = 200;
    let duration_ms = 180_000.0;
    let k = 20;

    println!("Ablation: replacement policy ({caches} caches, K = {k}, SDSL θ = 1)\n");
    let scenario = Scenario::build(caches, duration_ms, 777);
    let mut rng = StdRng::seed_from_u64(88);
    let outcome = GfCoordinator::new(SchemeConfig::sdsl(k, 1.0))
        .form_groups_observed(&scenario.network, &mut rng, obs.as_mut())
        .expect("group formation");

    let mut table = Table::new([
        "policy",
        "latency_ms",
        "group_hit_rate",
        "origin_fetches",
        "evictions",
    ]);
    for policy in [
        PolicyKind::Utility,
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::Gdsf,
    ] {
        let config = scenario.sim_config(duration_ms).policy(policy);
        let report = scenario.simulate_groups_observed(outcome.groups(), config, obs.as_mut());
        table.row([
            policy.name().to_string(),
            f2(report.average_latency_ms()),
            format!(
                "{:.1}%",
                100.0 * report.metrics.group_hit_rate().unwrap_or(0.0)
            ),
            report.origin_fetches.to_string(),
            report.cache_stats.evictions.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nexpected: the utility policy (which factors in fetch cost and \
         update rate) at or near the best latency; LRU/LFU competitive; \
         the exact ordering is workload-dependent."
    );
    sink.absorb(obs);
    sink.write();
}
