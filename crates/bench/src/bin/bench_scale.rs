//! Large-N scaling sweep for full SL / SDSL group formation.
//!
//! Drives the unified scaled pipeline
//! ([`ecg_core::GfCoordinator::form_groups_scaled`]) — parallel landmark
//! selection, parallel feature matrix construction, K-means through the
//! configured engine, and the group interaction cost metric — over an
//! implicit [`SyntheticRtt`] oracle (O(n) state, so N = 100 000 fits
//! where a dense RTT matrix would need ~80 GB), sweeping
//! N × variant × assignment engine × thread counts through
//! [`ecg_par::set_max_threads`].
//!
//! Every configuration is also a determinism check: the run at each
//! thread count must reproduce the first run's assignments and the
//! bit-exact GIC value — *across assignment engines too*, because the
//! KD-tree scan is contractually bit-identical to the blocked scan — or
//! the binary panics. Optimizations change time, never results.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin bench_scale             # full, writes BENCH_scale.json
//! cargo run --release -p ecg-bench --bin bench_scale -- --quick  # CI smoke sizes
//! cargo run --release -p ecg-bench --bin bench_scale -- --variant minibatch
//! cargo run --release -p ecg-bench --bin bench_scale -- --assign tree
//! cargo run --release -p ecg-bench --bin bench_scale -- --mb-batch 4096 --mb-iters 60
//! cargo run --release -p ecg-bench --bin bench_scale -- --out /tmp/s.json
//! ```
//!
//! `--variant lloyd|minibatch|both` picks the K-means engine(s);
//! `--assign blocked|tree|both` picks the nearest-center engine(s) for
//! the full-batch Lloyd sweep (k = N/100, so N = 50k scans 500 centers
//! per point — the tree makes that sublinear). The tree sweep goes one
//! size class higher (to N = 100 000, k = 1 000) where the flat scan is
//! impractical on small hosts; mini-batch (whose cost is batch-sized,
//! not N-sized) stays on the blocked kernel for continuity with the
//! PR 7 baseline. `--mb-batch` and `--mb-iters` tune the mini-batch
//! schedule.
//!
//! The synthetic oracle is generated once per N, outside the timing
//! loop, so per-kernel timings measure formation kernels only — never
//! topology setup. Tree (re)build time is reported separately from the
//! kmeans total (`tree_build_ms`, one rebuild per Lloyd iteration).
//!
//! The emitted JSON records the host context (logical CPUs, the
//! `ECG_THREADS` environment override, quick/full mode) alongside
//! per-kernel timings, because wall-clock scaling is only meaningful
//! relative to the cores the run actually had.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_clustering::{AssignMode, KmeansVariant, MiniBatchConfig};
use ecg_core::{GfCoordinator, SchemeConfig};
use ecg_topology::{RttSource, SyntheticRtt, SyntheticRttConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One formation scheme to sweep.
#[derive(Clone, Copy)]
enum Scheme {
    Sl,
    /// SDSL with the given θ.
    Sdsl(f64),
}

impl Scheme {
    fn name(self) -> &'static str {
        match self {
            Scheme::Sl => "sl",
            Scheme::Sdsl(_) => "sdsl",
        }
    }
}

/// Which K-means engine the run clusters with.
#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Lloyd,
    MiniBatch,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::Lloyd => "lloyd",
            Variant::MiniBatch => "minibatch",
        }
    }
}

/// One (K-means engine, nearest-center engine) combination to sweep.
#[derive(Clone, Copy)]
struct Engine {
    variant: Variant,
    assign: AssignMode,
}

impl Engine {
    fn assign_name(self) -> &'static str {
        match self.assign {
            AssignMode::Auto => "auto",
            AssignMode::Blocked => "blocked",
            AssignMode::Tree => "tree",
        }
    }
}

struct RunResult {
    scheme: &'static str,
    variant: &'static str,
    assign: &'static str,
    n: usize,
    threads: usize,
    k: usize,
    landmarks: usize,
    landmarks_ms: f64,
    features_ms: f64,
    kmeans_ms: f64,
    tree_build_ms: f64,
    gic_ms: f64,
    total_ms: f64,
    gic_value: f64,
    assignments: Vec<usize>,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1_000.0
}

/// Runs one full formation at a forced thread count through the scaled
/// pipeline and records its per-kernel timings. All RNG seeds are fixed
/// per (scheme, n), so two runs that differ only in `threads` — or in
/// the assignment engine, which draws no RNG — must produce identical
/// results.
fn run_formation(
    scheme: Scheme,
    engine: Engine,
    mb: MiniBatchConfig,
    net: &SyntheticRtt,
    n: usize,
    threads: usize,
) -> RunResult {
    const LANDMARKS: usize = 8;
    const PLSET_MULTIPLIER: usize = 4;
    const KMEANS_ITERS: usize = 15;
    let k = (n / 100).max(2);

    ecg_par::set_max_threads(Some(threads));
    let mut config = match scheme {
        Scheme::Sl => SchemeConfig::sl(k),
        Scheme::Sdsl(theta) => SchemeConfig::sdsl(k, theta),
    }
    .landmarks(LANDMARKS)
    .plset_multiplier(PLSET_MULTIPLIER)
    .kmeans_max_iterations(KMEANS_ITERS)
    .kmeans_assign(engine.assign);
    if engine.variant == Variant::MiniBatch {
        config = config.kmeans_variant(KmeansVariant::MiniBatch(mb));
    }

    let mut rng = StdRng::seed_from_u64(1_000 + n as u64);
    let formed = GfCoordinator::new(config)
        .form_groups_scaled(net, &mut rng)
        .expect("scaled formation");

    // Caches are nodes 1..=n of the oracle (node 0 is the origin).
    let t = Instant::now();
    let gic_value = formed
        .outcome
        .average_interaction_cost(|a, b| net.rtt_ms(a.index() + 1, b.index() + 1));
    let gic_ms = ms(t);
    ecg_par::set_max_threads(None);

    let timings = formed.timings;
    RunResult {
        scheme: scheme.name(),
        variant: engine.variant.name(),
        assign: engine.assign_name(),
        n,
        threads,
        k,
        landmarks: formed.outcome.landmarks().landmarks.len(),
        landmarks_ms: timings.landmarks_ms,
        features_ms: timings.features_ms,
        kmeans_ms: timings.clustering_ms,
        tree_build_ms: timings.tree_build_ms,
        gic_ms,
        total_ms: timings.total_ms + gic_ms,
        gic_value,
        assignments: formed.outcome.assignments().to_vec(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_scale.json".to_string());
    let variants: Vec<Variant> = match flag_value("--variant").as_deref() {
        None | Some("both") => vec![Variant::Lloyd, Variant::MiniBatch],
        Some("lloyd") => vec![Variant::Lloyd],
        Some("minibatch") => vec![Variant::MiniBatch],
        Some(other) => panic!("--variant must be lloyd, minibatch, or both, got {other:?}"),
    };
    let lloyd_assigns: Vec<AssignMode> = match flag_value("--assign").as_deref() {
        None | Some("both") => vec![AssignMode::Blocked, AssignMode::Tree],
        Some("blocked") => vec![AssignMode::Blocked],
        Some("tree") => vec![AssignMode::Tree],
        Some(other) => panic!("--assign must be blocked, tree, or both, got {other:?}"),
    };
    let mb_batch: usize =
        flag_value("--mb-batch").map_or(2_048, |v| v.parse().expect("--mb-batch takes an integer"));
    let mb_iters: usize =
        flag_value("--mb-iters").map_or(40, |v| v.parse().expect("--mb-iters takes an integer"));
    let mb = MiniBatchConfig::default()
        .batch_size(mb_batch)
        .iterations(mb_iters);

    // The engine grid: Lloyd sweeps the requested assignment engines;
    // mini-batch stays on the blocked kernel (its scan is batch-sized,
    // and the PR 7 baseline numbers were recorded on it).
    let engines: Vec<Engine> = variants
        .iter()
        .flat_map(|&variant| match variant {
            Variant::Lloyd => lloyd_assigns
                .iter()
                .map(|&assign| Engine { variant, assign })
                .collect::<Vec<_>>(),
            Variant::MiniBatch => vec![Engine {
                variant,
                assign: AssignMode::Blocked,
            }],
        })
        .collect();

    // Mini-batch exists to go past Lloyd's ceiling, so its sweep sits
    // one size class higher; the tree-assign Lloyd sweep joins it at
    // N = 100k (k = 1 000), where the flat scan is impractical.
    let lloyd_sizes: &[usize] = if quick {
        &[500, 2_000]
    } else {
        &[5_000, 20_000, 50_000]
    };
    let lloyd_tree_sizes: &[usize] = if quick {
        &[500, 2_000]
    } else {
        &[5_000, 20_000, 50_000, 100_000]
    };
    let minibatch_sizes: &[usize] = if quick {
        &[20_000]
    } else {
        &[20_000, 50_000, 100_000]
    };
    let sizes_for = |engine: Engine| match (engine.variant, engine.assign) {
        (Variant::Lloyd, AssignMode::Tree) => lloyd_tree_sizes,
        (Variant::Lloyd, _) => lloyd_sizes,
        (Variant::MiniBatch, _) => minibatch_sizes,
    };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let schemes = [Scheme::Sl, Scheme::Sdsl(1.0)];

    let mut all_sizes: Vec<usize> = engines
        .iter()
        .flat_map(|&e| sizes_for(e).iter().copied())
        .collect();
    all_sizes.sort_unstable();
    all_sizes.dedup();

    let logical_cpus = std::thread::available_parallelism().map_or(0, usize::from);
    let ecg_threads_env = std::env::var("ECG_THREADS").ok();

    let mut runs: Vec<RunResult> = Vec::new();
    for &n in &all_sizes {
        // Node 0 is the origin; n edge caches follow. Generated once
        // per N, outside the timing loop — kernel timings never include
        // topology setup.
        let net = SyntheticRttConfig::default().generate(n + 1, 9_000 + n as u64);
        for scheme in schemes {
            // One baseline per K-means variant, shared across thread
            // counts AND assignment engines: the tree scan must
            // reproduce the blocked scan bit for bit.
            let mut lloyd_baseline: Option<(Vec<usize>, f64)> = None;
            let mut minibatch_baseline: Option<(Vec<usize>, f64)> = None;
            for &engine in engines.iter().filter(|&&e| sizes_for(e).contains(&n)) {
                let baseline = match engine.variant {
                    Variant::Lloyd => &mut lloyd_baseline,
                    Variant::MiniBatch => &mut minibatch_baseline,
                };
                for &threads in thread_counts {
                    let run = run_formation(scheme, engine, mb, &net, n, threads);
                    eprintln!(
                        "{}/{}/{} n={} threads={}: total {:.0} ms (landmarks {:.0}, features {:.0}, kmeans {:.0} [tree build {:.1}], gic {:.0})",
                        run.scheme,
                        run.variant,
                        run.assign,
                        run.n,
                        run.threads,
                        run.total_ms,
                        run.landmarks_ms,
                        run.features_ms,
                        run.kmeans_ms,
                        run.tree_build_ms,
                        run.gic_ms
                    );
                    match &*baseline {
                        None => *baseline = Some((run.assignments.clone(), run.gic_value)),
                        Some((assignments, gic)) => {
                            assert_eq!(
                                assignments, &run.assignments,
                                "{}/{}/{} n={n}: assignments diverged at {threads} threads",
                                run.scheme, run.variant, run.assign
                            );
                            assert_eq!(
                                gic.to_bits(),
                                run.gic_value.to_bits(),
                                "{}/{}/{} n={n}: GIC diverged at {threads} threads",
                                run.scheme,
                                run.variant,
                                run.assign
                            );
                        }
                    }
                    runs.push(run);
                }
            }
        }
    }

    // End-to-end speedups of the widest run vs threads = 1, per
    // (scheme, variant, assign, n).
    let max_threads = *thread_counts.last().expect("non-empty thread list");
    let mut speedups = String::new();
    for &engine in &engines {
        for &n in sizes_for(engine) {
            for scheme in schemes {
                let time_at = |threads: usize| {
                    runs.iter()
                        .find(|r| {
                            r.scheme == scheme.name()
                                && r.variant == engine.variant.name()
                                && r.assign == engine.assign_name()
                                && r.n == n
                                && r.threads == threads
                        })
                        .expect("run present")
                        .total_ms
                };
                let s = time_at(1) / time_at(max_threads);
                if !speedups.is_empty() {
                    speedups.push_str(", ");
                }
                speedups.push_str(&format!(
                    "\"{}_{}_{}_n{}_t{}\": {:.3}",
                    scheme.name(),
                    engine.variant.name(),
                    engine.assign_name(),
                    n,
                    max_threads,
                    s
                ));
            }
        }
    }

    let mut doc = String::from("{\n  \"context\": {\n");
    doc.push_str(&format!("    \"logical_cpus\": {logical_cpus},\n"));
    doc.push_str(&format!(
        "    \"ecg_threads_env\": {},\n",
        ecg_threads_env.map_or("null".to_string(), |v| format!("\"{v}\""))
    ));
    doc.push_str(&format!(
        "    \"mode\": \"{}\"\n  }},\n",
        if quick { "quick" } else { "full" }
    ));
    doc.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            doc.push_str(",\n");
        }
        doc.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"variant\": \"{}\", \"assign\": \"{}\", \"n\": {}, \
             \"threads\": {}, \"k\": {}, \"landmarks\": {}, \"total_ms\": {:.3}, \
             \"kernels\": {{\"landmarks_ms\": {:.3}, \"features_ms\": {:.3}, \
             \"kmeans_ms\": {:.3}, \"tree_build_ms\": {:.3}, \"gic_ms\": {:.3}}}, \
             \"gic_value\": {:.6}, \"determinism_ok\": true}}",
            r.scheme,
            r.variant,
            r.assign,
            r.n,
            r.threads,
            r.k,
            r.landmarks,
            r.total_ms,
            r.landmarks_ms,
            r.features_ms,
            r.kmeans_ms,
            r.tree_build_ms,
            r.gic_ms,
            r.gic_value
        ));
    }
    doc.push_str("\n  ],\n");
    doc.push_str(&format!("  \"end_to_end_speedups\": {{{speedups}}}\n}}\n"));
    std::fs::write(&out_path, doc).expect("write scale json");
    println!("wrote {out_path}");
}
