//! Large-N scaling sweep for full SL / SDSL group formation.
//!
//! Runs the formation pipeline — landmark selection, parallel feature
//! matrix construction, K-means clustering, and the group interaction
//! cost metric — over an implicit [`SyntheticRtt`] oracle (O(n) state,
//! so N = 50 000 fits where a dense RTT matrix would need ~20 GB),
//! sweeping N × thread counts through [`ecg_par::set_max_threads`].
//!
//! Every configuration is also a determinism check: the run at each
//! thread count must reproduce the threads = 1 assignments and the
//! bit-exact GIC value, or the binary panics. Optimizations change
//! time, never results.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin bench_scale            # full, writes BENCH_scale.json
//! cargo run --release -p ecg-bench --bin bench_scale -- --quick # CI smoke sizes
//! cargo run --release -p ecg-bench --bin bench_scale -- --out /tmp/s.json
//! ```
//!
//! The emitted JSON records the host context (logical CPUs, the
//! `ECG_THREADS` environment override, quick/full mode) alongside
//! per-kernel timings, because wall-clock scaling is only meaningful
//! relative to the cores the run actually had.

use ecg_clustering::{
    average_group_interaction_cost, kmeans, server_distance_weights, Initializer, KmeansConfig,
};
use ecg_coords::{build_feature_matrix_par, ProbeConfig, Prober};
use ecg_core::{select_landmarks, LandmarkSelector};
use ecg_topology::{RttSource, SyntheticRtt, SyntheticRttConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One formation scheme to sweep.
#[derive(Clone, Copy)]
enum Scheme {
    Sl,
    /// SDSL with the given θ.
    Sdsl(f64),
}

impl Scheme {
    fn name(self) -> &'static str {
        match self {
            Scheme::Sl => "sl",
            Scheme::Sdsl(_) => "sdsl",
        }
    }
}

struct RunResult {
    scheme: &'static str,
    n: usize,
    threads: usize,
    k: usize,
    landmarks: usize,
    landmarks_ms: f64,
    features_ms: f64,
    kmeans_ms: f64,
    gic_ms: f64,
    total_ms: f64,
    gic_value: f64,
    assignments: Vec<usize>,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1_000.0
}

/// Runs one full formation at a forced thread count and times each
/// kernel. All RNG seeds are fixed per (scheme, n), so two runs that
/// differ only in `threads` must produce identical results.
fn run_formation(scheme: Scheme, net: &SyntheticRtt, n: usize, threads: usize) -> RunResult {
    const LANDMARKS: usize = 8;
    const PLSET_MULTIPLIER: usize = 4;
    const KMEANS_ITERS: usize = 15;
    let k = (n / 100).max(2);

    ecg_par::set_max_threads(Some(threads));
    let prober = Prober::new(net, ProbeConfig::default());
    let mut rng = StdRng::seed_from_u64(1_000 + n as u64);
    let whole = Instant::now();

    let t = Instant::now();
    let selection = select_landmarks(
        &prober,
        LandmarkSelector::GreedyMaxMin,
        LANDMARKS,
        PLSET_MULTIPLIER,
        &mut rng,
    )
    .expect("landmark selection");
    let landmarks_ms = ms(t);

    let nodes: Vec<usize> = (1..=n).collect();
    let t = Instant::now();
    let features = build_feature_matrix_par(&prober, &nodes, &selection.landmarks, &mut rng);
    let features_ms = ms(t);

    // Landmark 0 is always the origin, so component 0 of each feature
    // row is the cache's measured server distance.
    let init = match scheme {
        Scheme::Sl => Initializer::RandomRepresentative,
        Scheme::Sdsl(theta) => {
            let dists: Vec<f64> = (0..features.len()).map(|i| features.row(i)[0]).collect();
            Initializer::Weighted(server_distance_weights(&dists, theta))
        }
    };

    let t = Instant::now();
    let clustering = kmeans(
        &features,
        KmeansConfig::new(k).max_iterations(KMEANS_ITERS),
        &init,
        &mut rng,
    )
    .expect("clustering");
    let kmeans_ms = ms(t);

    let groups = clustering.clusters();
    let t = Instant::now();
    let gic_value = average_group_interaction_cost(&groups, |a, b| net.rtt_ms(nodes[a], nodes[b]));
    let gic_ms = ms(t);

    let total_ms = ms(whole);
    ecg_par::set_max_threads(None);

    RunResult {
        scheme: scheme.name(),
        n,
        threads,
        k,
        landmarks: selection.landmarks.len(),
        landmarks_ms,
        features_ms,
        kmeans_ms,
        gic_ms,
        total_ms,
        gic_value,
        assignments: clustering.assignments().to_vec(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_scale.json".to_string());

    let sizes: &[usize] = if quick {
        &[500, 2_000]
    } else {
        &[5_000, 20_000, 50_000]
    };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let schemes = [Scheme::Sl, Scheme::Sdsl(1.0)];

    let logical_cpus = std::thread::available_parallelism().map_or(0, usize::from);
    let ecg_threads_env = std::env::var("ECG_THREADS").ok();

    let mut runs: Vec<RunResult> = Vec::new();
    for &n in sizes {
        // Node 0 is the origin; n edge caches follow.
        let net = SyntheticRttConfig::default().generate(n + 1, 9_000 + n as u64);
        for scheme in schemes {
            let mut baseline: Option<(Vec<usize>, f64)> = None;
            for &threads in thread_counts {
                let run = run_formation(scheme, &net, n, threads);
                eprintln!(
                    "{} n={} threads={}: total {:.0} ms (landmarks {:.0}, features {:.0}, kmeans {:.0}, gic {:.0})",
                    run.scheme,
                    run.n,
                    run.threads,
                    run.total_ms,
                    run.landmarks_ms,
                    run.features_ms,
                    run.kmeans_ms,
                    run.gic_ms
                );
                match &baseline {
                    None => baseline = Some((run.assignments.clone(), run.gic_value)),
                    Some((assignments, gic)) => {
                        assert_eq!(
                            assignments, &run.assignments,
                            "{} n={n}: assignments diverged at {threads} threads",
                            run.scheme
                        );
                        assert_eq!(
                            gic.to_bits(),
                            run.gic_value.to_bits(),
                            "{} n={n}: GIC diverged at {threads} threads",
                            run.scheme
                        );
                    }
                }
                runs.push(run);
            }
        }
    }

    // End-to-end speedups of the widest run vs threads = 1, per (scheme, n).
    let max_threads = *thread_counts.last().expect("non-empty thread list");
    let mut speedups = String::new();
    for &n in sizes {
        for scheme in schemes {
            let time_at = |threads: usize| {
                runs.iter()
                    .find(|r| r.scheme == scheme.name() && r.n == n && r.threads == threads)
                    .expect("run present")
                    .total_ms
            };
            let s = time_at(1) / time_at(max_threads);
            if !speedups.is_empty() {
                speedups.push_str(", ");
            }
            speedups.push_str(&format!(
                "\"{}_n{}_t{}\": {:.3}",
                scheme.name(),
                n,
                max_threads,
                s
            ));
        }
    }

    let mut doc = String::from("{\n  \"context\": {\n");
    doc.push_str(&format!("    \"logical_cpus\": {logical_cpus},\n"));
    doc.push_str(&format!(
        "    \"ecg_threads_env\": {},\n",
        ecg_threads_env.map_or("null".to_string(), |v| format!("\"{v}\""))
    ));
    doc.push_str(&format!(
        "    \"mode\": \"{}\"\n  }},\n",
        if quick { "quick" } else { "full" }
    ));
    doc.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            doc.push_str(",\n");
        }
        doc.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"n\": {}, \"threads\": {}, \"k\": {}, \"landmarks\": {}, \
             \"total_ms\": {:.3}, \"kernels\": {{\"landmarks_ms\": {:.3}, \"features_ms\": {:.3}, \
             \"kmeans_ms\": {:.3}, \"gic_ms\": {:.3}}}, \"gic_value\": {:.6}, \
             \"determinism_ok\": true}}",
            r.scheme,
            r.n,
            r.threads,
            r.k,
            r.landmarks,
            r.total_ms,
            r.landmarks_ms,
            r.features_ms,
            r.kmeans_ms,
            r.gic_ms,
            r.gic_value
        ));
    }
    doc.push_str("\n  ],\n");
    doc.push_str(&format!("  \"end_to_end_speedups\": {{{speedups}}}\n}}\n"));
    std::fs::write(&out_path, doc).expect("write scale json");
    println!("wrote {out_path}");
}
