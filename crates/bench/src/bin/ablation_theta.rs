//! Ablation: SDSL's θ sensitivity.
//!
//! θ controls how strongly SDSL biases initial cluster centers towards
//! the origin (`Pr ∝ 1/dist^θ`). θ = 0 degenerates to SL. Sweeps θ and
//! reports the simulated average latency plus the mean size of the
//! groups containing the 50 nearest / 50 farthest caches — showing the
//! compact-near / spread-far structure emerge as θ grows.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin ablation_theta [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, mean, MetricsSink, Scenario, Table};
use ecg_core::{GfCoordinator, SchemeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    let caches = 300;
    let duration_ms = 120_000.0;
    let k = 30;
    let thetas = [0.0, 0.5, 1.0, 2.0, 4.0];
    let form_seeds = [5u64, 6, 7];

    println!("Ablation: SDSL θ sweep ({caches} caches, K = {k})\n");
    let scenario = Scenario::build(caches, duration_ms, 333);
    let config = scenario.sim_config(duration_ms);
    let near = scenario.network.caches_nearest_origin(50);
    let far = scenario.network.caches_farthest_origin(50);

    let mut table = Table::new([
        "theta",
        "latency_ms",
        "near50_group_size",
        "far50_group_size",
    ]);
    for &theta in &thetas {
        let coord = GfCoordinator::new(SchemeConfig::sdsl(k, theta));
        let (mut lat, mut near_sz, mut far_sz) = (Vec::new(), Vec::new(), Vec::new());
        for &seed in &form_seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = coord
                .form_groups_observed(&scenario.network, &mut rng, obs.as_mut())
                .expect("group formation");
            let report = scenario.simulate_groups_observed(outcome.groups(), config, obs.as_mut());
            lat.push(report.average_latency_ms());
            let avg_size_of = |subset: &[ecg_topology::CacheId]| -> f64 {
                subset
                    .iter()
                    .map(|&c| outcome.groups()[outcome.group_of(c)].len() as f64)
                    .sum::<f64>()
                    / subset.len() as f64
            };
            near_sz.push(avg_size_of(&near));
            far_sz.push(avg_size_of(&far));
        }
        table.row([
            format!("{theta:.1}"),
            f2(mean(&lat)),
            f2(mean(&near_sz)),
            f2(mean(&far_sz)),
        ]);
    }
    table.print();
    println!(
        "\nexpected: as θ grows, near-origin groups shrink and far groups \
         grow; latency bottoms out at a moderate θ and degrades for \
         extreme bias."
    );
    sink.absorb(obs);
    sink.write();
}
