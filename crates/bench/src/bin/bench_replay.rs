//! Large-N scaling sweep for the sharded, streaming trace replay
//! engine ([`ecg_replay`]).
//!
//! Drives [`ecg_replay::replay_streamed_observed`] over an implicit
//! [`SyntheticRtt`](ecg_topology::SyntheticRtt) oracle and contiguous
//! groups of 100 caches, sweeping N × thread counts through
//! [`ecg_par::set_max_threads`]. Nothing global is ever materialized:
//! each shard regenerates its members' request streams from the master
//! seed, so the full sweep reaches N = 50 000 caches × 1M+ streamed
//! requests where an eager `Vec<Request>` (and the dense RTT matrix)
//! would not fit.
//!
//! Every configuration is also a determinism check: the merged
//! [`SimReport`](ecg_sim::SimReport) at each thread count must be
//! bit-identical to the threads = 1 report, or the binary panics.
//! Sharding and threading change time, never results.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin bench_replay             # full, writes BENCH_replay.json
//! cargo run --release -p ecg-bench --bin bench_replay -- --quick  # CI smoke sizes
//! cargo run --release -p ecg-bench --bin bench_replay -- --out /tmp/r.json
//! ```
//!
//! The synthetic oracle, catalog, and update log are generated once per
//! N, outside the timing loop, so per-stage timings (`plan` /
//! `shards` / `merge`, from [`ecg_replay::ReplayTimings`]) measure the
//! replay engine only — never input setup.
//!
//! The emitted JSON records the host context (logical CPUs, the
//! `ECG_THREADS` environment override, quick/full mode) alongside the
//! per-stage timings, because wall-clock scaling is only meaningful
//! relative to the cores the run actually had.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_replay::{replay_streamed_observed, ReplayConfig, ReplayReport, StreamedWorkload};
use ecg_sim::{GroupMap, SimConfig};
use ecg_topology::{CacheId, SyntheticRtt, SyntheticRttConfig};
use ecg_workload::{generate_updates, CatalogConfig, DocumentCatalog, RequestConfig, Update};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Members per contiguous group — the shard granularity of the sweep.
const GROUP_SIZE: usize = 100;
/// Per-cache request rate; N = 50 000 × 12 s × 2/s = 1.2M streamed
/// requests (~1M after warm-up exclusion).
const RATE_PER_SEC: f64 = 2.0;
const DOCS: usize = 1_500;
const DURATION_SECS: f64 = 12.0;

struct RunResult {
    n: usize,
    threads: usize,
    shards: usize,
    requests: u64,
    shard_events: u64,
    plan_ms: f64,
    shards_ms: f64,
    merge_ms: f64,
    total_ms: f64,
    group_hit_rate: f64,
    avg_latency_ms: f64,
}

/// The per-N inputs, generated once outside the timing loop.
struct Inputs {
    net: SyntheticRtt,
    map: GroupMap,
    catalog: DocumentCatalog,
    updates: Vec<Update>,
    master: u64,
}

fn build_inputs(n: usize) -> Inputs {
    let net = SyntheticRttConfig::default().generate(n + 1, 9_000 + n as u64);
    let groups: Vec<Vec<CacheId>> = (0..n)
        .collect::<Vec<_>>()
        .chunks(GROUP_SIZE)
        .map(|chunk| chunk.iter().map(|&c| CacheId(c)).collect())
        .collect();
    let map = GroupMap::new(n, groups).expect("contiguous groups are a valid partition");
    let mut rng = StdRng::seed_from_u64(1_000 + n as u64);
    let catalog = CatalogConfig::default().documents(DOCS).generate(&mut rng);
    let updates = generate_updates(&catalog, DURATION_SECS * 1_000.0, &mut rng);
    let master: u64 = rng.gen();
    Inputs {
        net,
        map,
        catalog,
        updates,
        master,
    }
}

/// One replay at a forced thread count. Inputs are fixed per N, so two
/// runs that differ only in `threads` must produce identical reports.
fn run_replay(inputs: &Inputs, n: usize, threads: usize) -> (ReplayReport, RunResult) {
    let duration_ms = DURATION_SECS * 1_000.0;
    let workload = StreamedWorkload::new(
        RequestConfig::default().rate_per_sec_per_cache(RATE_PER_SEC),
        inputs.master,
        duration_ms,
    )
    .updates(&inputs.updates);
    let config = ReplayConfig::default().sim(SimConfig::default().warmup_ms(duration_ms / 6.0));

    ecg_par::set_max_threads(Some(threads));
    let replayed = replay_streamed_observed(
        &inputs.net,
        &inputs.map,
        &inputs.catalog,
        &workload,
        &config,
        None,
    )
    .expect("streamed replay");
    ecg_par::set_max_threads(None);

    let t = &replayed.timings;
    let result = RunResult {
        n,
        threads,
        shards: replayed.shards,
        requests: replayed.report.metrics.total_requests(),
        shard_events: replayed.shard_events,
        plan_ms: t.plan_ms,
        shards_ms: t.shards_ms,
        merge_ms: t.merge_ms,
        total_ms: t.total_ms(),
        group_hit_rate: replayed.report.metrics.group_hit_rate().unwrap_or(0.0),
        avg_latency_ms: replayed.report.average_latency_ms(),
    };
    (replayed, result)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_replay.json".to_string());

    let sizes: &[usize] = if quick {
        &[500, 2_000]
    } else {
        &[5_000, 20_000, 50_000]
    };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 8] };

    let logical_cpus = std::thread::available_parallelism().map_or(0, usize::from);
    let ecg_threads_env = std::env::var("ECG_THREADS").ok();

    let mut runs: Vec<RunResult> = Vec::new();
    for &n in sizes {
        // Oracle, groups, catalog, and update log built once per N,
        // outside the timing loop.
        let inputs = build_inputs(n);
        let mut baseline = None;
        for &threads in thread_counts {
            let (replayed, run) = run_replay(&inputs, n, threads);
            eprintln!(
                "n={} threads={}: {} requests in {} shards, total {:.0} ms (plan {:.0}, shards {:.0}, merge {:.0})",
                run.n,
                run.threads,
                run.requests,
                run.shards,
                run.total_ms,
                run.plan_ms,
                run.shards_ms,
                run.merge_ms
            );
            match &baseline {
                None => baseline = Some(replayed.report),
                Some(report) => {
                    assert_eq!(
                        report, &replayed.report,
                        "n={n}: merged report diverged at {threads} threads"
                    );
                }
            }
            runs.push(run);
        }
    }

    // End-to-end speedups of the widest run vs threads = 1, per N.
    let max_threads = *thread_counts.last().expect("non-empty thread list");
    let mut speedups = String::new();
    for &n in sizes {
        let time_at = |threads: usize| {
            runs.iter()
                .find(|r| r.n == n && r.threads == threads)
                .expect("run present")
                .total_ms
        };
        if !speedups.is_empty() {
            speedups.push_str(", ");
        }
        speedups.push_str(&format!(
            "\"n{}_t{}\": {:.3}",
            n,
            max_threads,
            time_at(1) / time_at(max_threads)
        ));
    }

    let mut doc = String::from("{\n  \"context\": {\n");
    doc.push_str(&format!("    \"logical_cpus\": {logical_cpus},\n"));
    doc.push_str(&format!(
        "    \"ecg_threads_env\": {},\n",
        ecg_threads_env.map_or("null".to_string(), |v| format!("\"{v}\""))
    ));
    doc.push_str(&format!(
        "    \"mode\": \"{}\"\n  }},\n",
        if quick { "quick" } else { "full" }
    ));
    doc.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            doc.push_str(",\n");
        }
        doc.push_str(&format!(
            "    {{\"n\": {}, \"threads\": {}, \"shards\": {}, \"requests\": {}, \
             \"shard_events\": {}, \"total_ms\": {:.3}, \"stages\": {{\"plan_ms\": {:.3}, \
             \"shards_ms\": {:.3}, \"merge_ms\": {:.3}}}, \"group_hit_rate\": {:.6}, \
             \"avg_latency_ms\": {:.6}, \"determinism_ok\": true}}",
            r.n,
            r.threads,
            r.shards,
            r.requests,
            r.shard_events,
            r.total_ms,
            r.plan_ms,
            r.shards_ms,
            r.merge_ms,
            r.group_hit_rate,
            r.avg_latency_ms
        ));
    }
    doc.push_str("\n  ],\n");
    doc.push_str(&format!("  \"end_to_end_speedups\": {{{speedups}}}\n}}\n"));
    std::fs::write(&out_path, doc).expect("write replay json");
    println!("wrote {out_path}");
}
