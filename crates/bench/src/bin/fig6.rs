//! Figure 6: effect of the number of landmarks on clustering accuracy.
//!
//! A 500-cache network, K = 10 groups; the landmark count swept over
//! {10, 20, 25} (plus 35 to show the saturation the paper describes in
//! prose). Reports average group interaction cost (ms) for the three
//! landmark selectors.
//!
//! Paper's findings: accuracy improves with more landmarks, with only
//! minor gains past 25; the greedy SL selector wins at every landmark
//! count.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin fig6 [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, interaction_cost_ms, mean, MetricsSink, Scenario, Table};
use ecg_core::{GfCoordinator, LandmarkSelector, SchemeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    let caches = 500;
    let k = 10;
    let landmark_counts = [10usize, 20, 25, 35];
    let selectors = [
        LandmarkSelector::GreedyMaxMin,
        LandmarkSelector::Random,
        LandmarkSelector::MinDist,
    ];
    let seeds: Vec<u64> = (0..10).collect();

    println!(
        "Figure 6: avg group interaction cost (ms) vs number of landmarks\n\
         ({caches} caches, K = {k}, M = 4)\n"
    );
    let network = Scenario::network_only(caches, 61_000);
    let mut table = Table::new(["landmarks", "greedy_SL", "random", "min_dist"]);
    for &l in &landmark_counts {
        let mut cols = Vec::new();
        for &selector in &selectors {
            let coord = GfCoordinator::new(SchemeConfig::sl(k).landmarks(l).selector(selector));
            let gics: Vec<f64> = seeds
                .iter()
                .map(|&seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let outcome = coord
                        .form_groups_observed(&network, &mut rng, obs.as_mut())
                        .expect("group formation");
                    interaction_cost_ms(&outcome, &network)
                })
                .collect();
            cols.push(mean(&gics));
        }
        table.row([l.to_string(), f2(cols[0]), f2(cols[1]), f2(cols[2])]);
    }
    table.print();
    println!(
        "\nexpected: all selectors improve with more landmarks, with little \
         change beyond 25; greedy_SL best at every landmark count."
    );
    sink.absorb(obs);
    sink.write();
}
