//! Ablation: incremental maintenance vs. periodic re-formation.
//!
//! The paper forms groups once. Under churn an operator chooses
//! between re-running the scheme (accurate, expensive: full landmark
//! probing) and admitting newcomers incrementally (cheap: each probes
//! only the existing landmarks). This experiment admits waves of new
//! caches and tracks the interaction-cost drift of incremental
//! maintenance against a freshly re-formed grouping at every step.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin ablation_maintenance [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, MetricsSink, Table};
use ecg_coords::ProbeConfig;
use ecg_core::{GfCoordinator, GroupMaintainer, SchemeConfig};
use ecg_topology::{CacheId, EdgeNetwork, OriginPlacement, TransitStubConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    let initial = 100;
    let waves = 6;
    let joins_per_wave = 15;
    let k = 12;

    println!(
        "Ablation: incremental admission vs re-formation \
         ({initial} caches + {waves} waves x {joins_per_wave} joins, K = {k})\n"
    );
    let mut rng = StdRng::seed_from_u64(55);
    let topo = TransitStubConfig::for_caches(initial).generate(&mut rng);
    let mut network = EdgeNetwork::place(&topo, initial, OriginPlacement::TransitNode, &mut rng)
        .expect("placement");
    let coordinator = GfCoordinator::new(SchemeConfig::sdsl(k, 1.0));
    let outcome = coordinator
        .form_groups_observed(&network, &mut rng, obs.as_mut())
        .expect("initial formation");
    let mut maintainer = GroupMaintainer::new(&network, outcome, ProbeConfig::default());

    let gic_of = |groups: &[Vec<CacheId>], network: &EdgeNetwork| -> f64 {
        let idx: Vec<Vec<usize>> = groups
            .iter()
            .map(|g| g.iter().map(|c| c.index()).collect())
            .collect();
        ecg_clustering::average_group_interaction_cost(&idx, |a, b| {
            network.cache_to_cache(CacheId(a), CacheId(b))
        })
    };

    let mut table = Table::new([
        "wave",
        "caches",
        "incremental_gic",
        "reformed_gic",
        "drift",
        "reform_probe_cost",
    ]);
    for wave in 1..=waves {
        // Newcomers appear near random existing caches (new rack in an
        // existing PoP), plus occasional truly remote ones.
        for _ in 0..joins_per_wave {
            let n = network.cache_count();
            let anchor = CacheId(rng.gen_range(0..n));
            let remote = rng.gen_bool(0.2);
            let rtts: Vec<f64> = (0..n)
                .map(|i| {
                    if remote {
                        rng.gen_range(80.0..250.0)
                    } else if CacheId(i) == anchor {
                        rng.gen_range(0.5..2.0)
                    } else {
                        network.cache_to_cache(anchor, CacheId(i)) + rng.gen_range(0.5..2.0)
                    }
                })
                .collect();
            let to_origin = if remote {
                rng.gen_range(80.0..250.0)
            } else {
                network.cache_to_origin(anchor) + rng.gen_range(0.5..2.0)
            };
            network = network.with_added_cache(to_origin, &rtts);
            maintainer
                .admit_observed(&network, &mut rng, obs.as_mut())
                .expect("admission");
        }

        let incremental = gic_of(maintainer.groups(), &network);
        // A fair re-formation takes the best of several K-means seeds
        // (what an operator would do, since clustering is cheap next to
        // the probing it requires).
        let mut best: Option<(f64, u64)> = None;
        for attempt in 0..5u64 {
            let mut reform_rng = StdRng::seed_from_u64(900 + wave as u64 * 10 + attempt);
            let outcome = coordinator
                .form_groups_observed(&network, &mut reform_rng, obs.as_mut())
                .expect("re-formation");
            let gic = gic_of(outcome.groups(), &network);
            if best.is_none_or(|(b, _)| gic < b) {
                best = Some((gic, outcome.probes_sent()));
            }
        }
        let (reformed, probes) = best.expect("attempts ran");
        table.row([
            wave.to_string(),
            network.cache_count().to_string(),
            f2(incremental),
            f2(reformed),
            f2(maintainer.drift(&network).expect("drift")),
            probes.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nexpected: incremental admission holds up remarkably well — the \
         drift column grows slowly — while every re-formation pays the \
         full landmark probing bill again (last column, per attempt). \
         Re-form when drift crosses your threshold, not on a timer."
    );
    sink.absorb(obs);
    sink.write();
}
