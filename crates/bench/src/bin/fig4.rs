//! Figure 4: effect of landmark selection on clustering accuracy,
//! varying network size.
//!
//! Networks of 100–500 caches, K = 10% of N, 25 landmarks. Three
//! landmark selectors: the SL greedy technique, random selection, and
//! the adversarial min-dist selection. Reports average group
//! interaction cost (ms).
//!
//! Paper's finding: greedy (SL) is best everywhere — 8–26% better than
//! random and 21–46% better than min-dist.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin fig4 [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, interaction_cost_ms, mean, MetricsSink, Scenario, Table};
use ecg_core::{GfCoordinator, LandmarkSelector, SchemeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    let sizes = [100usize, 200, 300, 400, 500];
    let selectors = [
        LandmarkSelector::GreedyMaxMin,
        LandmarkSelector::Random,
        LandmarkSelector::MinDist,
    ];
    let seeds: Vec<u64> = (0..10).collect();

    println!(
        "Figure 4: avg group interaction cost (ms) vs network size\n\
         (K = 10% of N, L = 25, M = 4)\n"
    );
    let mut table = Table::new(["caches", "greedy_SL", "random", "min_dist"]);
    for &n in &sizes {
        let network = Scenario::network_only(n, 7_000 + n as u64);
        let k = n / 10;
        let mut cols = Vec::new();
        for &selector in &selectors {
            let coord = GfCoordinator::new(SchemeConfig::sl(k).selector(selector));
            let gics: Vec<f64> = seeds
                .iter()
                .map(|&seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let outcome = coord
                        .form_groups_observed(&network, &mut rng, obs.as_mut())
                        .expect("group formation");
                    interaction_cost_ms(&outcome, &network)
                })
                .collect();
            cols.push(mean(&gics));
        }
        table.row([n.to_string(), f2(cols[0]), f2(cols[1]), f2(cols[2])]);
    }
    table.print();
    println!("\nexpected ordering at every size: greedy_SL < random < min_dist.");
    sink.absorb(obs);
    sink.write();
}
