//! Ablation: position representation (feature vectors / GNP / Vivaldi).
//!
//! Extends Figure 7 with the landmark-free Vivaldi coordinates cited in
//! the paper's related work, and reports the *probing overhead* of each
//! representation alongside its clustering accuracy — the cost axis the
//! paper argues about in prose.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin ablation_representation [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, interaction_cost_ms, mean, MetricsSink, Scenario, Table};
use ecg_coords::{GnpConfig, VivaldiConfig};
use ecg_core::{GfCoordinator, Representation, SchemeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    let caches = 200;
    let k = 20;
    let seeds: Vec<u64> = (0..4).collect();

    println!("Ablation: position representation ({caches} caches, K = {k}, 25 landmarks)\n");
    let network = Scenario::network_only(caches, 24_680);

    let reps: Vec<(&str, Representation)> = vec![
        ("feature_vectors", Representation::FeatureVectors),
        (
            "gnp_d7",
            Representation::Gnp(
                GnpConfig::default()
                    .dimensions(7)
                    .restarts(2)
                    .max_iterations(600),
            ),
        ),
        (
            "vivaldi_d4",
            Representation::Vivaldi(VivaldiConfig::default().dimensions(4).rounds(400)),
        ),
    ];

    let mut table = Table::new(["representation", "gic_ms", "probes"]);
    for (name, rep) in reps {
        let coord = GfCoordinator::new(SchemeConfig::sl(k).representation(rep));
        let (mut gic, mut probes) = (Vec::new(), Vec::new());
        for &seed in &seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = coord
                .form_groups_observed(&network, &mut rng, obs.as_mut())
                .expect("group formation");
            gic.push(interaction_cost_ms(&outcome, &network));
            probes.push(outcome.probes_sent() as f64);
        }
        table.row([
            name.to_string(),
            f2(mean(&gic)),
            format!("{:.0}", mean(&probes)),
        ]);
    }
    table.print();
    println!(
        "\nexpected: feature vectors and GNP comparable in accuracy (Fig 7); \
         Vivaldi lands close but needs roughly an order of magnitude more \
         probes — the cost of landmark-free convergence."
    );
    sink.absorb(obs);
    sink.write();
}
