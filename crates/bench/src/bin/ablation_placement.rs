//! Ablation: in-group placement/replication policy under a regional
//! flash crowd.
//!
//! The paper's caches demand-replicate: every peer hit leaves one more
//! copy behind, and an origin fetch always lands on the requester. That
//! is wasteful under capacity pressure — replicas of the same few hot
//! documents crowd out the rest of the catalog, so the *group* hit rate
//! falls even as local hit rates look healthy. This experiment pits the
//! single-holder baseline against two replica-aware placement policies
//! (`ecg-place`): Leconte-style adaptive replication (replicate only
//! documents whose decayed request rate clears a promote threshold) and
//! Pourmiri-style proximity-aware power-of-d-choices (one balanced copy
//! per document, placed on the least-loaded of d RTT-weighted samples).
//!
//! The workload is the correlated regional flash crowd
//! ([`ecg_workload::RegionalFlashCrowdConfig`]): two of six regions
//! surge 6x onto a small shared hot set mid-trace. Caches are small
//! (256 KiB) relative to the ~12 MB catalog, so placement decisions are
//! consequential. Each placement runs under all four replacement
//! policies to show the effect is not an artifact of one eviction rule.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin ablation_placement [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, par_map, MetricsSink, Table};
use ecg_cache::PolicyKind;
use ecg_core::{GfCoordinator, SchemeConfig};
use ecg_obs::Obs;
use ecg_sim::{simulate_observed, GroupMap, PlacementKind, SimConfig};
use ecg_topology::{EdgeNetwork, OriginPlacement, TransitStubConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CACHES: usize = 60;
const GROUPS: usize = 8;
const DOCUMENTS: usize = 1_500;
const DURATION_MS: f64 = 300_000.0;
const CAPACITY_BYTES: u64 = 256 * 1024;
const NETWORK_SEED: u64 = 23;
const WORKLOAD_SEED: u64 = 29;
const FORMATION_SEED: u64 = 31;

const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Utility,
    PolicyKind::Lru,
    PolicyKind::Lfu,
    PolicyKind::Gdsf,
];

fn placements() -> [PlacementKind; 3] {
    [
        PlacementKind::SingleHolder,
        PlacementKind::adaptive(),
        PlacementKind::d_choices(),
    ]
}

fn main() {
    let mut sink = MetricsSink::from_args();
    let obs = sink.collect();

    let mut rng = StdRng::seed_from_u64(NETWORK_SEED);
    let topo = TransitStubConfig::for_caches(CACHES).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, CACHES, OriginPlacement::TransitNode, &mut rng)
        .expect("scenario placement");

    let mut wl_rng = StdRng::seed_from_u64(WORKLOAD_SEED);
    let workload = ecg_workload::RegionalFlashCrowdConfig::default()
        .caches(CACHES)
        .documents(DOCUMENTS)
        .duration_ms(DURATION_MS)
        .generate(&mut wl_rng);
    let trace = workload.merged_trace();

    // Groups are formed once (SDSL, the paper's best scheme) and shared
    // by every cell: the ablation varies placement, not formation.
    let mut form_rng = StdRng::seed_from_u64(FORMATION_SEED);
    let outcome = GfCoordinator::new(SchemeConfig::sdsl(GROUPS, 1.0))
        .form_groups(&network, &mut form_rng)
        .expect("group formation");
    let map = GroupMap::new(CACHES, outcome.groups().to_vec()).expect("grouping partitions caches");

    println!(
        "Ablation: in-group placement policy ({CACHES} caches, K = {GROUPS} SDSL groups, \
         {DOCUMENTS} documents, {} KiB caches, regional flash crowd)\n",
        CAPACITY_BYTES / 1024
    );

    let cells: Vec<(PlacementKind, PolicyKind)> = placements()
        .into_iter()
        .flat_map(|placement| POLICIES.into_iter().map(move |policy| (placement, policy)))
        .collect();

    let collect = sink.enabled();
    let pairs = par_map(cells.clone(), |(placement, policy)| {
        let mut cell_obs = if collect { Some(Obs::new()) } else { None };
        let config = SimConfig::default()
            .cache_capacity_bytes(CAPACITY_BYTES)
            .policy(policy)
            .placement(placement)
            .warmup_ms(DURATION_MS / 6.0);
        let report = simulate_observed(
            &network,
            &map,
            &workload.catalog,
            &trace,
            config,
            cell_obs.as_mut(),
        )
        .expect("simulation inputs are consistent");
        (report, cell_obs)
    });
    sink.absorb(obs);
    let mut reports = Vec::with_capacity(pairs.len());
    for (report, cell_obs) in pairs {
        sink.absorb(cell_obs);
        reports.push(report);
    }

    let mut table = Table::new([
        "placement",
        "policy",
        "group_hit_%",
        "latency_ms",
        "peer_mb",
        "origin",
        "replicas",
        "suppressed",
        "remote",
    ]);
    let mut json_cells = Vec::new();
    for ((placement, policy), report) in cells.iter().zip(&reports) {
        let hit = 100.0 * report.metrics.group_hit_rate().unwrap_or(0.0);
        let latency = report.average_latency_ms();
        let peer_mb = report.metrics.peer_bytes as f64 / (1024.0 * 1024.0);
        table.row([
            placement.name().to_string(),
            policy.name().to_string(),
            f2(hit),
            f2(latency),
            f2(peer_mb),
            report.origin_fetches.to_string(),
            report.metrics.replicas_created.to_string(),
            report.metrics.replicas_suppressed.to_string(),
            report.metrics.remote_placements.to_string(),
        ]);
        json_cells.push(format!(
            "{{\"placement\":\"{}\",\"policy\":\"{}\",\"group_hit_rate\":{},\
             \"avg_latency_ms\":{},\"peer_bytes\":{},\"origin_fetches\":{},\
             \"replicas_created\":{},\"replicas_suppressed\":{},\
             \"remote_placements\":{},\"stale_served\":{}}}",
            placement.name(),
            policy.name(),
            report.metrics.group_hit_rate().unwrap_or(0.0),
            report.average_latency_ms(),
            report.metrics.peer_bytes,
            report.origin_fetches,
            report.metrics.replicas_created,
            report.metrics.replicas_suppressed,
            report.metrics.remote_placements,
            report.metrics.stale_served,
        ));
    }
    table.print();
    println!(
        "\nexpected: the single-holder baseline demand-replicates the hot \
         set into every affected cache, evicting the catalog's tail; \
         adaptive replication suppresses cold-document replicas and \
         d-choices keeps one balanced copy per document, so both hold a \
         higher group hit rate (and fewer origin fetches) through the \
         surge."
    );

    let json = format!(
        "{{\"caches\":{CACHES},\"groups\":{GROUPS},\"documents\":{DOCUMENTS},\
         \"duration_ms\":{DURATION_MS},\"capacity_bytes\":{CAPACITY_BYTES},\
         \"cells\":[{}]}}",
        json_cells.join(",")
    );
    let path = std::path::Path::new("results").join("ablation_placement.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&path, &json).expect("write results JSON");
    println!("\nfull cells written to {}", path.display());
    sink.write();
}
