//! Figure 9: SL vs. SDSL on client latency, varying the number of
//! groups.
//!
//! A 500-cache network; K swept from 10 to 100; groups formed by SL and
//! by SDSL (θ = 1). Reports the simulated average client latency.
//!
//! Paper's finding: SDSL yields lower latency than SL irrespective of
//! the number of cache groups formed.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin fig9 [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, mean, par_map, MetricsSink, Scenario, Table};
use ecg_core::{GfCoordinator, SchemeConfig};
use ecg_obs::Obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let caches = 500;
    let duration_ms = 120_000.0;
    let ks = [10usize, 25, 50, 75, 100];
    let form_seeds = [21u64, 22];
    let theta = 1.0;

    println!(
        "Figure 9: avg client latency (ms) vs number of groups, SL vs SDSL\n\
         ({caches} caches, θ = {theta})\n"
    );
    let scenario = Scenario::build(caches, duration_ms, 999);
    let config = scenario.sim_config(duration_ms);

    // One cell per (K, seed, scheme); all run concurrently.
    let mut cells = Vec::new();
    for &k in &ks {
        for &seed in &form_seeds {
            for (slot, scheme) in [SchemeConfig::sl(k), SchemeConfig::sdsl(k, theta)]
                .into_iter()
                .enumerate()
            {
                cells.push((k, seed, slot, scheme));
            }
        }
    }
    let scenario_ref = &scenario;
    let collect = sink.enabled();
    let pairs = par_map(cells, |(k, seed, slot, scheme)| {
        let mut obs = if collect { Some(Obs::new()) } else { None };
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = GfCoordinator::new(scheme)
            .form_groups_observed(&scenario_ref.network, &mut rng, obs.as_mut())
            .expect("group formation");
        let report = scenario_ref.simulate_groups_observed(outcome.groups(), config, obs.as_mut());
        ((k, slot, report.average_latency_ms()), obs)
    });
    let mut results = Vec::with_capacity(pairs.len());
    for (r, obs) in pairs {
        sink.absorb(obs);
        results.push(r);
    }

    let mut table = Table::new(["K", "SL_ms", "SDSL_ms", "SDSL_gain"]);
    for &k in &ks {
        let of = |slot: usize| -> Vec<f64> {
            results
                .iter()
                .filter(|(rk, rslot, _)| *rk == k && *rslot == slot)
                .map(|(_, _, l)| *l)
                .collect()
        };
        let (sl, sdsl) = (mean(&of(0)), mean(&of(1)));
        table.row([
            k.to_string(),
            f2(sl),
            f2(sdsl),
            format!("{:.1}%", 100.0 * (sl - sdsl) / sl),
        ]);
    }
    table.print();
    println!("\nexpected: the SDSL column below the SL column at every K.");
    sink.write();
}
