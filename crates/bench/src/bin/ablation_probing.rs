//! Ablation: probing overhead vs. clustering accuracy.
//!
//! The landmark framework exists to avoid measuring all `N(N-1)/2`
//! cache pairs. This ablation quantifies the trade it makes: cluster
//! the same network with
//!
//! * **SL** — landmarks + feature vectors (probes `O(M²L² + N·L)`),
//! * **PAM on the fully measured matrix** — every pair probed
//!   (`O(N²)`), clustering directly on measured dissimilarities,
//!
//! and report both the interaction-cost accuracy and the probes spent.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin ablation_probing [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, interaction_cost_ms, mean, MetricsSink, Scenario, Table};
use ecg_clustering::average_group_interaction_cost;
use ecg_clustering::medoids::pam;
use ecg_coords::{ProbeConfig, Prober};
use ecg_core::{GfCoordinator, SchemeConfig};
use ecg_sim::LatencyModel;
use ecg_topology::CacheId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    let sizes = [100usize, 200, 300];
    let k_frac = 10;
    let seeds: Vec<u64> = (0..3).collect();

    println!("Ablation: landmark probing vs full measurement (K = N/{k_frac})\n");
    let model = LatencyModel::default();
    let mut table = Table::new([
        "caches",
        "SL_gic",
        "SL_probes",
        "PAM_gic",
        "PAM_probes",
        "probe_ratio",
    ]);
    for &n in &sizes {
        let network = Scenario::network_only(n, 3_000 + n as u64);
        let k = n / k_frac;
        let cost = |a: usize, b: usize| {
            model.interaction_cost(network.cache_to_cache(CacheId(a), CacheId(b)), 8.0 * 1024.0)
        };

        // SL through the standard pipeline.
        let coord = GfCoordinator::new(SchemeConfig::sl(k));
        let (mut sl_gic, mut sl_probes) = (Vec::new(), Vec::new());
        for &seed in &seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = coord
                .form_groups_observed(&network, &mut rng, obs.as_mut())
                .expect("formation");
            sl_gic.push(interaction_cost_ms(&outcome, &network));
            sl_probes.push(outcome.probes_sent() as f64);
        }

        // PAM over the fully measured pairwise matrix.
        let (mut pam_gic, mut pam_probes) = (Vec::new(), Vec::new());
        for &seed in &seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let prober = Prober::new(network.rtt_matrix(), ProbeConfig::default());
            // Measure every cache pair once (matrix indices 1..=n).
            let mut measured = vec![vec![0.0f64; n]; n];
            #[allow(clippy::needless_range_loop)] // writes both [a][b] and [b][a]
            for a in 0..n {
                for b in (a + 1)..n {
                    let rtt = prober.measure_observed(a + 1, b + 1, &mut rng, obs.as_mut());
                    measured[a][b] = rtt;
                    measured[b][a] = rtt;
                }
            }
            let result = pam(n, k, |a, b| measured[a][b], 20, &mut rng);
            pam_gic.push(average_group_interaction_cost(&result.clusters(), cost));
            pam_probes.push(prober.probes_sent() as f64);
        }

        let ratio = mean(&pam_probes) / mean(&sl_probes);
        table.row([
            n.to_string(),
            f2(mean(&sl_gic)),
            format!("{:.0}", mean(&sl_probes)),
            f2(mean(&pam_gic)),
            format!("{:.0}", mean(&pam_probes)),
            format!("{ratio:.1}x"),
        ]);
    }
    table.print();
    println!(
        "\nexpected: full measurement buys a modest accuracy edge at a \
         probe cost that grows with N² — the overhead the paper's \
         landmark design amortizes away."
    );
    sink.absorb(obs);
    sink.write();
}
