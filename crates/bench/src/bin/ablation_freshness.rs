//! Ablation: freshness maintenance protocol.
//!
//! The paper's intro motivates cache cooperation partly by
//! "collaborative document freshness maintenance"; its simulator uses
//! the authors' Cache Clouds machinery. This ablation compares three
//! freshness protocols under identical SDSL groups and an update-heavy
//! workload:
//!
//! * **invalidate-on-access** — staleness found lazily (our default),
//! * **origin multicast** — push invalidations, zero staleness,
//! * **TTL lease (30 s)** — serve within the lease, cheapest upstream.
//!
//! Reported: latency, origin load, push-message volume, and the
//! client-visible staleness each protocol trades.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin ablation_freshness [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, MetricsSink, Scenario, Table};
use ecg_core::{GfCoordinator, SchemeConfig};
use ecg_sim::FreshnessProtocol;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    let caches = 150;
    let duration_ms = 180_000.0;
    let k = 15;

    println!("Ablation: freshness protocol ({caches} caches, K = {k}, SDSL θ = 1)\n");
    let scenario = Scenario::build(caches, duration_ms, 313);
    let mut rng = StdRng::seed_from_u64(14);
    let outcome = GfCoordinator::new(SchemeConfig::sdsl(k, 1.0))
        .form_groups_observed(&scenario.network, &mut rng, obs.as_mut())
        .expect("group formation");

    let mut table = Table::new([
        "protocol",
        "latency_ms",
        "origin_fetches",
        "invalidations",
        "stale_served",
        "stale_rate",
    ]);
    for (name, protocol) in [
        (
            "invalidate_on_access",
            FreshnessProtocol::InvalidateOnAccess,
        ),
        ("origin_multicast", FreshnessProtocol::OriginMulticast),
        (
            "ttl_lease_30s",
            FreshnessProtocol::TtlLease { ttl_ms: 30_000.0 },
        ),
    ] {
        let config = scenario.sim_config(duration_ms).freshness(protocol);
        let report = scenario.simulate_groups_observed(outcome.groups(), config, obs.as_mut());
        let total = report.metrics.total_requests().max(1);
        table.row([
            name.to_string(),
            f2(report.average_latency_ms()),
            report.origin_fetches.to_string(),
            report.metrics.invalidations_sent.to_string(),
            report.metrics.stale_served.to_string(),
            format!(
                "{:.2}%",
                100.0 * report.metrics.stale_served as f64 / total as f64
            ),
        ]);
    }
    table.print();
    println!(
        "\nexpected: multicast has zero staleness at the cost of push \
         traffic; the TTL lease cuts origin fetches but serves stale \
         versions; invalidate-on-access pays neither push messages nor \
         staleness, taking the misses instead."
    );
    sink.absorb(obs);
    sink.write();
}
