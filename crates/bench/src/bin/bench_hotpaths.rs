//! Hot-path performance baseline: K-means, group formation, trace
//! replay.
//!
//! Times the optimized hot paths against their retained reference
//! implementations:
//!
//! * `kmeans/reference` vs `kmeans/pruned_flat` — the naive ragged-row
//!   Lloyd loop against the flat-storage, bound-pruned one (identical
//!   output, see `ecg_clustering::kmeans_reference`);
//! * `group_formation/sl_end_to_end` — the full SL pipeline (probing,
//!   feature matrix, clustering) as an absolute figure;
//! * `trace_replay/scan_all` vs `trace_replay/holder_index` — the
//!   simulator's cooperative-miss path probing every peer's cache map
//!   against the document→holder bitset (identical reports, see
//!   `ecg_sim::PeerLookup`).
//!
//! Writes the run as machine-readable JSON (per-benchmark stats plus
//! derived speedups) so regressions can be diffed against the committed
//! baseline:
//!
//! ```text
//! cargo run --release -p ecg-bench --bin bench_hotpaths            # full, writes BENCH_hotpaths.json
//! cargo run --release -p ecg-bench --bin bench_hotpaths -- --quick # CI smoke sizes
//! cargo run --release -p ecg-bench --bin bench_hotpaths -- --out /tmp/b.json
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use criterion::{Criterion, SampleStats, Throughput};
use ecg_bench::Scenario;
use ecg_clustering::{kmeans, kmeans_reference, FeatureMatrix, Initializer, KmeansConfig};
use ecg_core::{GfCoordinator, SchemeConfig};
use ecg_sim::{simulate, GroupMap, PeerLookup, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Sizes {
    kmeans_n: usize,
    kmeans_dim: usize,
    kmeans_k: usize,
    formation_caches: usize,
    replay_caches: usize,
    replay_duration_ms: f64,
    samples: usize,
}

const FULL: Sizes = Sizes {
    kmeans_n: 5_000,
    kmeans_dim: 25,
    kmeans_k: 100,
    formation_caches: 200,
    replay_caches: 128,
    replay_duration_ms: 60_000.0,
    samples: 15,
};

const QUICK: Sizes = Sizes {
    kmeans_n: 300,
    kmeans_dim: 8,
    kmeans_k: 10,
    formation_caches: 60,
    replay_caches: 16,
    replay_duration_ms: 10_000.0,
    samples: 3,
};

/// Blob-structured points: landmark feature vectors of edge caches are
/// clustered by topology locality, not uniform noise, so the K-means
/// benchmark uses the same shape — `blobs` centers with a ±`spread`
/// scatter around each.
fn clustered_points(n: usize, dim: usize, blobs: usize, spread: f64, seed: u64) -> FeatureMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..blobs)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..200.0)).collect())
        .collect();
    let mut m = FeatureMatrix::with_capacity(n, dim);
    for i in 0..n {
        let center = &centers[i % blobs];
        let row: Vec<f64> = center
            .iter()
            .map(|&c| c + rng.gen_range(-spread..spread))
            .collect();
        m.push_row(&row);
    }
    m
}

fn median_of(stats: &[SampleStats], name: &str) -> f64 {
    stats
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("benchmark {name} did not run"))
        .median_ns
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_hotpaths.json".to_string());
    let sizes = if quick { QUICK } else { FULL };

    let mut c = Criterion::default();

    // K-means: the pruned flat-storage loop vs the retained naive one.
    {
        // One blob per cluster with wide scatter, seeded with K-means++ so
        // each center lands in its own blob: after the first few
        // iterations the centers barely move while points stay far from
        // every foreign center — the steady-state regime the paper's
        // periodic re-clustering spends most of its time in, and the one
        // bound pruning is designed for.
        let pts = clustered_points(sizes.kmeans_n, sizes.kmeans_dim, sizes.kmeans_k, 30.0, 42);
        let config = KmeansConfig::new(sizes.kmeans_k);
        let mut group = c.benchmark_group("kmeans");
        group
            .sample_size(sizes.samples)
            .throughput(Throughput::Elements(sizes.kmeans_n as u64));
        // Reseed inside the body so every sample times identical work.
        group.bench_function("reference", |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                kmeans_reference(&pts, config, &Initializer::KmeansPlusPlus, &mut rng)
                    .expect("clustering")
            })
        });
        group.bench_function("pruned_flat", |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                kmeans(&pts, config, &Initializer::KmeansPlusPlus, &mut rng).expect("clustering")
            })
        });
        group.finish();
    }

    // Group formation end-to-end: probing + feature matrix + clustering.
    {
        let network = Scenario::network_only(sizes.formation_caches, 4_242);
        let coord = GfCoordinator::new(SchemeConfig::sl(sizes.formation_caches / 10));
        let mut group = c.benchmark_group("group_formation");
        group
            .sample_size(sizes.samples)
            .throughput(Throughput::Elements(sizes.formation_caches as u64));
        group.bench_function("sl_end_to_end", |b| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| coord.form_groups(&network, &mut rng).expect("formation"))
        });
        group.finish();
    }

    // Trace replay: one big cooperative group, caches small enough that
    // most requests miss and fan out to every peer.
    {
        let scenario = Scenario::build(sizes.replay_caches, sizes.replay_duration_ms, 99);
        let groups = GroupMap::one_group(sizes.replay_caches);
        let base = SimConfig::default().cache_capacity_bytes(128 * 1024);
        let mut group = c.benchmark_group("trace_replay");
        group
            .sample_size(sizes.samples)
            .throughput(Throughput::Elements(scenario.trace.len() as u64));
        for (name, lookup) in [
            ("scan_all", PeerLookup::ScanAll),
            ("holder_index", PeerLookup::HolderIndex),
        ] {
            let config = base.peer_lookup(lookup);
            group.bench_function(name, |b| {
                b.iter(|| {
                    simulate(
                        &scenario.network,
                        &groups,
                        &scenario.workload.catalog,
                        &scenario.trace,
                        config,
                    )
                    .expect("simulation")
                })
            });
        }
        group.finish();
    }

    let stats = c.stats();
    let kmeans_speedup =
        median_of(stats, "kmeans/reference") / median_of(stats, "kmeans/pruned_flat");
    let replay_speedup =
        median_of(stats, "trace_replay/scan_all") / median_of(stats, "trace_replay/holder_index");
    println!("\nkmeans speedup (pruned_flat vs reference):    {kmeans_speedup:.2}x");
    println!("trace replay speedup (holder_index vs scan):  {replay_speedup:.2}x");

    // Record the run context alongside the numbers: a timing baseline
    // is only comparable to runs with the same core budget and sizes.
    let logical_cpus = std::thread::available_parallelism().map_or(0, usize::from);
    let threads_used = ecg_par::max_threads();
    let ecg_threads_env = std::env::var("ECG_THREADS").ok();

    let mut doc = String::from("{\n  \"context\": {\n");
    doc.push_str(&format!("    \"logical_cpus\": {logical_cpus},\n"));
    doc.push_str(&format!("    \"threads_used\": {threads_used},\n"));
    doc.push_str(&format!(
        "    \"ecg_threads_env\": {},\n",
        ecg_threads_env.map_or("null".to_string(), |v| format!("\"{v}\""))
    ));
    doc.push_str(&format!(
        "    \"mode\": \"{}\"\n  }},\n",
        if quick { "quick" } else { "full" }
    ));
    doc.push_str("  \"benchmarks\": [\n");
    for (i, s) in stats.iter().enumerate() {
        if i > 0 {
            doc.push_str(",\n");
        }
        doc.push_str("    ");
        doc.push_str(&s.to_json());
    }
    doc.push_str("\n  ],\n");
    doc.push_str(&format!(
        "  \"speedups\": {{\"kmeans\": {kmeans_speedup:.3}, \"trace_replay\": {replay_speedup:.3}}}\n}}\n"
    ));
    std::fs::write(&out_path, doc).expect("write baseline json");
    println!("wrote {out_path}");
}
