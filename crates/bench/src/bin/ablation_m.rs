//! Ablation: the PLSet multiplier M.
//!
//! The SL scheme draws `M·(L-1)` potential landmarks and probes only
//! within that set, trading measurement overhead for landmark quality.
//! Sweeps M, reporting clustering accuracy *and* the probes spent —
//! the overhead/accuracy trade the paper's greedy design is about.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin ablation_m [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, interaction_cost_ms, mean, MetricsSink, Scenario, Table};
use ecg_core::{GfCoordinator, SchemeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    let caches = 300;
    let k = 30;
    let ms = [1usize, 2, 4, 8, 12];
    let seeds: Vec<u64> = (0..8).collect();

    println!("Ablation: PLSet multiplier M ({caches} caches, K = {k}, L = 25)\n");
    let network = Scenario::network_only(caches, 1_717);
    let mut table = Table::new(["M", "gic_ms", "probes", "min_dist_ms"]);
    for &m in &ms {
        let coord = GfCoordinator::new(SchemeConfig::sl(k).plset_multiplier(m));
        let (mut gic, mut probes, mut mindist) = (Vec::new(), Vec::new(), Vec::new());
        for &seed in &seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = coord
                .form_groups_observed(&network, &mut rng, obs.as_mut())
                .expect("group formation");
            gic.push(interaction_cost_ms(&outcome, &network));
            probes.push(outcome.probes_sent() as f64);
            mindist.push(outcome.landmarks().min_dist_ms.unwrap_or(0.0));
        }
        table.row([
            m.to_string(),
            f2(mean(&gic)),
            format!("{:.0}", mean(&probes)),
            f2(mean(&mindist)),
        ]);
    }
    table.print();
    println!(
        "\nexpected: landmark dispersal (min_dist) and accuracy improve \
         with M while probing overhead grows quadratically; gains flatten \
         quickly — the paper's small-M default is the sweet spot."
    );
    sink.absorb(obs);
    sink.write();
}
