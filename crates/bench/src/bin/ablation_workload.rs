//! Ablation: workload sensitivity of the SDSL advantage.
//!
//! The paper's trace is one sporting-event site. This ablation replays
//! the SL-vs-SDSL comparison on two different dynamic-content profiles
//! — the Olympics-like sporting preset (high skew, flash crowd, hot
//! dynamic set) and a news-site preset (long tail, diurnal cycle, tiny
//! hot set) — to check the conclusion is not an artifact of one
//! workload shape.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin ablation_workload [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, mean, MetricsSink, Table};
use ecg_core::{GfCoordinator, SchemeConfig};
use ecg_sim::{simulate_observed, GroupMap, SimConfig};
use ecg_topology::{EdgeNetwork, OriginPlacement, TransitStubConfig};
use ecg_workload::{NewsSiteConfig, SportingEventConfig, TraceEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    let caches = 150;
    let duration_ms = 180_000.0;
    let k = 15;
    let form_seeds = [1u64, 2, 3];

    println!("Ablation: workload profile ({caches} caches, K = {k})\n");
    let mut rng = StdRng::seed_from_u64(2_026);
    let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, caches, OriginPlacement::TransitNode, &mut rng)
        .expect("placement");

    // Two workload profiles on the same network.
    let sporting = SportingEventConfig::default()
        .caches(caches)
        .documents(1_500)
        .duration_ms(duration_ms)
        .generate(&mut rng);
    let news = NewsSiteConfig::default()
        .caches(caches)
        .documents(4_000)
        .duration_ms(duration_ms)
        .generate(&mut rng);
    let profiles: Vec<(&str, &ecg_workload::DocumentCatalog, Vec<TraceEvent>)> = vec![
        ("sporting_event", &sporting.catalog, sporting.merged_trace()),
        ("news_site", &news.catalog, news.merged_trace()),
    ];

    let config = SimConfig::default()
        .cache_capacity_bytes(512 * 1024)
        .warmup_ms(duration_ms / 6.0);
    let mut table = Table::new([
        "workload",
        "SL_ms",
        "SDSL_ms",
        "SDSL_gain",
        "group_hit_rate",
    ]);
    for (name, catalog, trace) in &profiles {
        let mut latencies = [Vec::new(), Vec::new()];
        let mut hit_rates = Vec::new();
        for &seed in &form_seeds {
            for (slot, scheme) in [SchemeConfig::sl(k), SchemeConfig::sdsl(k, 1.0)]
                .into_iter()
                .enumerate()
            {
                let mut form_rng = StdRng::seed_from_u64(seed);
                let outcome = GfCoordinator::new(scheme)
                    .form_groups_observed(&network, &mut form_rng, obs.as_mut())
                    .expect("formation");
                let map = GroupMap::new(caches, outcome.groups().to_vec()).expect("groups");
                let report =
                    simulate_observed(&network, &map, catalog, trace, config, obs.as_mut())
                        .expect("simulation");
                latencies[slot].push(report.average_latency_ms());
                if slot == 1 {
                    hit_rates.push(report.metrics.group_hit_rate().unwrap_or(0.0));
                }
            }
        }
        let (sl, sdsl) = (mean(&latencies[0]), mean(&latencies[1]));
        table.row([
            name.to_string(),
            f2(sl),
            f2(sdsl),
            format!("{:.1}%", 100.0 * (sl - sdsl) / sl),
            format!("{:.1}%", 100.0 * mean(&hit_rates)),
        ]);
    }
    table.print();
    println!(
        "\nexpected: SDSL ahead on both profiles; the long-tail news \
         workload has lower hit rates overall (bigger catalog, milder \
         skew), shrinking every scheme's absolute benefit."
    );
    sink.absorb(obs);
    sink.write();
}
