//! Figure 5: effect of landmark selection on clustering accuracy,
//! varying the number of groups.
//!
//! A 500-cache network; K swept from 10 to 100; the same three landmark
//! selectors as Figure 4. Reports average group interaction cost (ms).
//!
//! Paper's finding: the greedy SL selector yields the best clustering
//! accuracy at every K.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin fig5 [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, interaction_cost_ms, mean, MetricsSink, Scenario, Table};
use ecg_core::{GfCoordinator, LandmarkSelector, SchemeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let mut obs = sink.collect();
    let caches = 500;
    let ks = [10usize, 25, 50, 75, 100];
    let selectors = [
        LandmarkSelector::GreedyMaxMin,
        LandmarkSelector::Random,
        LandmarkSelector::MinDist,
    ];
    let seeds: Vec<u64> = (0..10).collect();

    println!(
        "Figure 5: avg group interaction cost (ms) vs number of groups\n\
         ({caches} caches, L = 25, M = 4)\n"
    );
    let network = Scenario::network_only(caches, 8_500);
    let mut table = Table::new(["K", "greedy_SL", "random", "min_dist"]);
    for &k in &ks {
        let mut cols = Vec::new();
        for &selector in &selectors {
            let coord = GfCoordinator::new(SchemeConfig::sl(k).selector(selector));
            let gics: Vec<f64> = seeds
                .iter()
                .map(|&seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let outcome = coord
                        .form_groups_observed(&network, &mut rng, obs.as_mut())
                        .expect("group formation");
                    interaction_cost_ms(&outcome, &network)
                })
                .collect();
            cols.push(mean(&gics));
        }
        table.row([k.to_string(), f2(cols[0]), f2(cols[1]), f2(cols[2])]);
    }
    table.print();
    println!("\nexpected: greedy_SL lowest at every K; costs fall as K grows.");
    sink.absorb(obs);
    sink.write();
}
