//! Figure 8: SL vs. SDSL on client latency, varying network size.
//!
//! Networks of 100–500 caches; cache groups formed by SL and by SDSL
//! (θ = 1); K set to 10% and to 20% of N. Reports the simulated average
//! client latency.
//!
//! Paper's finding: SDSL beats SL at every size and both K settings —
//! by more than 27% at 500 caches with K = 20%.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin fig8 [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, mean, par_map, MetricsSink, Scenario, Table};
use ecg_core::{GfCoordinator, SchemeConfig};
use ecg_obs::Obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut sink = MetricsSink::from_args();
    let sizes = [100usize, 200, 300, 400, 500];
    let duration_ms = 120_000.0;
    let form_seeds = [3u64, 4];
    let theta = 1.0;

    println!(
        "Figure 8: avg client latency (ms) vs network size, SL vs SDSL\n\
         (K = 10% and 20% of N, θ = {theta})\n"
    );
    let mut table = Table::new([
        "caches", "SL_10%", "SDSL_10%", "gain10", "SL_20%", "SDSL_20%", "gain20",
    ]);
    let collect = sink.enabled();
    let rows = par_map(sizes.to_vec(), |n| {
        let mut obs = if collect { Some(Obs::new()) } else { None };
        let scenario = Scenario::build(n, duration_ms, 500 + n as u64);
        let config = scenario.sim_config(duration_ms);
        let mut cells = vec![n.to_string()];
        for percent in [10usize, 20] {
            let k = (n * percent / 100).max(1);
            let mut latencies = [Vec::new(), Vec::new()];
            for &seed in &form_seeds {
                for (slot, scheme) in [SchemeConfig::sl(k), SchemeConfig::sdsl(k, theta)]
                    .into_iter()
                    .enumerate()
                {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let outcome = GfCoordinator::new(scheme)
                        .form_groups_observed(&scenario.network, &mut rng, obs.as_mut())
                        .expect("group formation");
                    let report =
                        scenario.simulate_groups_observed(outcome.groups(), config, obs.as_mut());
                    latencies[slot].push(report.average_latency_ms());
                }
            }
            let (sl, sdsl) = (mean(&latencies[0]), mean(&latencies[1]));
            cells.push(f2(sl));
            cells.push(f2(sdsl));
            cells.push(format!("{:.1}%", 100.0 * (sl - sdsl) / sl));
        }
        (cells, obs)
    });
    for (row, obs) in rows {
        sink.absorb(obs);
        table.row(row);
    }
    table.print();
    println!("\nexpected: SDSL lower than SL at every size and both K settings.");
    sink.write();
}
