//! Ablation: resilient formation under probe loss and cache faults.
//!
//! The paper forms groups over a healthy, fully measurable network. This
//! experiment injects formation-time faults — a crashed cache, a
//! two-cache correlated stub-domain outage, a couple of black-holed
//! probe links — and sweeps probe loss, forming SL groups with the
//! resilience layer off (legacy pipeline: lost and dead probes poison
//! the feature matrix with the timeout sentinel) and on (bounded
//! retries, landmark failover, masked clustering, quarantine). The
//! clustering-accuracy metric is the paper's average group interaction
//! cost (GIC); the resilient pipeline should hold it near the fault-free
//! value while the legacy pipeline drifts as loss rises.
//!
//! Each cell averages several formation seeds so the comparison is not
//! hostage to one K-means draw. Per-cell health totals (retries,
//! give-ups, landmark failovers, quarantined caches, masked feature
//! cells) are written alongside the GIC into
//! `results/ablation_resilience.json`.
//!
//! ```text
//! cargo run --release -p ecg-bench --bin ablation_resilience [--metrics-out <path>]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_bench::{f2, interaction_cost_ms, mean, par_map, MetricsSink, Table};
use ecg_coords::ProbeConfig;
use ecg_core::{GfCoordinator, ResilienceConfig, SchemeConfig};
use ecg_faults::FormationFaults;
use ecg_obs::Obs;
use ecg_topology::{CacheId, EdgeNetwork, OriginPlacement, TransitStubConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CACHES: usize = 60;
const GROUPS: usize = 8;
const LOSS_RATES: [f64; 4] = [0.0, 0.1, 0.2, 0.3];
const REPEATS: u64 = 5;
const NETWORK_SEED: u64 = 91;

struct Cell {
    loss: f64,
    resilient: bool,
}

#[derive(Default)]
struct CellResult {
    gic_ms: Vec<f64>,
    retries: u64,
    gave_up: u64,
    failovers: usize,
    dead_landmarks: usize,
    quarantined: usize,
    masked_cells: usize,
}

fn main() {
    let mut sink = MetricsSink::from_args();
    let obs = sink.collect();

    let mut rng = StdRng::seed_from_u64(NETWORK_SEED);
    let topo = TransitStubConfig::for_caches(CACHES).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, CACHES, OriginPlacement::TransitNode, &mut rng)
        .expect("scenario placement");

    // The fault set, fixed across every cell: one lone crash, one
    // correlated outage (the first stub domain hosting exactly two
    // caches), and two black-holed probe links.
    let outage = (0..topo.stub_domains().len())
        .map(|d| FormationFaults::new().stub_domain_outage(&topo, &network, d))
        .find(|f| f.crash_count() == 2)
        .expect("some stub domain hosts exactly two caches");
    let faults = outage
        .crash(CacheId(7))
        .blackhole(CacheId(1), CacheId(2))
        .blackhole_to_origin(CacheId(11));
    let crashed: Vec<usize> = faults.crashed_caches().map(|c| c.index()).collect();
    let probe_faults = faults.to_probe_faults();

    println!(
        "Ablation: formation resilience ({CACHES} caches, K = {GROUPS}, \
         crashed caches {crashed:?}, 2 black-holed links, {REPEATS} seeds \
         per cell)\n"
    );

    let cells: Vec<Cell> = LOSS_RATES
        .iter()
        .flat_map(|&loss| {
            [false, true]
                .into_iter()
                .map(move |resilient| Cell { loss, resilient })
        })
        .collect();

    let collect = sink.enabled();
    let pairs: Vec<(CellResult, Option<Obs>)> = par_map(cells, |cell| {
        let mut cell_obs = if collect { Some(Obs::new()) } else { None };
        let mut config =
            SchemeConfig::sl(GROUPS).probe(ProbeConfig::default().loss_rate(cell.loss));
        if cell.resilient {
            config = config.resilience(ResilienceConfig::default());
        }
        let coordinator = GfCoordinator::new(config);

        let mut result = CellResult::default();
        for seed in 0..REPEATS {
            let mut form_rng = StdRng::seed_from_u64(3_000 + seed);
            let outcome = coordinator
                .form_groups_faulted_observed(
                    &network,
                    &probe_faults,
                    &mut form_rng,
                    cell_obs.as_mut(),
                )
                .expect("faulted formation");
            result.gic_ms.push(interaction_cost_ms(&outcome, &network));
            if let Some(health) = outcome.health() {
                result.retries += health.probe_retries;
                result.gave_up += health.probe_gave_up;
                result.failovers += health.landmark_failovers;
                result.dead_landmarks += health.dead_landmarks.len();
                result.quarantined += health.quarantined.len();
                result.masked_cells += health.masked_cells;
            }
        }
        (result, cell_obs)
    });
    sink.absorb(obs);
    let mut results = Vec::with_capacity(pairs.len());
    for (r, cell_obs) in pairs {
        sink.absorb(cell_obs);
        results.push(r);
    }

    let mut table = Table::new([
        "loss",
        "resilience",
        "gic_ms",
        "retries",
        "gave_up",
        "failovers",
        "quarantined",
        "masked",
    ]);
    let mut json_cells = Vec::new();
    for (cell, r) in LOSS_RATES
        .iter()
        .flat_map(|&loss| [(loss, false), (loss, true)])
        .zip(&results)
    {
        let (loss, resilient) = cell;
        let gic = mean(&r.gic_ms);
        table.row([
            format!("{loss:.1}"),
            if resilient { "on" } else { "off" }.into(),
            f2(gic),
            if resilient {
                r.retries.to_string()
            } else {
                "-".into()
            },
            if resilient {
                r.gave_up.to_string()
            } else {
                "-".into()
            },
            if resilient {
                r.failovers.to_string()
            } else {
                "-".into()
            },
            if resilient {
                r.quarantined.to_string()
            } else {
                "-".into()
            },
            if resilient {
                r.masked_cells.to_string()
            } else {
                "-".into()
            },
        ]);
        let per_seed: Vec<String> = r.gic_ms.iter().map(|g| format!("{g}")).collect();
        json_cells.push(format!(
            "{{\"loss_rate\":{loss},\"resilience\":{resilient},\"mean_gic_ms\":{gic},\
             \"gic_ms\":[{}],\"probe_retries\":{},\"probe_gave_up\":{},\
             \"landmark_failovers\":{},\"dead_landmarks\":{},\"quarantined\":{},\
             \"masked_cells\":{}}}",
            per_seed.join(","),
            r.retries,
            r.gave_up,
            r.failovers,
            r.dead_landmarks,
            r.quarantined,
            r.masked_cells,
        ));
    }
    table.print();
    println!(
        "\nexpected: with resilience off, every lost or dead probe lands \
         in the feature matrix as the 1000 ms timeout sentinel, so GIC \
         climbs with loss; with resilience on, retries scrub the loss, \
         dead landmarks fail over, and the crashed caches are quarantined \
         instead of clustered on garbage, holding GIC near its fault-free \
         value."
    );

    let crashed_json: Vec<String> = crashed.iter().map(|c| c.to_string()).collect();
    let json = format!(
        "{{\"caches\":{CACHES},\"groups\":{GROUPS},\"repeats\":{REPEATS},\
         \"crashed_caches\":[{}],\"cells\":[{}]}}",
        crashed_json.join(","),
        json_cells.join(",")
    );
    let path = std::path::Path::new("results").join("ablation_resilience.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&path, &json).expect("write results JSON");
    println!("\nfull cells written to {}", path.display());
    sink.write();
}
