//! `--metrics-out` support for the experiment binaries.
//!
//! Every figure and ablation binary accepts an optional
//! `--metrics-out <path>` flag. When present, the binary routes an
//! [`Obs`] bundle through the instrumented library entry points
//! (`*_observed`), merges the per-cell bundles in deterministic input
//! order, and writes the combined bundle as one canonical JSON document.
//! Two runs with the same seed produce byte-identical files.
//!
//! The flag is deliberately invisible on stdout: result tables captured
//! into `results/*.txt` stay byte-for-byte identical whether or not
//! metrics are collected (the confirmation note goes to stderr).

use ecg_obs::Obs;
use std::path::{Path, PathBuf};

/// Collects [`Obs`] bundles from experiment cells and writes the merged
/// JSON document to the path given by `--metrics-out`.
///
/// With no flag the sink is disabled: [`MetricsSink::collect`] returns
/// `None`, [`MetricsSink::absorb`] is a no-op, and
/// [`MetricsSink::write`] writes nothing, so binaries can thread the
/// sink unconditionally.
#[derive(Debug, Default)]
pub struct MetricsSink {
    path: Option<PathBuf>,
    merged: Obs,
}

impl MetricsSink {
    /// Builds the sink from the process arguments.
    ///
    /// # Panics
    ///
    /// Panics if `--metrics-out` is present without a following path.
    pub fn from_args() -> MetricsSink {
        Self::from_arg_iter(std::env::args().skip(1))
    }

    /// Builds the sink from an explicit argument list (tests).
    ///
    /// # Panics
    ///
    /// Panics if `--metrics-out` is present without a following path.
    pub fn from_arg_iter<I, S>(args: I) -> MetricsSink
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut args = args.into_iter();
        let mut path = None;
        while let Some(arg) = args.next() {
            if arg.as_ref() == "--metrics-out" {
                let value = args.next().expect("--metrics-out requires a path argument");
                path = Some(PathBuf::from(value.as_ref()));
            }
        }
        MetricsSink {
            path,
            merged: Obs::new(),
        }
    }

    /// Whether `--metrics-out` was given.
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// The output path, when enabled.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// A fresh bundle for one experiment cell, or `None` when disabled.
    ///
    /// Cells running on worker threads each get their own bundle; the
    /// binary absorbs them back in input order so the merged document is
    /// independent of scheduling.
    pub fn collect(&self) -> Option<Obs> {
        self.enabled().then(Obs::new)
    }

    /// Merges a cell's bundle into the sink (no-op for `None`).
    pub fn absorb(&mut self, obs: Option<Obs>) {
        if let Some(obs) = obs {
            self.merged.merge(&obs);
        }
    }

    /// A read-only view of everything absorbed so far.
    pub fn merged(&self) -> &Obs {
        &self.merged
    }

    /// Writes the merged bundle as canonical JSON (one trailing
    /// newline). Does nothing when disabled. The confirmation note goes
    /// to **stderr** so captured result tables stay byte-identical.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write(&self) {
        let Some(path) = &self.path else {
            return;
        };
        let mut doc = self.merged.to_json();
        doc.push('\n');
        std::fs::write(path, doc)
            .unwrap_or_else(|e| panic!("cannot write metrics to {}: {e}", path.display()));
        eprintln!("metrics written to {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let mut sink = MetricsSink::from_arg_iter(["--caches", "40"]);
        assert!(!sink.enabled());
        assert!(sink.collect().is_none());
        sink.absorb(None);
        assert!(sink.merged().metrics.is_empty());
        sink.write(); // no path — must not touch the filesystem
    }

    #[test]
    fn flag_parses_and_collects() {
        let mut sink = MetricsSink::from_arg_iter(["--metrics-out", "/tmp/m.json", "--seeds", "3"]);
        assert!(sink.enabled());
        assert_eq!(sink.path().unwrap().to_str(), Some("/tmp/m.json"));
        let mut obs = sink.collect().expect("enabled sink hands out bundles");
        obs.metrics.inc("cell.runs");
        sink.absorb(Some(obs));
        assert_eq!(sink.merged().metrics.counter("cell.runs"), 1);
    }

    #[test]
    fn absorb_order_is_the_merge_order() {
        let mut sink = MetricsSink::from_arg_iter(["--metrics-out", "/tmp/m.json"]);
        for t in [1.0, 2.0] {
            let mut obs = sink.collect().unwrap();
            obs.trace.push(t, "test", "cell", vec![]);
            sink.absorb(Some(obs));
        }
        let times: Vec<f64> = sink.merged().trace.events().map(|e| e.t).collect();
        assert_eq!(times, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "requires a path")]
    fn missing_path_panics() {
        let _ = MetricsSink::from_arg_iter(["--metrics-out"]);
    }
}
