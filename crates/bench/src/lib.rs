//! Shared experiment harness for reproducing the paper's figures.
//!
//! Every figure binary (`fig3` … `fig9`) and ablation uses the same
//! scenario construction so results are comparable:
//!
//! * a transit-stub topology sized for the requested cache count,
//! * an [`EdgeNetwork`] with the origin on a transit node,
//! * the sporting-event workload standing in for the IBM Sydney
//!   Olympics trace,
//! * the default latency model and utility-based caches.
//!
//! Results are printed as aligned text tables (one row per x-axis point,
//! one column per scheme), which is the `EXPERIMENTS.md` source format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use ecg_core::GroupingOutcome;
use ecg_obs::Obs;
use ecg_sim::{simulate, simulate_observed, GroupMap, LatencyModel, SimConfig, SimReport};
use ecg_topology::{EdgeNetwork, OriginPlacement, TransitStubConfig};
use ecg_workload::{SportingEventConfig, SportingEventWorkload, TraceEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod obs;
pub use obs::MetricsSink;

/// A fully built experiment scenario: network + workload + trace.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The placed edge network.
    pub network: EdgeNetwork,
    /// The generated workload (catalog, requests, updates).
    pub workload: SportingEventWorkload,
    /// The merged, time-sorted trace.
    pub trace: Vec<TraceEvent>,
}

impl Scenario {
    /// Builds the standard scenario for `caches` caches.
    ///
    /// Deterministic per `seed`; the workload runs for `duration_ms`.
    ///
    /// # Panics
    ///
    /// Panics if placement fails (cannot happen for the sizes the
    /// harness uses — `TransitStubConfig::for_caches` guarantees room).
    pub fn build(caches: usize, duration_ms: f64, seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
        let network = EdgeNetwork::place(&topo, caches, OriginPlacement::TransitNode, &mut rng)
            .expect("scenario placement");
        let workload = SportingEventConfig::default()
            .caches(caches)
            .documents(1_500)
            .duration_ms(duration_ms)
            .generate(&mut rng);
        let trace = workload.merged_trace();
        Scenario {
            network,
            workload,
            trace,
        }
    }

    /// Builds a network-only scenario (no workload) for the clustering
    /// accuracy figures that never run the simulator.
    pub fn network_only(caches: usize, seed: u64) -> EdgeNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
        EdgeNetwork::place(&topo, caches, OriginPlacement::TransitNode, &mut rng)
            .expect("scenario placement")
    }

    /// The harness-standard simulator configuration: 512 KiB caches,
    /// utility replacement, 1/6 of the trace as warm-up.
    pub fn sim_config(&self, duration_ms: f64) -> SimConfig {
        SimConfig::default()
            .cache_capacity_bytes(512 * 1024)
            .warmup_ms(duration_ms / 6.0)
    }

    /// Simulates a grouping on this scenario.
    ///
    /// # Panics
    ///
    /// Panics if the groups do not partition the scenario's caches.
    pub fn simulate_groups(
        &self,
        groups: &[Vec<ecg_topology::CacheId>],
        config: SimConfig,
    ) -> SimReport {
        let map = GroupMap::new(self.network.cache_count(), groups.to_vec())
            .expect("grouping partitions the caches");
        simulate(
            &self.network,
            &map,
            &self.workload.catalog,
            &self.trace,
            config,
        )
        .expect("simulation inputs are consistent")
    }

    /// Like [`Scenario::simulate_groups`], but records the simulator's
    /// telemetry (`sim.*` counters, latency histogram, event trace) into
    /// an observability bundle when one is supplied. With `obs = None`
    /// this is exactly [`Scenario::simulate_groups`].
    ///
    /// # Panics
    ///
    /// Panics if the groups do not partition the scenario's caches.
    pub fn simulate_groups_observed(
        &self,
        groups: &[Vec<ecg_topology::CacheId>],
        config: SimConfig,
        obs: Option<&mut Obs>,
    ) -> SimReport {
        let map = GroupMap::new(self.network.cache_count(), groups.to_vec())
            .expect("grouping partitions the caches");
        simulate_observed(
            &self.network,
            &map,
            &self.workload.catalog,
            &self.trace,
            config,
            obs,
        )
        .expect("simulation inputs are consistent")
    }
}

/// The paper's clustering-accuracy metric for a formed grouping: average
/// group interaction cost in milliseconds, where a pair's interaction
/// cost is the latency of moving an 8 KiB (average-sized) document
/// between them under the default latency model.
pub fn interaction_cost_ms(outcome: &GroupingOutcome, network: &EdgeNetwork) -> f64 {
    let model = LatencyModel::default();
    outcome.average_interaction_cost(|a, b| {
        model.interaction_cost(network.cache_to_cache(a, b), 8.0 * 1024.0)
    })
}

/// Arithmetic mean of a non-empty f64 slice.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty sample");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Applies `f` to every item on a thread pool sized by
/// [`ecg_par::threads_for`] (honoring the `ECG_THREADS` override),
/// returning results in input order. The figure binaries use this to
/// run independent (seed, parameter) cells concurrently.
///
/// This is a re-export of [`ecg_par::par_map`], kept under the
/// historical `ecg_bench::par_map` path the experiment binaries import.
pub use ecg_par::par_map;

/// An aligned text table accumulated row by row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the headers.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table with right-aligned, width-fitted columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(cell, w)| format!("{cell:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with two decimals (the tables' standard cell format).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_core::{GfCoordinator, SchemeConfig};

    #[test]
    fn scenario_is_deterministic() {
        let a = Scenario::build(20, 5_000.0, 3);
        let b = Scenario::build(20, 5_000.0, 3);
        assert_eq!(a.network, b.network);
        assert_eq!(a.trace, b.trace);
        assert_ne!(a.trace, Scenario::build(20, 5_000.0, 4).trace);
    }

    #[test]
    fn scenario_simulation_round_trip() {
        let s = Scenario::build(12, 10_000.0, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = GfCoordinator::new(SchemeConfig::sl(3).landmarks(4))
            .form_groups(&s.network, &mut rng)
            .unwrap();
        let report = s.simulate_groups(outcome.groups(), s.sim_config(10_000.0));
        assert!(report.average_latency_ms() > 0.0);
        let gic = interaction_cost_ms(&outcome, &s.network);
        assert!(gic > 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["K", "SL", "SDSL"]);
        t.row(["10", "1.00", "2.00"]);
        t.row(["100", "10.25", "20.50"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("SDSL"));
        assert!(lines[3].contains("100"));
        // All data lines have the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1"]);
    }

    #[test]
    fn mean_and_f2() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f2(12.3456), "12.35");
    }

    #[test]
    fn par_map_preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(items, |i| i * i);
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(out, expect);
        assert!(par_map(Vec::<usize>::new(), |i: usize| i).is_empty());
    }

    #[test]
    fn par_map_runs_closures_once_each() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let out = par_map((0..37).collect::<Vec<_>>(), |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 37);
        assert_eq!(calls.load(Ordering::Relaxed), 37);
    }
}
