//! Contiguous row-major storage for point sets.
//!
//! The clustering hot loops (Lloyd iterations, k-means++ seeding,
//! silhouette sweeps) spend nearly all their time in point×center
//! distance kernels. Storing points as `Vec<Vec<f64>>` puts every row
//! behind its own heap allocation, so those kernels chase a pointer per
//! row and the prefetcher gets nothing to work with. [`FeatureMatrix`]
//! packs all rows into one flat `Vec<f64>`; a row is a `&[f64]` slice at
//! a computed offset, and iterating rows walks memory linearly.

use std::fmt;
use std::ops::Index;

/// A dense row-major matrix of points: `len()` rows of `dim()` columns
/// in one contiguous allocation.
///
/// Row `i` occupies `data[i * dim .. (i + 1) * dim]`. All rows share one
/// dimension by construction, so code consuming a `FeatureMatrix` never
/// needs to re-validate row lengths.
///
/// # Examples
///
/// ```
/// use ecg_coords::FeatureMatrix;
///
/// let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.dim(), 2);
/// assert_eq!(m.row(1), &[3.0, 4.0]);
/// assert_eq!(m[0][1], 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureMatrix {
    rows: usize,
    dim: usize,
    data: Vec<f64>,
}

impl FeatureMatrix {
    /// An empty matrix whose future rows will have `dim` components.
    pub fn new(dim: usize) -> Self {
        FeatureMatrix {
            rows: 0,
            dim,
            data: Vec::new(),
        }
    }

    /// An empty matrix with storage reserved for `rows` rows of `dim`.
    pub fn with_capacity(rows: usize, dim: usize) -> Self {
        FeatureMatrix {
            rows: 0,
            dim,
            data: Vec::with_capacity(rows * dim),
        }
    }

    /// Packs ragged rows into a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the rows disagree on dimension.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let dim = rows.first().map(Vec::len).unwrap_or(0);
        let mut m = FeatureMatrix::with_capacity(rows.len(), dim);
        for row in rows {
            m.push_row(row);
        }
        m
    }

    /// Wraps an already-flat buffer of `data.len() / dim` rows.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` with a non-empty buffer, or if `data` is not
    /// a whole number of rows.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Self {
        if data.is_empty() {
            return FeatureMatrix { rows: 0, dim, data };
        }
        assert!(dim > 0, "non-empty flat buffer needs a positive dimension");
        assert_eq!(
            data.len() % dim,
            0,
            "flat buffer of {} values is not a whole number of {dim}-dim rows",
            data.len()
        );
        FeatureMatrix {
            rows: data.len() / dim,
            dim,
            data,
        }
    }

    /// Number of rows (points).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Returns `true` when the matrix holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns every row has.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as a flat slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable access to row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.dim,
            "row of dim {} pushed into a dim-{} matrix",
            row.len(),
            self.dim
        );
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Overwrites row `i` with `row`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `row.len() != dim()`.
    pub fn set_row(&mut self, i: usize, row: &[f64]) {
        self.row_mut(i).copy_from_slice(row);
    }

    /// Iterates rows in order as flat slices.
    pub fn iter_rows(&self) -> std::slice::ChunksExact<'_, f64> {
        // chunks_exact(0) panics; an empty matrix with dim 0 has no rows
        // to yield, so chunk by 1 over the (empty) buffer instead.
        self.data.chunks_exact(self.dim.max(1))
    }

    /// The whole matrix as one flat row-major slice.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Copies the matrix back out into ragged rows (for interop with
    /// code that has not been converted to flat storage).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.iter_rows().map(<[f64]>::to_vec).collect()
    }
}

impl Index<usize> for FeatureMatrix {
    type Output = [f64];

    #[inline]
    fn index(&self, i: usize) -> &[f64] {
        self.row(i)
    }
}

impl From<Vec<Vec<f64>>> for FeatureMatrix {
    fn from(rows: Vec<Vec<f64>>) -> Self {
        FeatureMatrix::from_rows(&rows)
    }
}

impl fmt::Display for FeatureMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FeatureMatrix({} x {})", self.rows, self.dim)?;
        for row in self.iter_rows() {
            for v in row {
                write!(f, "{v:9.2}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = FeatureMatrix::from_rows(&rows);
        assert_eq!(m.len(), 3);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.to_rows(), rows);
        assert_eq!(m.as_flat(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn rows_are_contiguous_slices() {
        let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(&m[1], &[3.0, 4.0]);
        assert_eq!(m[1][0], 3.0);
    }

    #[test]
    fn push_and_set_row() {
        let mut m = FeatureMatrix::with_capacity(2, 3);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.len(), 2);
        m.set_row(0, &[9.0, 8.0, 7.0]);
        assert_eq!(m.row(0), &[9.0, 8.0, 7.0]);
        m.row_mut(1)[2] = 0.0;
        assert_eq!(m.row(1), &[4.0, 5.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dim-2 matrix")]
    fn ragged_push_panics() {
        let mut m = FeatureMatrix::new(2);
        m.push_row(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dim")]
    fn ragged_from_rows_panics() {
        let _ = FeatureMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn from_flat_computes_rows() {
        let m = FeatureMatrix::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn from_flat_rejects_partial_rows() {
        let _ = FeatureMatrix::from_flat(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_matrices_behave() {
        let m = FeatureMatrix::new(0);
        assert!(m.is_empty());
        assert_eq!(m.iter_rows().count(), 0);
        assert_eq!(FeatureMatrix::from_rows(&[]).len(), 0);
        assert_eq!(FeatureMatrix::from_flat(3, Vec::new()).len(), 0);
    }

    #[test]
    fn iter_rows_walks_in_order() {
        let m = FeatureMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let seen: Vec<f64> = m.iter_rows().map(|r| r[0]).collect();
        assert_eq!(seen, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn display_contains_shape() {
        let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0]]);
        assert!(m.to_string().contains("1 x 2"));
    }
}
