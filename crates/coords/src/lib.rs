//! Network position estimation for edge cache group formation.
//!
//! Both schemes in the paper quantify "the relative positions of caches
//! and server in the Internet" by probing a set of landmarks. This crate
//! provides every position representation the paper touches:
//!
//! * [`Prober`] / [`ProbeConfig`] — the RTT measurement model (noisy
//!   probes, averaged).
//! * [`FeatureVector`] — the paper's own representation: raw measured
//!   RTTs to each landmark, compared with L2 distance (§3.2).
//! * [`gnp`] — Global Network Positioning, the Euclidean-space embedding
//!   the paper compares against in Figure 7, built on a Nelder–Mead
//!   minimizer ([`simplex`]).
//! * [`vivaldi`] — decentralized Vivaldi coordinates (cited in related
//!   work; included as an extension).
//! * [`metrics`] — embedding quality metrics (relative error, proximity
//!   order preservation).
//!
//! # Examples
//!
//! Build feature vectors for the paper's Figure 1 network:
//!
//! ```
//! use ecg_coords::{build_feature_vectors, ProbeConfig, Prober};
//! use ecg_topology::fixtures::paper_figure1;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let matrix = paper_figure1();
//! let prober = Prober::new(&matrix, ProbeConfig::noiseless());
//! let mut rng = StdRng::seed_from_u64(0);
//! // Landmarks {Os, Ec0, Ec4}; feature vectors for all six caches.
//! let caches: Vec<usize> = (1..7).collect();
//! let fvs = build_feature_vectors(&prober, &caches, &[0, 1, 5], &mut rng);
//! assert_eq!(fvs[1].as_slice(), &[8.0, 4.0, 14.4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must attach context to failures (`expect`/`Result`), not
// panic opaquely; tests may still unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod feature;
pub mod gnp;
pub mod matrix;
pub mod metrics;
pub mod probe;
pub mod resilience;
pub mod simplex;
pub mod tiles;
pub mod vivaldi;

pub use feature::{
    build_feature_matrix, build_feature_matrix_par, build_feature_matrix_resilient,
    build_feature_matrix_resilient_observed, build_feature_vectors, FeatureVector,
};
pub use gnp::{embed_network, GnpConfig, GnpCoordinates, GnpModel};
pub use matrix::FeatureMatrix;
pub use metrics::{feature_vector_distance_error, proximity_order_preservation, ErrorStats};
pub use probe::{ProbeConfig, Prober};
pub use resilience::{FeatureMask, Measurement, ProbeFaults, RetryPolicy};
pub use tiles::{CenterTiles, LANE_WIDTH};
pub use vivaldi::{mean_relative_error, run_vivaldi, VivaldiConfig, VivaldiNode};
