//! Vivaldi decentralized network coordinates.
//!
//! Vivaldi (Dabek et al., SIGCOMM '04) is the decentralized alternative
//! to GNP that the paper cites in its related work: nodes iteratively
//! adjust spring-like coordinates from pairwise RTT samples, with no
//! designated landmarks. Included as an extension so the position
//! representations compared in Figure 7 can also be benchmarked against a
//! landmark-free embedding.

use crate::gnp::GnpCoordinates;
use crate::probe::Prober;
use rand::Rng;

/// Configuration of a Vivaldi simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VivaldiConfig {
    dimensions: usize,
    rounds: usize,
    cc: f64,
    ce: f64,
}

impl Default for VivaldiConfig {
    /// The constants from the Vivaldi paper: `cc = ce = 0.25`, 3-D
    /// coordinates, 100 all-node rounds.
    fn default() -> Self {
        VivaldiConfig {
            dimensions: 3,
            rounds: 100,
            cc: 0.25,
            ce: 0.25,
        }
    }
}

impl VivaldiConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the coordinate dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn dimensions(mut self, d: usize) -> Self {
        assert!(d > 0, "vivaldi needs at least one dimension");
        self.dimensions = d;
        self
    }

    /// Sets the number of update rounds (each round updates every node
    /// once against a random peer).
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the coordinate adaptation constant `cc`.
    pub fn cc(mut self, cc: f64) -> Self {
        self.cc = cc;
        self
    }

    /// Sets the error adaptation constant `ce`.
    pub fn ce(mut self, ce: f64) -> Self {
        self.ce = ce;
        self
    }
}

/// State of one Vivaldi node: coordinates plus local error estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct VivaldiNode {
    coords: Vec<f64>,
    error: f64,
}

impl VivaldiNode {
    /// The node's current coordinates.
    pub fn coords(&self) -> GnpCoordinates {
        GnpCoordinates::new(self.coords.clone())
    }

    /// The node's current error estimate in `[0, 1]`-ish range (starts at
    /// 1, shrinks as the embedding stabilizes).
    pub fn error(&self) -> f64 {
        self.error
    }
}

/// Runs Vivaldi over `nodes`, sampling RTTs through `prober`.
///
/// Each round, every node picks a uniformly random peer, measures the
/// RTT, and applies the Vivaldi spring update. Returns the final node
/// states in `nodes` order.
///
/// # Panics
///
/// Panics if fewer than two nodes are given.
pub fn run_vivaldi<R: Rng + ?Sized>(
    config: VivaldiConfig,
    prober: &Prober<'_>,
    nodes: &[usize],
    rng: &mut R,
) -> Vec<VivaldiNode> {
    let n = nodes.len();
    assert!(n >= 2, "vivaldi needs at least two nodes");
    let d = config.dimensions;
    let mut states: Vec<VivaldiNode> = (0..n)
        .map(|_| VivaldiNode {
            // Small random start breaks the symmetry of the origin.
            coords: (0..d).map(|_| rng.gen::<f64>() * 1e-3).collect(),
            error: 1.0,
        })
        .collect();

    for _ in 0..config.rounds {
        for i in 0..n {
            let mut j = rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let rtt = prober.measure(nodes[i], nodes[j], rng);
            update(&mut states, i, j, rtt, config, rng);
        }
    }
    states
}

/// One Vivaldi update of node `i` against node `j` with measured `rtt`.
fn update<R: Rng + ?Sized>(
    states: &mut [VivaldiNode],
    i: usize,
    j: usize,
    rtt: f64,
    config: VivaldiConfig,
    rng: &mut R,
) {
    let d = states[i].coords.len();
    let (xi, xj) = (states[i].coords.clone(), states[j].coords.clone());
    let dist: f64 = xi
        .iter()
        .zip(&xj)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();

    // Sample weight balances local and remote confidence.
    let (ei, ej) = (states[i].error, states[j].error);
    let w = if ei + ej > 0.0 { ei / (ei + ej) } else { 0.5 };

    // Relative error of this sample, then update the error estimate.
    let rel = if rtt > f64::EPSILON {
        (dist - rtt).abs() / rtt
    } else {
        0.0
    };
    states[i].error = (rel * config.ce * w + ei * (1.0 - config.ce * w)).clamp(0.0, 10.0);

    // Unit vector from j to i; random direction if the nodes coincide.
    let mut dir: Vec<f64> = if dist > f64::EPSILON {
        xi.iter().zip(&xj).map(|(a, b)| (a - b) / dist).collect()
    } else {
        let v: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() - 0.5).collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
        v.into_iter().map(|x| x / norm).collect()
    };
    let delta = config.cc * w * (rtt - dist);
    for (c, dval) in states[i].coords.iter_mut().zip(dir.iter_mut()) {
        *c += delta * *dval;
    }
}

/// Mean relative error of a coordinate set against ground truth, sampled
/// over all node pairs: the standard quality metric for embeddings.
pub fn mean_relative_error(coords: &[GnpCoordinates], truth: impl Fn(usize, usize) -> f64) -> f64 {
    let n = coords.len();
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let t = truth(i, j);
            if t > f64::EPSILON {
                sum += (coords[i].distance(&coords[j]) - t).abs() / t;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeConfig;
    use ecg_topology::RttMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planar_matrix(points: &[(f64, f64)]) -> RttMatrix {
        RttMatrix::from_fn(points.len(), |i, j| {
            let dx = points[i].0 - points[j].0;
            let dy = points[i].1 - points[j].1;
            (dx * dx + dy * dy).sqrt().max(0.01)
        })
    }

    fn grid(n_side: usize, spacing: f64) -> Vec<(f64, f64)> {
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                pts.push((i as f64 * spacing, j as f64 * spacing));
            }
        }
        pts
    }

    #[test]
    fn vivaldi_converges_on_planar_input() {
        let pts = grid(4, 20.0);
        let m = planar_matrix(&pts);
        let prober = Prober::new(&m, ProbeConfig::noiseless());
        let nodes: Vec<usize> = (0..pts.len()).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let states = run_vivaldi(
            VivaldiConfig::default().dimensions(2).rounds(300),
            &prober,
            &nodes,
            &mut rng,
        );
        let coords: Vec<GnpCoordinates> = states.iter().map(|s| s.coords()).collect();
        let err = mean_relative_error(&coords, |i, j| m.get(i, j));
        assert!(err < 0.25, "mean relative error {err}");
    }

    #[test]
    fn error_estimates_shrink() {
        let pts = grid(3, 15.0);
        let m = planar_matrix(&pts);
        let prober = Prober::new(&m, ProbeConfig::noiseless());
        let nodes: Vec<usize> = (0..pts.len()).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let states = run_vivaldi(
            VivaldiConfig::default().dimensions(2).rounds(200),
            &prober,
            &nodes,
            &mut rng,
        );
        let mean_err: f64 = states.iter().map(|s| s.error()).sum::<f64>() / states.len() as f64;
        assert!(mean_err < 0.5, "mean node error estimate {mean_err}");
    }

    #[test]
    fn more_rounds_do_not_hurt() {
        let pts = grid(3, 25.0);
        let m = planar_matrix(&pts);
        let nodes: Vec<usize> = (0..pts.len()).collect();
        let run = |rounds| {
            let prober = Prober::new(&m, ProbeConfig::noiseless());
            let mut rng = StdRng::seed_from_u64(11);
            let states = run_vivaldi(
                VivaldiConfig::default().dimensions(2).rounds(rounds),
                &prober,
                &nodes,
                &mut rng,
            );
            let coords: Vec<GnpCoordinates> = states.iter().map(|s| s.coords()).collect();
            mean_relative_error(&coords, |i, j| m.get(i, j))
        };
        assert!(run(400) <= run(5) + 0.05);
    }

    #[test]
    #[should_panic(expected = "two nodes")]
    fn one_node_rejected() {
        let m = planar_matrix(&[(0.0, 0.0), (1.0, 1.0)]);
        let prober = Prober::new(&m, ProbeConfig::noiseless());
        let mut rng = StdRng::seed_from_u64(0);
        let _ = run_vivaldi(VivaldiConfig::default(), &prober, &[0], &mut rng);
    }

    #[test]
    fn mean_relative_error_empty_is_zero() {
        assert_eq!(mean_relative_error(&[], |_, _| 1.0), 0.0);
    }
}
