//! RTT probing model.
//!
//! Real deployments measure RTTs by sending probe packets; measurements
//! jitter around the propagation delay. The paper's schemes compensate by
//! probing each target "multiple times and recording the average RTT".
//! [`Prober`] reproduces that: each probe multiplies the ground-truth RTT
//! by log-normal noise, and a measurement averages a configurable number
//! of probes.

use ecg_obs::Obs;
use ecg_topology::RttSource;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of the probing model.
///
/// # Examples
///
/// ```
/// use ecg_coords::ProbeConfig;
///
/// let cfg = ProbeConfig::default().probes_per_measurement(5).noise_sigma(0.1);
/// assert_eq!(cfg.probes(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeConfig {
    probes: usize,
    noise_sigma: f64,
    loss_rate: f64,
    timeout_ms: f64,
}

impl Default for ProbeConfig {
    /// Three probes per measurement with 5% log-normal jitter, no probe
    /// loss, and a 1 s probe timeout — a light but realistic
    /// measurement error.
    fn default() -> Self {
        ProbeConfig {
            probes: 3,
            noise_sigma: 0.05,
            loss_rate: 0.0,
            timeout_ms: 1_000.0,
        }
    }
}

impl ProbeConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a noise-free configuration (measurements equal ground
    /// truth exactly); useful for isolating algorithmic error.
    pub fn noiseless() -> Self {
        ProbeConfig {
            probes: 1,
            noise_sigma: 0.0,
            loss_rate: 0.0,
            timeout_ms: 1_000.0,
        }
    }

    /// Sets how many probes are averaged per measurement.
    ///
    /// # Panics
    ///
    /// Panics if `probes == 0`.
    pub fn probes_per_measurement(mut self, probes: usize) -> Self {
        assert!(probes > 0, "need at least one probe per measurement");
        self.probes = probes;
        self
    }

    /// Sets the standard deviation of the log-normal noise factor.
    ///
    /// Each probe observes `rtt × exp(σ·z)` with `z ~ N(0, 1)`. A sigma of
    /// `0.05` jitters probes by about ±5%.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn noise_sigma(mut self, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "noise sigma must be finite and non-negative"
        );
        self.noise_sigma = sigma;
        self
    }

    /// Sets the probability that any single probe is lost in transit.
    ///
    /// A lost probe contributes nothing to the measured average; it is
    /// still counted in [`Prober::probes_sent`] and tallied in
    /// [`Prober::probes_lost`]. If *every* probe of a measurement is
    /// lost, the measurement reports the timeout instead of an RTT —
    /// probing a crashed or partitioned target looks exactly like this.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1)`.
    pub fn loss_rate(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && (0.0..1.0).contains(&rate),
            "loss rate must be in [0, 1)"
        );
        self.loss_rate = rate;
        self
    }

    /// Sets how long a prober waits before declaring a probe lost; this
    /// is the RTT reported when a whole measurement times out.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is not positive and finite.
    pub fn timeout_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms > 0.0, "timeout must be positive");
        self.timeout_ms = ms;
        self
    }

    /// Number of probes averaged per measurement.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Standard deviation of the log-normal noise factor.
    pub fn sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// Probability that a single probe is lost.
    pub fn loss(&self) -> f64 {
        self.loss_rate
    }

    /// Probe timeout in milliseconds.
    pub fn timeout(&self) -> f64 {
        self.timeout_ms
    }
}

/// Samples a standard normal variate via the Box–Muller transform.
///
/// Implemented locally to keep the dependency set down to `rand` itself.
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A simulated prober over a ground-truth RTT oracle.
///
/// The ground truth is any [`RttSource`] — a dense
/// [`RttMatrix`](ecg_topology::RttMatrix) for paper-scale runs, or an
/// implicit oracle like [`SyntheticRtt`](ecg_topology::SyntheticRtt)
/// when N is too large to materialize O(n²) RTTs. Node indices follow
/// the oracle the prober wraps; for an
/// [`EdgeNetwork`](ecg_topology::EdgeNetwork) matrix, index `0` is the
/// origin and `i + 1` is cache `Ec_i`.
///
/// The probe counters are atomics (relaxed ordering — they are plain
/// commutative tallies), so a shared `&Prober` can serve concurrent
/// [`ecg_par`] workers and still report exact totals.
///
/// # Examples
///
/// ```
/// use ecg_coords::{ProbeConfig, Prober};
/// use ecg_topology::fixtures::paper_figure1;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let matrix = paper_figure1();
/// let prober = Prober::new(&matrix, ProbeConfig::noiseless());
/// let mut rng = StdRng::seed_from_u64(1);
/// assert_eq!(prober.measure(1, 2, &mut rng), 4.0);
/// ```
#[derive(Debug)]
pub struct Prober<'a> {
    truth: &'a dyn RttSource,
    config: ProbeConfig,
    probes_sent: AtomicU64,
    probes_lost: AtomicU64,
}

impl Clone for Prober<'_> {
    fn clone(&self) -> Self {
        Prober {
            truth: self.truth,
            config: self.config,
            probes_sent: AtomicU64::new(self.probes_sent()),
            probes_lost: AtomicU64::new(self.probes_lost()),
        }
    }
}

impl<'a> Prober<'a> {
    /// Wraps a ground-truth RTT oracle with the given probing behaviour.
    pub fn new(truth: &'a dyn RttSource, config: ProbeConfig) -> Self {
        Prober {
            truth,
            config,
            probes_sent: AtomicU64::new(0),
            probes_lost: AtomicU64::new(0),
        }
    }

    /// Number of nodes visible to the prober.
    pub fn node_count(&self) -> usize {
        self.truth.node_count()
    }

    /// The probing configuration.
    pub fn config(&self) -> ProbeConfig {
        self.config
    }

    /// Total probes sent so far — the measurement overhead the paper's
    /// greedy PLSet construction is designed to bound.
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent.load(Ordering::Relaxed)
    }

    /// Probes lost in transit so far (only with a non-zero
    /// [`ProbeConfig::loss_rate`]).
    pub fn probes_lost(&self) -> u64 {
        self.probes_lost.load(Ordering::Relaxed)
    }

    /// Measures the RTT between `a` and `b`: the average of the
    /// successful probes out of `config.probes()` noisy ones, in
    /// milliseconds. If every probe is lost the measurement times out
    /// and reports [`ProbeConfig::timeout`].
    ///
    /// Probing yourself returns `0.0` without sending probes.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range of the wrapped matrix.
    pub fn measure<R: Rng + ?Sized>(&self, a: usize, b: usize, rng: &mut R) -> f64 {
        if a == b {
            return 0.0;
        }
        let truth = self.truth.rtt_ms(a, b);
        let mut sum = 0.0;
        let mut answered = 0u32;
        for _ in 0..self.config.probes {
            // Short-circuit so a loss-free config draws nothing extra
            // from the RNG (keeps loss_rate = 0 streams identical to
            // the pre-loss model).
            if self.config.loss_rate > 0.0 && rng.gen_bool(self.config.loss_rate) {
                self.probes_lost.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let noise = if self.config.noise_sigma == 0.0 {
                1.0
            } else {
                (self.config.noise_sigma * standard_normal(rng)).exp()
            };
            sum += truth * noise;
            answered += 1;
        }
        self.probes_sent
            .fetch_add(self.config.probes as u64, Ordering::Relaxed);
        if answered == 0 {
            self.config.timeout_ms
        } else {
            sum / answered as f64
        }
    }

    /// Like [`Prober::measure`], but also records the measurement into
    /// an observability bundle when one is supplied: `probe.sent` /
    /// `probe.lost` / `probe.timeouts` counters, a `probe.measurements`
    /// counter, and a `probe.rtt_ms` histogram. With `obs = None` this
    /// is exactly [`Prober::measure`] — instrumentation never touches
    /// the RNG stream either way.
    pub fn measure_observed<R: Rng + ?Sized>(
        &self,
        a: usize,
        b: usize,
        rng: &mut R,
        obs: Option<&mut Obs>,
    ) -> f64 {
        let Some(obs) = obs else {
            return self.measure(a, b, rng);
        };
        let sent_before = self.probes_sent();
        let lost_before = self.probes_lost();
        let rtt = self.measure(a, b, rng);
        let lost = self.probes_lost() - lost_before;
        obs.metrics.inc("probe.measurements");
        obs.metrics
            .add("probe.sent", self.probes_sent() - sent_before);
        obs.metrics.add("probe.lost", lost);
        obs.metrics.observe("probe.rtt_ms", rtt);
        if a != b && lost == self.config.probes as u64 {
            obs.metrics.inc("probe.timeouts");
        }
        rtt
    }

    /// Measures the RTT from `from` to every node in `targets`, in order.
    pub fn measure_all<R: Rng + ?Sized>(
        &self,
        from: usize,
        targets: &[usize],
        rng: &mut R,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.measure_all_into(from, targets, rng, &mut out);
        out
    }

    /// Like [`Prober::measure_all`], but writes into a caller-provided
    /// buffer (cleared first) so tight loops can measure many nodes
    /// without a per-node allocation.
    pub fn measure_all_into<R: Rng + ?Sized>(
        &self,
        from: usize,
        targets: &[usize],
        rng: &mut R,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(targets.len());
        for &t in targets {
            out.push(self.measure(from, t, rng));
        }
    }

    /// Like [`Prober::measure_all_into`], but records each measurement
    /// via [`Prober::measure_observed`] when a bundle is supplied.
    pub fn measure_all_into_observed<R: Rng + ?Sized>(
        &self,
        from: usize,
        targets: &[usize],
        rng: &mut R,
        out: &mut Vec<f64>,
        mut obs: Option<&mut Obs>,
    ) {
        out.clear();
        out.reserve(targets.len());
        for &t in targets {
            out.push(self.measure_observed(from, t, rng, obs.as_deref_mut()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_topology::fixtures::paper_figure1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_probe_returns_truth() {
        let m = paper_figure1();
        let p = Prober::new(&m, ProbeConfig::noiseless());
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(p.measure(i, j, &mut rng), m.get(i, j));
            }
        }
    }

    #[test]
    fn self_probe_is_zero_and_free() {
        let m = paper_figure1();
        let p = Prober::new(&m, ProbeConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.measure(3, 3, &mut rng), 0.0);
        assert_eq!(p.probes_sent(), 0);
    }

    #[test]
    fn probe_accounting_counts_each_probe() {
        let m = paper_figure1();
        let p = Prober::new(&m, ProbeConfig::default().probes_per_measurement(4));
        let mut rng = StdRng::seed_from_u64(0);
        p.measure(0, 1, &mut rng);
        p.measure(1, 2, &mut rng);
        assert_eq!(p.probes_sent(), 8);
    }

    #[test]
    fn noisy_measurements_are_near_truth() {
        let m = paper_figure1();
        let p = Prober::new(
            &m,
            ProbeConfig::default()
                .probes_per_measurement(50)
                .noise_sigma(0.05),
        );
        let mut rng = StdRng::seed_from_u64(7);
        let measured = p.measure(0, 1, &mut rng);
        let truth = m.get(0, 1);
        assert!(
            (measured - truth).abs() / truth < 0.05,
            "measured {measured} vs truth {truth}"
        );
    }

    #[test]
    fn more_probes_reduce_error() {
        let m = paper_figure1();
        let truth = m.get(0, 1);
        let mean_abs_err = |probes: usize| {
            let p = Prober::new(
                &m,
                ProbeConfig::default()
                    .probes_per_measurement(probes)
                    .noise_sigma(0.3),
            );
            let mut rng = StdRng::seed_from_u64(99);
            let mut err = 0.0;
            for _ in 0..200 {
                err += (p.measure(0, 1, &mut rng) - truth).abs();
            }
            err / 200.0
        };
        assert!(mean_abs_err(16) < mean_abs_err(1));
    }

    #[test]
    fn measure_all_orders_targets() {
        let m = paper_figure1();
        let p = Prober::new(&m, ProbeConfig::noiseless());
        let mut rng = StdRng::seed_from_u64(0);
        let v = p.measure_all(1, &[0, 2, 3], &mut rng);
        assert_eq!(v, vec![12.0, 4.0, 17.0]);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lossy_probes_are_counted_and_skipped() {
        let m = paper_figure1();
        let p = Prober::new(
            &m,
            ProbeConfig::noiseless()
                .probes_per_measurement(200)
                .loss_rate(0.3),
        );
        let mut rng = StdRng::seed_from_u64(11);
        let measured = p.measure(0, 1, &mut rng);
        // Survivors are noiseless, so the average is exact truth.
        assert_eq!(measured, m.get(0, 1));
        assert_eq!(p.probes_sent(), 200);
        let lost = p.probes_lost();
        assert!((30..=100).contains(&lost), "lost {lost}");
    }

    #[test]
    fn total_loss_times_out() {
        let m = paper_figure1();
        let p = Prober::new(
            &m,
            ProbeConfig::noiseless()
                .probes_per_measurement(3)
                .loss_rate(0.999)
                .timeout_ms(750.0),
        );
        let mut rng = StdRng::seed_from_u64(0);
        // With 99.9% loss the 3 probes are all lost essentially always.
        let measured = p.measure(0, 1, &mut rng);
        assert_eq!(measured, 750.0);
        assert_eq!(p.probes_lost(), 3);
    }

    #[test]
    fn zero_loss_rate_draws_no_extra_randomness() {
        // The same seed must produce the same measurements whether the
        // loss machinery is present or not (loss_rate 0 short-circuits).
        let m = paper_figure1();
        let cfg = ProbeConfig::default().probes_per_measurement(5);
        let a = {
            let p = Prober::new(&m, cfg);
            let mut rng = StdRng::seed_from_u64(42);
            (p.measure(0, 1, &mut rng), p.measure(2, 3, &mut rng))
        };
        let b = {
            let p = Prober::new(&m, cfg.loss_rate(0.0));
            let mut rng = StdRng::seed_from_u64(42);
            (p.measure(0, 1, &mut rng), p.measure(2, 3, &mut rng))
        };
        assert_eq!(a, b);
    }

    #[test]
    fn observed_measurement_matches_plain_and_records_counters() {
        let m = paper_figure1();
        let cfg = ProbeConfig::default().probes_per_measurement(4);
        let plain = {
            let p = Prober::new(&m, cfg);
            let mut rng = StdRng::seed_from_u64(5);
            (p.measure(0, 1, &mut rng), p.measure(2, 3, &mut rng))
        };
        let p = Prober::new(&m, cfg);
        let mut rng = StdRng::seed_from_u64(5);
        let mut obs = Obs::new();
        let observed = (
            p.measure_observed(0, 1, &mut rng, Some(&mut obs)),
            p.measure_observed(2, 3, &mut rng, Some(&mut obs)),
        );
        // Identical RNG stream: instrumentation must not perturb it.
        assert_eq!(plain, observed);
        assert_eq!(obs.metrics.counter("probe.sent"), 8);
        assert_eq!(obs.metrics.counter("probe.measurements"), 2);
        assert_eq!(obs.metrics.counter("probe.timeouts"), 0);
        let hist = obs.metrics.histogram("probe.rtt_ms").expect("histogram");
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn observed_total_loss_records_timeout() {
        let m = paper_figure1();
        let p = Prober::new(
            &m,
            ProbeConfig::noiseless()
                .probes_per_measurement(3)
                .loss_rate(0.999),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let mut obs = Obs::new();
        let mut out = Vec::new();
        p.measure_all_into_observed(0, &[1], &mut rng, &mut out, Some(&mut obs));
        assert_eq!(obs.metrics.counter("probe.lost"), 3);
        assert_eq!(obs.metrics.counter("probe.timeouts"), 1);
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn bad_loss_rate_rejected() {
        let _ = ProbeConfig::default().loss_rate(1.0);
    }

    #[test]
    #[should_panic(expected = "timeout")]
    fn bad_timeout_rejected() {
        let _ = ProbeConfig::default().timeout_ms(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn zero_probes_rejected() {
        let _ = ProbeConfig::default().probes_per_measurement(0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_rejected() {
        let _ = ProbeConfig::default().noise_sigma(-0.1);
    }
}
