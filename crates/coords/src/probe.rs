//! RTT probing model.
//!
//! Real deployments measure RTTs by sending probe packets; measurements
//! jitter around the propagation delay. The paper's schemes compensate by
//! probing each target "multiple times and recording the average RTT".
//! [`Prober`] reproduces that: each probe multiplies the ground-truth RTT
//! by log-normal noise, and a measurement averages a configurable number
//! of probes.

use crate::resilience::{Measurement, ProbeFaults, RetryPolicy};
use ecg_obs::Obs;
use ecg_topology::RttSource;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of the probing model.
///
/// # Examples
///
/// ```
/// use ecg_coords::ProbeConfig;
///
/// let cfg = ProbeConfig::default().probes_per_measurement(5).noise_sigma(0.1);
/// assert_eq!(cfg.probes(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeConfig {
    probes: usize,
    noise_sigma: f64,
    loss_rate: f64,
    timeout_ms: f64,
}

impl Default for ProbeConfig {
    /// Three probes per measurement with 5% log-normal jitter, no probe
    /// loss, and a 1 s probe timeout — a light but realistic
    /// measurement error.
    fn default() -> Self {
        ProbeConfig {
            probes: 3,
            noise_sigma: 0.05,
            loss_rate: 0.0,
            timeout_ms: 1_000.0,
        }
    }
}

impl ProbeConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a noise-free configuration (measurements equal ground
    /// truth exactly); useful for isolating algorithmic error.
    pub fn noiseless() -> Self {
        ProbeConfig {
            probes: 1,
            noise_sigma: 0.0,
            loss_rate: 0.0,
            timeout_ms: 1_000.0,
        }
    }

    /// Sets how many probes are averaged per measurement.
    ///
    /// # Panics
    ///
    /// Panics if `probes == 0`.
    pub fn probes_per_measurement(mut self, probes: usize) -> Self {
        assert!(probes > 0, "need at least one probe per measurement");
        self.probes = probes;
        self
    }

    /// Sets the standard deviation of the log-normal noise factor.
    ///
    /// Each probe observes `rtt × exp(σ·z)` with `z ~ N(0, 1)`. A sigma of
    /// `0.05` jitters probes by about ±5%.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn noise_sigma(mut self, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "noise sigma must be finite and non-negative"
        );
        self.noise_sigma = sigma;
        self
    }

    /// Sets the probability that any single probe is lost in transit.
    ///
    /// A lost probe contributes nothing to the measured average; it is
    /// still counted in [`Prober::probes_sent`] and tallied in
    /// [`Prober::probes_lost`]. If *every* probe of a measurement is
    /// lost, the measurement's true outcome is
    /// [`Measurement::Timeout`], reported as such by
    /// [`Prober::measure_outcome`] and [`Prober::measure_retry`]. The
    /// legacy `f64` API ([`Prober::measure`]) cannot express that and
    /// falls back to reporting [`ProbeConfig::timeout`] as if it were
    /// an RTT — callers that must not average a timeout into a feature
    /// vector should use the outcome-returning API.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1)`.
    pub fn loss_rate(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && (0.0..1.0).contains(&rate),
            "loss rate must be in [0, 1)"
        );
        self.loss_rate = rate;
        self
    }

    /// Sets how long a prober waits before declaring a probe lost.
    ///
    /// This value doubles as the *sentinel RTT* the legacy `f64` API
    /// reports when a whole measurement times out or the target is
    /// unreachable; the outcome-returning API
    /// ([`Prober::measure_outcome`] / [`Prober::measure_retry`]) never
    /// reports it as a measurement.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is not positive and finite.
    pub fn timeout_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms > 0.0, "timeout must be positive");
        self.timeout_ms = ms;
        self
    }

    /// Number of probes averaged per measurement.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Standard deviation of the log-normal noise factor.
    pub fn sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// Probability that a single probe is lost.
    pub fn loss(&self) -> f64 {
        self.loss_rate
    }

    /// Probe timeout in milliseconds.
    pub fn timeout(&self) -> f64 {
        self.timeout_ms
    }
}

/// Samples a standard normal variate via the Box–Muller transform.
///
/// Implemented locally to keep the dependency set down to `rand` itself.
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A simulated prober over a ground-truth RTT oracle.
///
/// The ground truth is any [`RttSource`] — a dense
/// [`RttMatrix`](ecg_topology::RttMatrix) for paper-scale runs, or an
/// implicit oracle like [`SyntheticRtt`](ecg_topology::SyntheticRtt)
/// when N is too large to materialize O(n²) RTTs. Node indices follow
/// the oracle the prober wraps; for an
/// [`EdgeNetwork`](ecg_topology::EdgeNetwork) matrix, index `0` is the
/// origin and `i + 1` is cache `Ec_i`.
///
/// The probe counters are atomics (relaxed ordering — they are plain
/// commutative tallies), so a shared `&Prober` can serve concurrent
/// [`ecg_par`] workers and still report exact totals.
///
/// # Examples
///
/// ```
/// use ecg_coords::{ProbeConfig, Prober};
/// use ecg_topology::fixtures::paper_figure1;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let matrix = paper_figure1();
/// let prober = Prober::new(&matrix, ProbeConfig::noiseless());
/// let mut rng = StdRng::seed_from_u64(1);
/// assert_eq!(prober.measure(1, 2, &mut rng), 4.0);
/// ```
#[derive(Debug)]
pub struct Prober<'a> {
    truth: &'a dyn RttSource,
    config: ProbeConfig,
    faults: ProbeFaults,
    probes_sent: AtomicU64,
    probes_lost: AtomicU64,
    retries: AtomicU64,
    gave_up: AtomicU64,
    backoff_ms: AtomicU64,
}

impl Clone for Prober<'_> {
    fn clone(&self) -> Self {
        Prober {
            truth: self.truth,
            config: self.config,
            faults: self.faults.clone(),
            probes_sent: AtomicU64::new(self.probes_sent()),
            probes_lost: AtomicU64::new(self.probes_lost()),
            retries: AtomicU64::new(self.retries()),
            gave_up: AtomicU64::new(self.gave_up()),
            backoff_ms: AtomicU64::new(self.backoff_ms()),
        }
    }
}

impl<'a> Prober<'a> {
    /// Wraps a ground-truth RTT oracle with the given probing behaviour.
    pub fn new(truth: &'a dyn RttSource, config: ProbeConfig) -> Self {
        Prober::with_faults(truth, config, ProbeFaults::default())
    }

    /// Like [`Prober::new`], with an injected failure set: links marked
    /// dead by `faults` report [`Measurement::Unreachable`] instead of
    /// an RTT. An empty set behaves exactly like [`Prober::new`].
    pub fn with_faults(truth: &'a dyn RttSource, config: ProbeConfig, faults: ProbeFaults) -> Self {
        Prober {
            truth,
            config,
            faults,
            probes_sent: AtomicU64::new(0),
            probes_lost: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            gave_up: AtomicU64::new(0),
            backoff_ms: AtomicU64::new(0),
        }
    }

    /// The injected failure set (empty unless built with
    /// [`Prober::with_faults`]).
    pub fn faults(&self) -> &ProbeFaults {
        &self.faults
    }

    /// Number of nodes visible to the prober.
    pub fn node_count(&self) -> usize {
        self.truth.node_count()
    }

    /// The probing configuration.
    pub fn config(&self) -> ProbeConfig {
        self.config
    }

    /// Total probes sent so far — the measurement overhead the paper's
    /// greedy PLSet construction is designed to bound.
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent.load(Ordering::Relaxed)
    }

    /// Probes lost in transit so far (only with a non-zero
    /// [`ProbeConfig::loss_rate`] or injected faults).
    pub fn probes_lost(&self) -> u64 {
        self.probes_lost.load(Ordering::Relaxed)
    }

    /// Retry attempts performed so far by [`Prober::measure_retry`].
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Measurements [`Prober::measure_retry`] gave up on (exhausted
    /// retries, or the target was unreachable).
    pub fn gave_up(&self) -> u64 {
        self.gave_up.load(Ordering::Relaxed)
    }

    /// Total *virtual* backoff accounted by retries, in milliseconds —
    /// what a real deployment would have slept. Never wall clock.
    pub fn backoff_ms(&self) -> u64 {
        self.backoff_ms.load(Ordering::Relaxed)
    }

    /// Measures the RTT between `a` and `b`: the average of the
    /// successful probes out of `config.probes()` noisy ones, in
    /// milliseconds. If every probe is lost — or the link is dead under
    /// the injected faults — the measurement times out and reports
    /// [`ProbeConfig::timeout`]; use [`Prober::measure_outcome`] to
    /// tell those cases apart.
    ///
    /// Probing yourself returns `0.0` without sending probes.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range of the wrapped matrix.
    pub fn measure<R: Rng + ?Sized>(&self, a: usize, b: usize, rng: &mut R) -> f64 {
        self.measure_outcome(a, b, rng)
            .value_or(self.config.timeout_ms)
    }

    /// Measures the RTT between `a` and `b` with an explicit outcome:
    /// [`Measurement::Ok`] with the average of the answering probes,
    /// [`Measurement::Timeout`] when every probe is lost, or
    /// [`Measurement::Unreachable`] when the injected faults mark the
    /// link dead (no RNG draws are consumed in that case, but the
    /// probes are still counted as sent and lost).
    ///
    /// Probing yourself returns `Ok(0.0)` without sending probes.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range of the wrapped matrix.
    pub fn measure_outcome<R: Rng + ?Sized>(&self, a: usize, b: usize, rng: &mut R) -> Measurement {
        if a == b {
            return Measurement::Ok(0.0);
        }
        if !self.faults.is_empty() && self.faults.link_dead(a, b) {
            let probes = self.config.probes as u64;
            self.probes_sent.fetch_add(probes, Ordering::Relaxed);
            self.probes_lost.fetch_add(probes, Ordering::Relaxed);
            return Measurement::Unreachable;
        }
        let truth = self.truth.rtt_ms(a, b);
        let mut sum = 0.0;
        let mut answered = 0u32;
        for _ in 0..self.config.probes {
            // Short-circuit so a loss-free config draws nothing extra
            // from the RNG (keeps loss_rate = 0 streams identical to
            // the pre-loss model).
            if self.config.loss_rate > 0.0 && rng.gen_bool(self.config.loss_rate) {
                self.probes_lost.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let noise = if self.config.noise_sigma == 0.0 {
                1.0
            } else {
                (self.config.noise_sigma * standard_normal(rng)).exp()
            };
            sum += truth * noise;
            answered += 1;
        }
        self.probes_sent
            .fetch_add(self.config.probes as u64, Ordering::Relaxed);
        if answered == 0 {
            Measurement::Timeout
        } else {
            Measurement::Ok(sum / answered as f64)
        }
    }

    /// Like [`Prober::measure_outcome`], but records the attempt into an
    /// observability bundle when one is supplied: `probe.measurements` /
    /// `probe.sent` / `probe.lost` counters, a `probe.rtt_ms` histogram
    /// for successful measurements, and `probe.timeouts` /
    /// `probe.unreachable` counters for the failure outcomes.
    /// Instrumentation never touches the RNG stream.
    pub fn measure_outcome_observed<R: Rng + ?Sized>(
        &self,
        a: usize,
        b: usize,
        rng: &mut R,
        obs: Option<&mut Obs>,
    ) -> Measurement {
        let Some(obs) = obs else {
            return self.measure_outcome(a, b, rng);
        };
        let sent_before = self.probes_sent();
        let lost_before = self.probes_lost();
        let outcome = self.measure_outcome(a, b, rng);
        obs.metrics.inc("probe.measurements");
        obs.metrics
            .add("probe.sent", self.probes_sent() - sent_before);
        obs.metrics
            .add("probe.lost", self.probes_lost() - lost_before);
        match outcome {
            Measurement::Ok(rtt) => obs.metrics.observe("probe.rtt_ms", rtt),
            Measurement::Timeout => obs.metrics.inc("probe.timeouts"),
            Measurement::Unreachable => obs.metrics.inc("probe.unreachable"),
        }
        outcome
    }

    /// Measures with bounded retries under `policy`.
    ///
    /// The first attempt consumes the caller's RNG exactly like
    /// [`Prober::measure_outcome`], so on the healthy path (first
    /// attempt succeeds) this is draw-for-draw identical to the
    /// non-retrying API. On a [`Measurement::Timeout`] one `u64` master
    /// value is drawn from the caller's stream and each retry probes on
    /// its own derived stream ([`ecg_par::derive_seed`] of the attempt
    /// number), accounting the policy's virtual backoff — the caller's
    /// stream therefore advances by the same amount no matter how many
    /// retries run. [`Measurement::Unreachable`] gives up immediately:
    /// a dead link cannot be retried into answering.
    pub fn measure_retry<R: Rng + ?Sized>(
        &self,
        a: usize,
        b: usize,
        policy: &RetryPolicy,
        rng: &mut R,
    ) -> Measurement {
        self.measure_retry_observed(a, b, policy, rng, None)
    }

    /// Like [`Prober::measure_retry`], but records every attempt via
    /// [`Prober::measure_outcome_observed`] plus `probe.retries` and
    /// `probe.gave_up` counters when a bundle is supplied.
    pub fn measure_retry_observed<R: Rng + ?Sized>(
        &self,
        a: usize,
        b: usize,
        policy: &RetryPolicy,
        rng: &mut R,
        mut obs: Option<&mut Obs>,
    ) -> Measurement {
        let first = self.measure_outcome_observed(a, b, rng, obs.as_deref_mut());
        match first {
            Measurement::Ok(_) => return first,
            Measurement::Unreachable => {
                self.gave_up.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = obs {
                    o.metrics.inc("probe.gave_up");
                }
                return first;
            }
            Measurement::Timeout => {}
        }
        // One master draw regardless of retry count keeps the caller's
        // stream deterministic across policies.
        let master: u64 = rng.gen();
        for attempt in 1..=policy.max_retries() {
            self.retries.fetch_add(1, Ordering::Relaxed);
            self.backoff_ms
                .fetch_add(policy.backoff_before_ms(attempt), Ordering::Relaxed);
            if let Some(o) = obs.as_deref_mut() {
                o.metrics.inc("probe.retries");
            }
            let mut retry_rng =
                StdRng::seed_from_u64(ecg_par::derive_seed(master, u64::from(attempt)));
            let outcome = self.measure_outcome_observed(a, b, &mut retry_rng, obs.as_deref_mut());
            match outcome {
                Measurement::Ok(_) => return outcome,
                Measurement::Unreachable => {
                    // Faults are fixed for the prober's lifetime, so a
                    // dead link cannot come back; stop retrying.
                    self.gave_up.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = obs {
                        o.metrics.inc("probe.gave_up");
                    }
                    return outcome;
                }
                Measurement::Timeout => {}
            }
        }
        self.gave_up.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = obs {
            o.metrics.inc("probe.gave_up");
        }
        Measurement::Timeout
    }

    /// Like [`Prober::measure`], but also records the measurement into
    /// an observability bundle when one is supplied: `probe.sent` /
    /// `probe.lost` / `probe.timeouts` counters, a `probe.measurements`
    /// counter, and a `probe.rtt_ms` histogram. With `obs = None` this
    /// is exactly [`Prober::measure`] — instrumentation never touches
    /// the RNG stream either way.
    pub fn measure_observed<R: Rng + ?Sized>(
        &self,
        a: usize,
        b: usize,
        rng: &mut R,
        obs: Option<&mut Obs>,
    ) -> f64 {
        let Some(obs) = obs else {
            return self.measure(a, b, rng);
        };
        let sent_before = self.probes_sent();
        let lost_before = self.probes_lost();
        let rtt = self.measure(a, b, rng);
        let lost = self.probes_lost() - lost_before;
        obs.metrics.inc("probe.measurements");
        obs.metrics
            .add("probe.sent", self.probes_sent() - sent_before);
        obs.metrics.add("probe.lost", lost);
        obs.metrics.observe("probe.rtt_ms", rtt);
        if a != b && lost == self.config.probes as u64 {
            obs.metrics.inc("probe.timeouts");
        }
        rtt
    }

    /// Measures the RTT from `from` to every node in `targets`, in order.
    pub fn measure_all<R: Rng + ?Sized>(
        &self,
        from: usize,
        targets: &[usize],
        rng: &mut R,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.measure_all_into(from, targets, rng, &mut out);
        out
    }

    /// Like [`Prober::measure_all`], but writes into a caller-provided
    /// buffer (cleared first) so tight loops can measure many nodes
    /// without a per-node allocation.
    pub fn measure_all_into<R: Rng + ?Sized>(
        &self,
        from: usize,
        targets: &[usize],
        rng: &mut R,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(targets.len());
        for &t in targets {
            out.push(self.measure(from, t, rng));
        }
    }

    /// Like [`Prober::measure_all_into`], but records each measurement
    /// via [`Prober::measure_observed`] when a bundle is supplied.
    pub fn measure_all_into_observed<R: Rng + ?Sized>(
        &self,
        from: usize,
        targets: &[usize],
        rng: &mut R,
        out: &mut Vec<f64>,
        mut obs: Option<&mut Obs>,
    ) {
        out.clear();
        out.reserve(targets.len());
        for &t in targets {
            out.push(self.measure_observed(from, t, rng, obs.as_deref_mut()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_topology::fixtures::paper_figure1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_probe_returns_truth() {
        let m = paper_figure1();
        let p = Prober::new(&m, ProbeConfig::noiseless());
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(p.measure(i, j, &mut rng), m.get(i, j));
            }
        }
    }

    #[test]
    fn self_probe_is_zero_and_free() {
        let m = paper_figure1();
        let p = Prober::new(&m, ProbeConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.measure(3, 3, &mut rng), 0.0);
        assert_eq!(p.probes_sent(), 0);
    }

    #[test]
    fn probe_accounting_counts_each_probe() {
        let m = paper_figure1();
        let p = Prober::new(&m, ProbeConfig::default().probes_per_measurement(4));
        let mut rng = StdRng::seed_from_u64(0);
        p.measure(0, 1, &mut rng);
        p.measure(1, 2, &mut rng);
        assert_eq!(p.probes_sent(), 8);
    }

    #[test]
    fn noisy_measurements_are_near_truth() {
        let m = paper_figure1();
        let p = Prober::new(
            &m,
            ProbeConfig::default()
                .probes_per_measurement(50)
                .noise_sigma(0.05),
        );
        let mut rng = StdRng::seed_from_u64(7);
        let measured = p.measure(0, 1, &mut rng);
        let truth = m.get(0, 1);
        assert!(
            (measured - truth).abs() / truth < 0.05,
            "measured {measured} vs truth {truth}"
        );
    }

    #[test]
    fn more_probes_reduce_error() {
        let m = paper_figure1();
        let truth = m.get(0, 1);
        let mean_abs_err = |probes: usize| {
            let p = Prober::new(
                &m,
                ProbeConfig::default()
                    .probes_per_measurement(probes)
                    .noise_sigma(0.3),
            );
            let mut rng = StdRng::seed_from_u64(99);
            let mut err = 0.0;
            for _ in 0..200 {
                err += (p.measure(0, 1, &mut rng) - truth).abs();
            }
            err / 200.0
        };
        assert!(mean_abs_err(16) < mean_abs_err(1));
    }

    #[test]
    fn measure_all_orders_targets() {
        let m = paper_figure1();
        let p = Prober::new(&m, ProbeConfig::noiseless());
        let mut rng = StdRng::seed_from_u64(0);
        let v = p.measure_all(1, &[0, 2, 3], &mut rng);
        assert_eq!(v, vec![12.0, 4.0, 17.0]);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lossy_probes_are_counted_and_skipped() {
        let m = paper_figure1();
        let p = Prober::new(
            &m,
            ProbeConfig::noiseless()
                .probes_per_measurement(200)
                .loss_rate(0.3),
        );
        let mut rng = StdRng::seed_from_u64(11);
        let measured = p.measure(0, 1, &mut rng);
        // Survivors are noiseless, so the average is exact truth.
        assert_eq!(measured, m.get(0, 1));
        assert_eq!(p.probes_sent(), 200);
        let lost = p.probes_lost();
        assert!((30..=100).contains(&lost), "lost {lost}");
    }

    #[test]
    fn total_loss_times_out() {
        let m = paper_figure1();
        let p = Prober::new(
            &m,
            ProbeConfig::noiseless()
                .probes_per_measurement(3)
                .loss_rate(0.999)
                .timeout_ms(750.0),
        );
        let mut rng = StdRng::seed_from_u64(0);
        // With 99.9% loss the 3 probes are all lost essentially always.
        let measured = p.measure(0, 1, &mut rng);
        assert_eq!(measured, 750.0);
        assert_eq!(p.probes_lost(), 3);
    }

    #[test]
    fn zero_loss_rate_draws_no_extra_randomness() {
        // The same seed must produce the same measurements whether the
        // loss machinery is present or not (loss_rate 0 short-circuits).
        let m = paper_figure1();
        let cfg = ProbeConfig::default().probes_per_measurement(5);
        let a = {
            let p = Prober::new(&m, cfg);
            let mut rng = StdRng::seed_from_u64(42);
            (p.measure(0, 1, &mut rng), p.measure(2, 3, &mut rng))
        };
        let b = {
            let p = Prober::new(&m, cfg.loss_rate(0.0));
            let mut rng = StdRng::seed_from_u64(42);
            (p.measure(0, 1, &mut rng), p.measure(2, 3, &mut rng))
        };
        assert_eq!(a, b);
    }

    #[test]
    fn observed_measurement_matches_plain_and_records_counters() {
        let m = paper_figure1();
        let cfg = ProbeConfig::default().probes_per_measurement(4);
        let plain = {
            let p = Prober::new(&m, cfg);
            let mut rng = StdRng::seed_from_u64(5);
            (p.measure(0, 1, &mut rng), p.measure(2, 3, &mut rng))
        };
        let p = Prober::new(&m, cfg);
        let mut rng = StdRng::seed_from_u64(5);
        let mut obs = Obs::new();
        let observed = (
            p.measure_observed(0, 1, &mut rng, Some(&mut obs)),
            p.measure_observed(2, 3, &mut rng, Some(&mut obs)),
        );
        // Identical RNG stream: instrumentation must not perturb it.
        assert_eq!(plain, observed);
        assert_eq!(obs.metrics.counter("probe.sent"), 8);
        assert_eq!(obs.metrics.counter("probe.measurements"), 2);
        assert_eq!(obs.metrics.counter("probe.timeouts"), 0);
        let hist = obs.metrics.histogram("probe.rtt_ms").expect("histogram");
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn observed_total_loss_records_timeout() {
        let m = paper_figure1();
        let p = Prober::new(
            &m,
            ProbeConfig::noiseless()
                .probes_per_measurement(3)
                .loss_rate(0.999),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let mut obs = Obs::new();
        let mut out = Vec::new();
        p.measure_all_into_observed(0, &[1], &mut rng, &mut out, Some(&mut obs));
        assert_eq!(obs.metrics.counter("probe.lost"), 3);
        assert_eq!(obs.metrics.counter("probe.timeouts"), 1);
    }

    #[test]
    fn outcome_reports_timeout_not_sentinel() {
        let m = paper_figure1();
        let p = Prober::new(
            &m,
            ProbeConfig::noiseless()
                .probes_per_measurement(3)
                .loss_rate(0.999),
        );
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.measure_outcome(0, 1, &mut rng), Measurement::Timeout);
    }

    #[test]
    fn dead_link_is_unreachable_without_rng_draws() {
        let m = paper_figure1();
        let faults = ProbeFaults::new().node_down(2);
        let p = Prober::with_faults(&m, ProbeConfig::default(), faults);
        let mut rng = StdRng::seed_from_u64(3);
        let before = rng.clone();
        assert_eq!(p.measure_outcome(1, 2, &mut rng), Measurement::Unreachable);
        // No randomness consumed for a known-dead link.
        let mut before = before;
        assert_eq!(rng.gen::<u64>(), before.gen::<u64>());
        // The probes still count as sent and lost.
        assert_eq!(p.probes_sent(), 3);
        assert_eq!(p.probes_lost(), 3);
        // Legacy f64 API maps it onto the timeout sentinel.
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(p.measure(1, 2, &mut rng), p.config().timeout());
    }

    #[test]
    fn blackholed_link_leaves_other_links_alive() {
        let m = paper_figure1();
        let faults = ProbeFaults::new().blackhole(1, 2);
        let p = Prober::with_faults(&m, ProbeConfig::noiseless(), faults);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(p.measure_outcome(2, 1, &mut rng).is_unreachable());
        assert_eq!(p.measure_outcome(1, 3, &mut rng), Measurement::Ok(17.0));
    }

    #[test]
    fn empty_faults_match_plain_prober_exactly() {
        let m = paper_figure1();
        let cfg = ProbeConfig::default().loss_rate(0.2);
        let a = {
            let p = Prober::new(&m, cfg);
            let mut rng = StdRng::seed_from_u64(8);
            (p.measure(0, 1, &mut rng), p.measure(2, 3, &mut rng))
        };
        let b = {
            let p = Prober::with_faults(&m, cfg, ProbeFaults::default());
            let mut rng = StdRng::seed_from_u64(8);
            (p.measure(0, 1, &mut rng), p.measure(2, 3, &mut rng))
        };
        assert_eq!(a, b);
    }

    #[test]
    fn retry_is_draw_identical_to_measure_on_the_healthy_path() {
        let m = paper_figure1();
        let cfg = ProbeConfig::default().probes_per_measurement(4);
        let p = Prober::new(&m, cfg);
        let mut rng_a = StdRng::seed_from_u64(21);
        let plain = (p.measure(0, 1, &mut rng_a), p.measure(2, 3, &mut rng_a));
        let after_plain: u64 = rng_a.gen();
        let mut rng_b = StdRng::seed_from_u64(21);
        let policy = RetryPolicy::default();
        let retried = (
            p.measure_retry(0, 1, &policy, &mut rng_b).value().unwrap(),
            p.measure_retry(2, 3, &policy, &mut rng_b).value().unwrap(),
        );
        assert_eq!(plain, retried);
        // The caller's stream is in the same state afterwards.
        assert_eq!(after_plain, rng_b.gen::<u64>());
        assert_eq!(p.retries(), 0);
        assert_eq!(p.gave_up(), 0);
    }

    #[test]
    fn retry_recovers_transient_loss() {
        // 60% loss with 3 probes times out ~21.6% of the time; two
        // retries cut a measurement's give-up odds to ~1%. Seed-search
        // for a first-attempt timeout and check a retry rescues it.
        let m = paper_figure1();
        let cfg = ProbeConfig::noiseless()
            .probes_per_measurement(3)
            .loss_rate(0.6);
        let policy = RetryPolicy::default().retries(5);
        let mut rescued = false;
        for seed in 0..200 {
            let probe_a = Prober::new(&m, cfg);
            let mut rng = StdRng::seed_from_u64(seed);
            let plain = probe_a.measure_outcome(0, 1, &mut rng);
            if !plain.is_timeout() {
                continue;
            }
            let probe_b = Prober::new(&m, cfg);
            let mut rng = StdRng::seed_from_u64(seed);
            let retried = probe_b.measure_retry(0, 1, &policy, &mut rng);
            if let Measurement::Ok(v) = retried {
                assert_eq!(v, m.get(0, 1));
                assert!(probe_b.retries() >= 1);
                assert_eq!(probe_b.gave_up(), 0);
                assert!(probe_b.backoff_ms() >= policy.backoff_before_ms(1));
                rescued = true;
                break;
            }
        }
        assert!(rescued, "no seed produced a rescued timeout");
    }

    #[test]
    fn retry_gives_up_immediately_on_unreachable() {
        let m = paper_figure1();
        let faults = ProbeFaults::new().node_down(1);
        let p = Prober::with_faults(&m, ProbeConfig::default(), faults);
        let mut rng = StdRng::seed_from_u64(0);
        let policy = RetryPolicy::default().retries(10);
        let out = p.measure_retry(0, 1, &policy, &mut rng);
        assert!(out.is_unreachable());
        assert_eq!(p.retries(), 0, "dead links must not be retried");
        assert_eq!(p.gave_up(), 1);
        assert_eq!(p.backoff_ms(), 0);
    }

    #[test]
    fn exhausted_retries_give_up_with_accounted_backoff() {
        let m = paper_figure1();
        let p = Prober::new(
            &m,
            ProbeConfig::noiseless()
                .probes_per_measurement(2)
                .loss_rate(0.999),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let policy = RetryPolicy::default()
            .retries(3)
            .base_backoff_ms(10)
            .multiplier(2);
        let out = p.measure_retry(0, 1, &policy, &mut rng);
        assert!(out.is_timeout());
        assert_eq!(p.retries(), 3);
        assert_eq!(p.gave_up(), 1);
        assert_eq!(p.backoff_ms(), 10 + 20 + 40);
    }

    #[test]
    fn retry_caller_stream_is_policy_independent() {
        // Whether the policy allows 1 or 10 retries, a timed-out
        // measurement advances the caller's stream identically (one
        // master draw): subsequent draws agree.
        let m = paper_figure1();
        let cfg = ProbeConfig::noiseless()
            .probes_per_measurement(2)
            .loss_rate(0.999);
        let drain = |retries: u32| -> u64 {
            let p = Prober::new(&m, cfg);
            let mut rng = StdRng::seed_from_u64(17);
            let _ = p.measure_retry(0, 1, &RetryPolicy::default().retries(retries), &mut rng);
            rng.gen()
        };
        assert_eq!(drain(1), drain(10));
    }

    #[test]
    fn observed_retry_matches_plain_and_records_counters() {
        let m = paper_figure1();
        let cfg = ProbeConfig::noiseless()
            .probes_per_measurement(2)
            .loss_rate(0.999);
        let policy = RetryPolicy::default().retries(2);
        let plain = {
            let p = Prober::new(&m, cfg);
            let mut rng = StdRng::seed_from_u64(4);
            p.measure_retry(0, 1, &policy, &mut rng)
        };
        let p = Prober::new(&m, cfg);
        let mut rng = StdRng::seed_from_u64(4);
        let mut obs = Obs::new();
        let observed = p.measure_retry_observed(0, 1, &policy, &mut rng, Some(&mut obs));
        assert_eq!(plain, observed);
        assert_eq!(obs.metrics.counter("probe.retries"), 2);
        assert_eq!(obs.metrics.counter("probe.gave_up"), 1);
        assert_eq!(obs.metrics.counter("probe.measurements"), 3);
        assert_eq!(obs.metrics.counter("probe.timeouts"), 3);
    }

    #[test]
    fn observed_unreachable_is_counted() {
        let m = paper_figure1();
        let faults = ProbeFaults::new().node_down(1);
        let p = Prober::with_faults(&m, ProbeConfig::default(), faults);
        let mut rng = StdRng::seed_from_u64(0);
        let mut obs = Obs::new();
        let out = p.measure_retry_observed(0, 1, &RetryPolicy::default(), &mut rng, Some(&mut obs));
        assert!(out.is_unreachable());
        assert_eq!(obs.metrics.counter("probe.unreachable"), 1);
        assert_eq!(obs.metrics.counter("probe.gave_up"), 1);
        assert_eq!(obs.metrics.counter("probe.retries"), 0);
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn bad_loss_rate_rejected() {
        let _ = ProbeConfig::default().loss_rate(1.0);
    }

    #[test]
    #[should_panic(expected = "timeout")]
    fn bad_timeout_rejected() {
        let _ = ProbeConfig::default().timeout_ms(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn zero_probes_rejected() {
        let _ = ProbeConfig::default().probes_per_measurement(0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_rejected() {
        let _ = ProbeConfig::default().noise_sigma(-0.1);
    }
}
