//! Global Network Positioning (GNP) Euclidean embedding.
//!
//! GNP (Ng & Zhang, INFOCOM '02) maps Internet hosts into a
//! `D`-dimensional Euclidean space so that coordinate distances
//! approximate network RTTs. The paper uses GNP as the comparison point
//! for its simple feature-vector representation (Figure 7): both are fed
//! to the same K-means clustering, and the paper's finding is that the
//! cheap feature vectors cluster as well as the expensive embedding.
//!
//! The algorithm has two phases:
//!
//! 1. **Landmark phase** — jointly fit coordinates for the `L` landmarks
//!    minimizing the sum of squared *relative* errors between coordinate
//!    distances and measured landmark–landmark RTTs.
//! 2. **Node phase** — each remaining node independently fits its own
//!    coordinates against the (now fixed) landmark coordinates using its
//!    measured RTTs to the landmarks.
//!
//! Both phases use the Nelder–Mead minimizer from [`crate::simplex`],
//! with multiple random restarts to escape poor local minima.

use crate::probe::Prober;
use crate::simplex::{minimize, SimplexOptions};
use rand::Rng;
use std::fmt;

/// A point in the GNP Euclidean space.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GnpCoordinates {
    values: Vec<f64>,
}

impl GnpCoordinates {
    /// Wraps raw coordinates.
    pub fn new(values: Vec<f64>) -> Self {
        GnpCoordinates { values }
    }

    /// Dimensionality of the space.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Raw coordinate slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Euclidean distance to another coordinate — the RTT estimate
    /// between the two hosts.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn distance(&self, other: &GnpCoordinates) -> f64 {
        assert_eq!(self.dim(), other.dim(), "mixed GNP dimensions");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl fmt::Display for GnpCoordinates {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.2}")?;
        }
        write!(f, ")")
    }
}

/// Configuration of the GNP embedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnpConfig {
    dimensions: usize,
    restarts: usize,
    max_iterations: usize,
}

impl Default for GnpConfig {
    /// Seven dimensions (the setting the GNP paper found sufficient for
    /// Internet RTTs), three restarts per fit.
    fn default() -> Self {
        GnpConfig {
            dimensions: 7,
            restarts: 3,
            max_iterations: 2_000,
        }
    }
}

impl GnpConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the dimensionality `D` of the embedding space.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn dimensions(mut self, d: usize) -> Self {
        assert!(d > 0, "embedding needs at least one dimension");
        self.dimensions = d;
        self
    }

    /// Sets the number of random restarts per minimization.
    ///
    /// # Panics
    ///
    /// Panics if `restarts == 0`.
    pub fn restarts(mut self, restarts: usize) -> Self {
        assert!(restarts > 0, "need at least one restart");
        self.restarts = restarts;
        self
    }

    /// Sets the simplex iteration cap per restart.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Dimensionality of the embedding space.
    pub fn dims(&self) -> usize {
        self.dimensions
    }
}

/// Squared relative error between a predicted and a measured distance.
///
/// GNP normalizes by the measured value so short links are not drowned
/// out by long ones. Zero measurements contribute absolute error instead.
fn sq_relative_error(predicted: f64, measured: f64) -> f64 {
    if measured > f64::EPSILON {
        let e = (predicted - measured) / measured;
        e * e
    } else {
        predicted * predicted
    }
}

/// A fitted GNP model: landmark coordinates plus the config used.
#[derive(Debug, Clone, PartialEq)]
pub struct GnpModel {
    config: GnpConfig,
    landmark_coords: Vec<GnpCoordinates>,
    landmark_fit_error: f64,
}

impl GnpModel {
    /// Phase 1: fits coordinates for the landmark set.
    ///
    /// `landmark_rtts[i][j]` must hold the measured RTT between landmarks
    /// `i` and `j` (diagonal ignored). Runs `restarts` simplex fits from
    /// random starts and keeps the best.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two landmarks are given or the RTT matrix is
    /// not square.
    pub fn fit_landmarks<R: Rng + ?Sized>(
        config: GnpConfig,
        landmark_rtts: &[Vec<f64>],
        rng: &mut R,
    ) -> Self {
        let l = landmark_rtts.len();
        assert!(l >= 2, "GNP needs at least two landmarks");
        for row in landmark_rtts {
            assert_eq!(row.len(), l, "landmark RTT matrix must be square");
        }
        let d = config.dimensions;
        let scale = landmark_rtts
            .iter()
            .flatten()
            .copied()
            .fold(1.0f64, f64::max);

        // Joint optimization over all L·D coordinates at once converges
        // poorly for realistic landmark counts (L = 25, D = 7 is a
        // 175-dimensional simplex), so each restart runs block
        // coordinate descent: sweep the landmarks, re-fitting each one's
        // D coordinates against the others held fixed.
        let total_error = |flat: &[Vec<f64>]| -> f64 {
            let mut err = 0.0;
            for i in 0..l {
                for j in (i + 1)..l {
                    let dist: f64 = flat[i]
                        .iter()
                        .zip(&flat[j])
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt();
                    err += sq_relative_error(dist, landmark_rtts[i][j]);
                }
            }
            err
        };

        let sweeps = 8;
        let mut best: Option<(Vec<Vec<f64>>, f64)> = None;
        for _ in 0..config.restarts {
            let mut coords: Vec<Vec<f64>> = (0..l)
                .map(|_| (0..d).map(|_| rng.gen::<f64>() * scale).collect())
                .collect();
            for _ in 0..sweeps {
                for i in 0..l {
                    let others: Vec<(Vec<f64>, f64)> = (0..l)
                        .filter(|&j| j != i)
                        .map(|j| (coords[j].clone(), landmark_rtts[i][j]))
                        .collect();
                    let objective = |p: &[f64]| -> f64 {
                        others
                            .iter()
                            .map(|(other, rtt)| {
                                let dist: f64 = p
                                    .iter()
                                    .zip(other)
                                    .map(|(a, b)| (a - b) * (a - b))
                                    .sum::<f64>()
                                    .sqrt();
                                sq_relative_error(dist, *rtt)
                            })
                            .sum()
                    };
                    let r = minimize(
                        objective,
                        &coords[i],
                        SimplexOptions {
                            max_iterations: config.max_iterations,
                            tolerance: 1e-10,
                            initial_step: scale * 0.1,
                        },
                    );
                    coords[i] = r.point;
                }
            }
            let err = total_error(&coords);
            if best.as_ref().is_none_or(|(_, v)| err < *v) {
                best = Some((coords, err));
            }
        }
        let (coords, landmark_fit_error) = best.expect("at least one restart");
        GnpModel {
            config,
            landmark_coords: coords.into_iter().map(GnpCoordinates::new).collect(),
            landmark_fit_error,
        }
    }

    /// The fitted landmark coordinates, in input order.
    pub fn landmark_coords(&self) -> &[GnpCoordinates] {
        &self.landmark_coords
    }

    /// Sum of squared relative errors over landmark pairs after fitting.
    pub fn landmark_fit_error(&self) -> f64 {
        self.landmark_fit_error
    }

    /// Phase 2: fits coordinates for one node given its measured RTTs to
    /// each landmark (in landmark order).
    ///
    /// # Panics
    ///
    /// Panics if `rtts_to_landmarks` does not match the landmark count.
    pub fn embed_node<R: Rng + ?Sized>(
        &self,
        rtts_to_landmarks: &[f64],
        rng: &mut R,
    ) -> GnpCoordinates {
        let l = self.landmark_coords.len();
        assert_eq!(
            rtts_to_landmarks.len(),
            l,
            "need one RTT per landmark ({l})"
        );
        let d = self.config.dimensions;
        let scale = rtts_to_landmarks.iter().copied().fold(1.0f64, f64::max);

        let objective = |p: &[f64]| -> f64 {
            let cand = GnpCoordinates::new(p.to_vec());
            self.landmark_coords
                .iter()
                .zip(rtts_to_landmarks)
                .map(|(lm, &rtt)| sq_relative_error(cand.distance(lm), rtt))
                .sum()
        };

        let mut best: Option<(Vec<f64>, f64)> = None;
        for attempt in 0..self.config.restarts {
            // First attempt starts from the centroid of the landmarks — a
            // strong initial guess — later attempts start randomly.
            let start: Vec<f64> = if attempt == 0 {
                (0..d)
                    .map(|k| {
                        self.landmark_coords
                            .iter()
                            .map(|c| c.as_slice()[k])
                            .sum::<f64>()
                            / l as f64
                    })
                    .collect()
            } else {
                (0..d).map(|_| rng.gen::<f64>() * scale).collect()
            };
            let r = minimize(
                objective,
                &start,
                SimplexOptions {
                    max_iterations: self.config.max_iterations,
                    tolerance: 1e-10,
                    initial_step: scale * 0.1,
                },
            );
            if best.as_ref().is_none_or(|(_, v)| r.value < *v) {
                best = Some((r.point, r.value));
            }
        }
        GnpCoordinates::new(best.expect("at least one restart").0)
    }
}

/// Embeds every node in `nodes` into GNP space in one call: measures
/// landmark–landmark RTTs, fits the model, then embeds each node from its
/// landmark measurements.
///
/// This is the full pipeline the Euclidean-space clustering comparator of
/// Figure 7 needs. Returns coordinates in `nodes` order.
pub fn embed_network<R: Rng + ?Sized>(
    config: GnpConfig,
    prober: &Prober<'_>,
    nodes: &[usize],
    landmarks: &[usize],
    rng: &mut R,
) -> Vec<GnpCoordinates> {
    let l = landmarks.len();
    let mut landmark_rtts = vec![vec![0.0; l]; l];
    for i in 0..l {
        for j in (i + 1)..l {
            let rtt = prober.measure(landmarks[i], landmarks[j], rng);
            landmark_rtts[i][j] = rtt;
            landmark_rtts[j][i] = rtt;
        }
    }
    let model = GnpModel::fit_landmarks(config, &landmark_rtts, rng);
    nodes
        .iter()
        .map(|&node| {
            let rtts = prober.measure_all(node, landmarks, rng);
            model.embed_node(&rtts, rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeConfig;
    use ecg_topology::RttMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// RTT matrix that is exactly embeddable in 2-D: nodes on a grid.
    fn planar_matrix(points: &[(f64, f64)]) -> RttMatrix {
        RttMatrix::from_fn(points.len(), |i, j| {
            let dx = points[i].0 - points[j].0;
            let dy = points[i].1 - points[j].1;
            (dx * dx + dy * dy).sqrt()
        })
    }

    #[test]
    fn landmark_fit_recovers_planar_geometry() {
        let pts = [(0.0, 0.0), (30.0, 0.0), (0.0, 40.0), (30.0, 40.0)];
        let m = planar_matrix(&pts);
        let rtts: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..4).map(|j| m.get(i, j)).collect())
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        let model = GnpModel::fit_landmarks(
            GnpConfig::default().dimensions(2).restarts(5),
            &rtts,
            &mut rng,
        );
        // Pairwise coordinate distances should match the input RTTs.
        for i in 0..4 {
            for j in (i + 1)..4 {
                let d = model.landmark_coords()[i].distance(&model.landmark_coords()[j]);
                let rel = (d - m.get(i, j)).abs() / m.get(i, j);
                assert!(rel < 0.05, "pair ({i},{j}): {d} vs {}", m.get(i, j));
            }
        }
    }

    #[test]
    fn node_embedding_predicts_distances() {
        let pts = [
            (0.0, 0.0),
            (50.0, 0.0),
            (0.0, 50.0),
            (50.0, 50.0),
            (25.0, 25.0), // node to embed
            (10.0, 40.0), // node to embed
        ];
        let m = planar_matrix(&pts);
        let prober = Prober::new(&m, ProbeConfig::noiseless());
        let mut rng = StdRng::seed_from_u64(9);
        let coords = embed_network(
            GnpConfig::default().dimensions(2).restarts(5),
            &prober,
            &[4, 5],
            &[0, 1, 2, 3],
            &mut rng,
        );
        // The two embedded nodes should be ~ the right distance apart.
        let truth = m.get(4, 5);
        let predicted = coords[0].distance(&coords[1]);
        assert!(
            (predicted - truth).abs() / truth < 0.15,
            "predicted {predicted} vs truth {truth}"
        );
    }

    #[test]
    fn fit_error_is_reported_and_small_for_embeddable_input() {
        let pts = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let m = planar_matrix(&pts);
        let rtts: Vec<Vec<f64>> = (0..3)
            .map(|i| (0..3).map(|j| m.get(i, j)).collect())
            .collect();
        let mut rng = StdRng::seed_from_u64(2);
        let model = GnpModel::fit_landmarks(
            GnpConfig::default().dimensions(2).restarts(4),
            &rtts,
            &mut rng,
        );
        assert!(model.landmark_fit_error() < 1e-3);
    }

    #[test]
    fn coordinates_distance_is_symmetric() {
        let a = GnpCoordinates::new(vec![1.0, 2.0]);
        let b = GnpCoordinates::new(vec![4.0, 6.0]);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn display_renders() {
        let c = GnpCoordinates::new(vec![1.0, -2.5]);
        assert_eq!(c.to_string(), "(1.00, -2.50)");
    }

    #[test]
    #[should_panic(expected = "two landmarks")]
    fn too_few_landmarks_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = GnpModel::fit_landmarks(GnpConfig::default(), &[vec![0.0]], &mut rng);
    }

    #[test]
    #[should_panic(expected = "one RTT per landmark")]
    fn embed_node_checks_arity() {
        let pts = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let m = planar_matrix(&pts);
        let rtts: Vec<Vec<f64>> = (0..3)
            .map(|i| (0..3).map(|j| m.get(i, j)).collect())
            .collect();
        let mut rng = StdRng::seed_from_u64(2);
        let model = GnpModel::fit_landmarks(GnpConfig::default().dimensions(2), &rtts, &mut rng);
        let _ = model.embed_node(&[1.0], &mut rng);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dims_rejected() {
        let _ = GnpConfig::default().dimensions(0);
    }
}
