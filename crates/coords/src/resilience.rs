//! Measurement outcomes, probe-level fault injection, and retry policy.
//!
//! The base [`Prober`](crate::Prober) API reports a plain `f64` for
//! every measurement, which forces a lossy encoding: a measurement
//! whose probes were *all* lost comes back as the timeout value, and
//! downstream code cannot tell a slow link from a dead one. This module
//! makes the outcome explicit:
//!
//! * [`Measurement`] — `Ok(rtt)`, `Timeout` (probes sent, none
//!   answered), or `Unreachable` (the link is known dead; probing is
//!   pointless).
//! * [`ProbeFaults`] — the injected failure set a prober consults:
//!   crashed nodes and black-holed links. Faults are fixed for the
//!   lifetime of a prober, modelling the state of the network during
//!   one formation run.
//! * [`RetryPolicy`] — bounded retries with a *deterministic* virtual
//!   exponential-backoff clock. No wall-clock time is involved: the
//!   backoff milliseconds are accounted, not slept, so runs are
//!   reproducible and instantaneous.
//! * [`FeatureMask`] — per-cell observation flags alongside a
//!   [`FeatureMatrix`](crate::FeatureMatrix), marking which feature
//!   components were actually measured.
//!
//! Determinism contract: retries draw from per-attempt derived RNG
//! streams ([`ecg_par::derive_seed`] on a single master value drawn
//! from the caller's stream), so the caller's stream advances by the
//! same amount whether a retry succeeds on the first or the last
//! attempt — and not at all when the first attempt succeeds, keeping
//! healthy-path runs bit-identical to the non-resilient API.

use std::collections::BTreeSet;
use std::fmt;

/// Outcome of one RTT measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measurement {
    /// The average RTT over the probes that answered, in milliseconds.
    Ok(f64),
    /// Every probe of the measurement was lost; the target may still be
    /// alive (transient loss).
    Timeout,
    /// The link is dead (a crashed endpoint or a black-holed path);
    /// retrying cannot help.
    Unreachable,
}

impl Measurement {
    /// The measured RTT, or `None` for a failed measurement.
    pub fn value(&self) -> Option<f64> {
        match self {
            Measurement::Ok(v) => Some(*v),
            _ => None,
        }
    }

    /// The measured RTT, or `fallback` for a failed measurement — the
    /// bridge back to the legacy `f64` API, which reports the probe
    /// timeout in that case.
    pub fn value_or(&self, fallback: f64) -> f64 {
        self.value().unwrap_or(fallback)
    }

    /// `true` for a successful measurement.
    pub fn is_ok(&self) -> bool {
        matches!(self, Measurement::Ok(_))
    }

    /// `true` when every probe was lost but the link is not known dead.
    pub fn is_timeout(&self) -> bool {
        matches!(self, Measurement::Timeout)
    }

    /// `true` when the link is known dead.
    pub fn is_unreachable(&self) -> bool {
        matches!(self, Measurement::Unreachable)
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Measurement::Ok(v) => write!(f, "{v:.3} ms"),
            Measurement::Timeout => f.write_str("timeout"),
            Measurement::Unreachable => f.write_str("unreachable"),
        }
    }
}

/// The injected failure set a [`Prober`](crate::Prober) consults before
/// sending probes. Node indices follow the prober's oracle (for an
/// `EdgeNetwork` matrix, `0` is the origin and `i + 1` is cache
/// `Ec_i`).
///
/// An empty set (the [`Default`]) changes nothing: every probing path
/// behaves exactly as without fault injection.
///
/// # Examples
///
/// ```
/// use ecg_coords::ProbeFaults;
///
/// let faults = ProbeFaults::new().node_down(3).blackhole(1, 5);
/// assert!(faults.link_dead(3, 0)); // any link touching a down node
/// assert!(faults.link_dead(5, 1)); // black-holed pair, either order
/// assert!(!faults.link_dead(1, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProbeFaults {
    down: BTreeSet<usize>,
    blackholes: BTreeSet<(usize, usize)>,
}

impl ProbeFaults {
    /// Creates an empty (fault-free) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a node as crashed: every link touching it is dead.
    pub fn node_down(mut self, node: usize) -> Self {
        self.down.insert(node);
        self
    }

    /// Black-holes the single link between `a` and `b` (both
    /// directions); the endpoints stay reachable over other links.
    pub fn blackhole(mut self, a: usize, b: usize) -> Self {
        self.blackholes.insert((a.min(b), a.max(b)));
        self
    }

    /// `true` if `node` is marked crashed.
    pub fn is_node_down(&self, node: usize) -> bool {
        self.down.contains(&node)
    }

    /// `true` if probing between `a` and `b` cannot succeed: either
    /// endpoint is down, or the pair is black-holed.
    pub fn link_dead(&self, a: usize, b: usize) -> bool {
        self.down.contains(&a)
            || self.down.contains(&b)
            || self.blackholes.contains(&(a.min(b), a.max(b)))
    }

    /// `true` when no faults are injected.
    pub fn is_empty(&self) -> bool {
        self.down.is_empty() && self.blackholes.is_empty()
    }

    /// The crashed nodes, ascending.
    pub fn down_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.down.iter().copied()
    }

    /// Number of black-holed links.
    pub fn blackhole_count(&self) -> usize {
        self.blackholes.len()
    }
}

/// Bounded-retry policy with a deterministic exponential backoff clock.
///
/// The backoff is *virtual*: [`RetryPolicy::backoff_before_ms`] is the
/// wait a real deployment would sleep before the given attempt, and the
/// prober accounts the total in [`Prober::backoff_ms`](crate::Prober::backoff_ms)
/// without ever touching wall-clock time.
///
/// # Examples
///
/// ```
/// use ecg_coords::RetryPolicy;
///
/// let policy = RetryPolicy::default(); // 2 retries, 50 ms base, ×2
/// assert_eq!(policy.backoff_before_ms(1), 50);
/// assert_eq!(policy.backoff_before_ms(2), 100);
/// assert_eq!(RetryPolicy::none().max_retries(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_retries: u32,
    base_backoff_ms: u64,
    multiplier: u64,
}

impl Default for RetryPolicy {
    /// Two retries, 50 ms base backoff, doubling per attempt.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 50,
            multiplier: 2,
        }
    }
}

impl RetryPolicy {
    /// Creates the default policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// A policy that never retries (first attempt only).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff_ms: 0,
            multiplier: 1,
        }
    }

    /// Sets the number of retries after the initial attempt.
    pub fn retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the backoff before the first retry, in virtual
    /// milliseconds.
    pub fn base_backoff_ms(mut self, ms: u64) -> Self {
        self.base_backoff_ms = ms;
        self
    }

    /// Sets the backoff growth factor per retry.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier == 0`.
    pub fn multiplier(mut self, multiplier: u64) -> Self {
        assert!(multiplier > 0, "backoff multiplier must be positive");
        self.multiplier = multiplier;
        self
    }

    /// Number of retries after the initial attempt.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// The virtual backoff slept before retry `attempt` (1-based):
    /// `base × multiplier^(attempt-1)`, saturating.
    ///
    /// # Panics
    ///
    /// Panics if `attempt == 0` (the initial attempt has no backoff).
    pub fn backoff_before_ms(&self, attempt: u32) -> u64 {
        assert!(attempt > 0, "attempt is 1-based");
        self.multiplier
            .saturating_pow(attempt - 1)
            .saturating_mul(self.base_backoff_ms)
    }

    /// Total virtual backoff if every retry is exhausted.
    pub fn total_backoff_ms(&self) -> u64 {
        (1..=self.max_retries).fold(0u64, |acc, a| acc.saturating_add(self.backoff_before_ms(a)))
    }
}

/// Per-cell observation flags for a
/// [`FeatureMatrix`](crate::FeatureMatrix): cell `(i, j)` is `true`
/// when row `i`'s component `j` holds a real measurement and `false`
/// when it holds a placeholder (the measurement timed out or the
/// target was unreachable after retries).
///
/// # Examples
///
/// ```
/// use ecg_coords::FeatureMask;
///
/// let mut mask = FeatureMask::all_observed(2, 3);
/// assert!(mask.is_fully_observed());
/// mask.set(1, 2, false);
/// assert_eq!(mask.observed_count(1), 2);
/// assert!(!mask.is_fully_observed());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureMask {
    cells: Vec<bool>,
    dim: usize,
}

impl FeatureMask {
    /// An empty mask over `dim`-component rows.
    pub fn new(dim: usize) -> Self {
        FeatureMask {
            cells: Vec::new(),
            dim,
        }
    }

    /// A fully-observed `rows × dim` mask.
    pub fn all_observed(rows: usize, dim: usize) -> Self {
        FeatureMask {
            cells: vec![true; rows * dim],
            dim,
        }
    }

    /// Appends one row of flags.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim`.
    pub fn push_row(&mut self, row: &[bool]) {
        assert_eq!(row.len(), self.dim, "mask row has wrong dimension");
        self.cells.extend_from_slice(row);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.cells.len().checked_div(self.dim).unwrap_or(0)
    }

    /// `true` when the mask holds no rows.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Components per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One row of flags.
    pub fn row(&self, i: usize) -> &[bool] {
        &self.cells[i * self.dim..(i + 1) * self.dim]
    }

    /// Whether cell `(i, j)` holds a real measurement.
    pub fn is_observed(&self, i: usize, j: usize) -> bool {
        self.cells[i * self.dim + j]
    }

    /// Sets cell `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, observed: bool) {
        self.cells[i * self.dim + j] = observed;
    }

    /// Number of observed components in row `i`.
    pub fn observed_count(&self, i: usize) -> usize {
        self.row(i).iter().filter(|&&o| o).count()
    }

    /// `true` when every cell is observed — the healthy-path fast case.
    pub fn is_fully_observed(&self) -> bool {
        self.cells.iter().all(|&o| o)
    }

    /// Total number of unobserved (masked) cells.
    pub fn masked_cells(&self) -> usize {
        self.cells.iter().filter(|&&o| !o).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_accessors() {
        assert_eq!(Measurement::Ok(3.5).value(), Some(3.5));
        assert_eq!(Measurement::Timeout.value(), None);
        assert_eq!(Measurement::Unreachable.value_or(9.0), 9.0);
        assert!(Measurement::Ok(1.0).is_ok());
        assert!(Measurement::Timeout.is_timeout());
        assert!(Measurement::Unreachable.is_unreachable());
        assert_eq!(Measurement::Timeout.to_string(), "timeout");
        assert!(Measurement::Ok(2.0).to_string().contains("2.000"));
    }

    #[test]
    fn faults_mark_links_dead() {
        let f = ProbeFaults::new().node_down(2).blackhole(4, 1);
        assert!(f.is_node_down(2));
        assert!(!f.is_node_down(1));
        assert!(f.link_dead(2, 5));
        assert!(f.link_dead(5, 2));
        assert!(f.link_dead(1, 4));
        assert!(f.link_dead(4, 1));
        assert!(!f.link_dead(1, 3));
        assert!(!f.is_empty());
        assert_eq!(f.down_nodes().collect::<Vec<_>>(), vec![2]);
        assert_eq!(f.blackhole_count(), 1);
        assert!(ProbeFaults::default().is_empty());
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::new()
            .retries(3)
            .base_backoff_ms(10)
            .multiplier(3);
        assert_eq!(p.backoff_before_ms(1), 10);
        assert_eq!(p.backoff_before_ms(2), 30);
        assert_eq!(p.backoff_before_ms(3), 90);
        assert_eq!(p.total_backoff_ms(), 130);
        assert_eq!(RetryPolicy::none().total_backoff_ms(), 0);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn backoff_of_attempt_zero_panics() {
        let _ = RetryPolicy::default().backoff_before_ms(0);
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn zero_multiplier_rejected() {
        let _ = RetryPolicy::default().multiplier(0);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let p = RetryPolicy::new()
            .retries(200)
            .base_backoff_ms(u64::MAX)
            .multiplier(2);
        assert_eq!(p.backoff_before_ms(100), u64::MAX);
        assert_eq!(p.total_backoff_ms(), u64::MAX);
    }

    #[test]
    fn mask_tracks_cells() {
        let mut m = FeatureMask::new(2);
        assert!(m.is_empty());
        m.push_row(&[true, false]);
        m.push_row(&[true, true]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.dim(), 2);
        assert!(m.is_observed(0, 0));
        assert!(!m.is_observed(0, 1));
        assert_eq!(m.observed_count(0), 1);
        assert_eq!(m.masked_cells(), 1);
        assert!(!m.is_fully_observed());
        m.set(0, 1, true);
        assert!(m.is_fully_observed());
        assert_eq!(m.row(1), &[true, true]);
    }

    #[test]
    fn all_observed_constructor() {
        let m = FeatureMask::all_observed(3, 4);
        assert_eq!(m.len(), 3);
        assert!(m.is_fully_observed());
        assert_eq!(m.masked_cells(), 0);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn wrong_row_width_panics() {
        let mut m = FeatureMask::new(3);
        m.push_row(&[true]);
    }
}
