//! Quality metrics for position representations.
//!
//! Used by the experiment harness to report how faithfully feature
//! vectors, GNP coordinates, and Vivaldi coordinates preserve the
//! underlying RTT space.

use crate::feature::FeatureVector;

/// Summary statistics of a sample of non-negative errors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum observed value.
    pub max: f64,
}

impl ErrorStats {
    /// Computes stats over a sample; returns the zero stats for an empty
    /// sample.
    pub fn from_samples(samples: &[f64]) -> ErrorStats {
        if samples.is_empty() {
            return ErrorStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("errors are not NaN"));
        let pct = |p: f64| -> f64 {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        };
        ErrorStats {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            median: pct(0.5),
            p90: pct(0.9),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Relative error of pairwise feature-vector distances against ground
/// truth RTTs: `|l2(i, j) - rtt(i, j)| / rtt(i, j)` over all pairs with
/// positive RTT.
///
/// Note the paper's point (§5.2): feature-vector L2 distances do *not*
/// need to approximate RTTs well for clustering to work — they only need
/// to preserve relative proximity. This metric quantifies the gap.
pub fn feature_vector_distance_error(
    vectors: &[FeatureVector],
    truth: impl Fn(usize, usize) -> f64,
) -> ErrorStats {
    let mut samples = Vec::new();
    for i in 0..vectors.len() {
        for j in (i + 1)..vectors.len() {
            let t = truth(i, j);
            if t > f64::EPSILON {
                samples.push((vectors[i].l2_distance(&vectors[j]) - t).abs() / t);
            }
        }
    }
    ErrorStats::from_samples(&samples)
}

/// Fraction of node triples `(i, j, k)` whose *proximity order* is
/// preserved: if `rtt(i, j) < rtt(i, k)` then `d(i, j) < d(i, k)` for the
/// representation's distance `d`.
///
/// This is the property clustering actually relies on. Sampled
/// exhaustively; for `n` nodes the cost is `O(n^3)`, fine at experiment
/// scale.
pub fn proximity_order_preservation(
    n: usize,
    rep_distance: impl Fn(usize, usize) -> f64,
    truth: impl Fn(usize, usize) -> f64,
) -> f64 {
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                if i == j || i == k || j == k {
                    continue;
                }
                let (tj, tk) = (truth(i, j), truth(i, k));
                if (tj - tk).abs() < f64::EPSILON {
                    continue;
                }
                total += 1;
                let (dj, dk) = (rep_distance(i, j), rep_distance(i, k));
                if (tj < tk) == (dj < dk) {
                    agree += 1;
                }
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        agree as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_stats_on_known_sample() {
        let s = ErrorStats::from_samples(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p90, 4.0);
    }

    #[test]
    fn error_stats_empty_sample() {
        assert_eq!(ErrorStats::from_samples(&[]), ErrorStats::default());
    }

    #[test]
    fn identical_representation_has_zero_error() {
        // Feature vectors = 1-D coordinates on a line; truth = |a - b|.
        let coords = [0.0, 3.0, 7.0, 20.0];
        let vectors: Vec<FeatureVector> = coords
            .iter()
            .map(|&c| FeatureVector::new(vec![c]))
            .collect();
        let stats = feature_vector_distance_error(&vectors, |i, j| (coords[i] - coords[j]).abs());
        assert!(stats.mean < 1e-12);
        assert!(stats.max < 1e-12);
    }

    #[test]
    fn order_preservation_perfect_for_identity() {
        let coords = [0.0f64, 1.0, 5.0, 9.0];
        let d = |i: usize, j: usize| (coords[i] - coords[j]).abs();
        assert_eq!(proximity_order_preservation(4, d, d), 1.0);
    }

    #[test]
    fn order_preservation_detects_inversion() {
        let coords = [0.0f64, 1.0, 5.0, 9.0];
        let truth = |i: usize, j: usize| (coords[i] - coords[j]).abs();
        // A representation that inverts the order agrees on ~nothing.
        let inverted = |i: usize, j: usize| 100.0 - truth(i, j);
        let frac = proximity_order_preservation(4, inverted, truth);
        assert!(frac < 0.1, "got {frac}");
    }

    #[test]
    fn order_preservation_trivial_when_no_comparable_triples() {
        // All distances equal: no strict orderings to preserve.
        let frac = proximity_order_preservation(3, |_, _| 1.0, |_, _| 1.0);
        assert_eq!(frac, 1.0);
    }
}
