//! Lane-transposed tiles of a [`FeatureMatrix`] for blocked distance
//! kernels.
//!
//! The K-means assignment scan is a point × center distance kernel. With
//! row-major centers the inner loop walks one center row at a time and
//! the compiler cannot vectorize across centers without reassociating
//! the per-pair f64 sum (which would change results bit for bit).
//! [`CenterTiles`] stores the *transpose* in fixed-width lanes instead:
//! tile `t` holds centers `t·W .. t·W + W` (`W` = [`LANE_WIDTH`]) as
//! `dim` consecutive rows of `W` values, one row per coordinate. A scan
//! then keeps `W` independent per-center accumulators and walks the
//! coordinate dimension in order:
//!
//! ```text
//! for d in 0..dim:            // outer: coordinate, in order
//!     for lane in 0..W:       // inner: contiguous, vectorizes
//!         acc[lane] += (p[d] - tile[d*W + lane])²
//! ```
//!
//! Each accumulator receives exactly the additions the scalar
//! `Σ (x−y)²` would, in the same order, so per-pair distances are
//! **bit-identical** to the naive kernel — the vectorization happens
//! *across centers*, never across the summation chain. The whole tile
//! block (`k × dim` doubles) is contiguous and small enough to stay in
//! L1/L2 while thousands of points stream over it.
//!
//! Padding lanes in the final tile are zero-filled; consumers bound
//! their lane loop with [`CenterTiles::lanes_in_tile`] so padding never
//! participates in a comparison.
//!
//! This layout is a small contract of its own: `ecg-clustering`'s
//! KD-tree over centers stores each *leaf* as one tile in exactly this
//! shape, so a leaf scan runs the identical kernel (same accumulation
//! order, same padding rule) on a subset of centers and stays
//! bit-identical to the flat blocked scan.

use crate::matrix::FeatureMatrix;

/// Number of centers per tile. Eight f64 lanes span two AVX2 or one
/// AVX-512 vector — wide enough to saturate the FP units, small enough
/// that the accumulator block stays in registers.
pub const LANE_WIDTH: usize = 8;

/// A lane-transposed, tile-major copy of a center matrix (see the
/// module docs for the layout and the bit-exactness argument).
///
/// # Examples
///
/// ```
/// use ecg_coords::{CenterTiles, FeatureMatrix, LANE_WIDTH};
///
/// let centers = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let tiles = CenterTiles::new(&centers);
/// assert_eq!(tiles.centers(), 2);
/// assert_eq!(tiles.tile_count(), 1);
/// assert_eq!(tiles.lanes_in_tile(0), 2);
/// // Coordinate 0 of both centers sits in the first lane row.
/// assert_eq!(&tiles.tile(0)[..2], &[1.0, 3.0]);
/// // Coordinate 1 follows in the next lane row.
/// assert_eq!(&tiles.tile(0)[LANE_WIDTH..LANE_WIDTH + 2], &[2.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CenterTiles {
    data: Vec<f64>,
    centers: usize,
    dim: usize,
}

impl CenterTiles {
    /// Builds tiles from `centers`.
    pub fn new(centers: &FeatureMatrix) -> Self {
        let mut tiles = CenterTiles {
            data: Vec::new(),
            centers: 0,
            dim: centers.dim(),
        };
        tiles.refill(centers);
        tiles
    }

    /// Rebuilds the tiles from a (possibly moved) center matrix, reusing
    /// the allocation — the Lloyd loop calls this once per iteration.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension changed since construction.
    pub fn refill(&mut self, centers: &FeatureMatrix) {
        assert_eq!(
            centers.dim(),
            self.dim,
            "center dimension changed between refills"
        );
        self.centers = centers.len();
        let tile_len = self.dim * LANE_WIDTH;
        self.data.clear();
        self.data.resize(self.tile_count() * tile_len, 0.0);
        for (c, row) in centers.iter_rows().enumerate() {
            let tile = c / LANE_WIDTH;
            let lane = c % LANE_WIDTH;
            let base = tile * tile_len + lane;
            for (d, &v) in row.iter().enumerate() {
                self.data[base + d * LANE_WIDTH] = v;
            }
        }
    }

    /// Number of centers represented.
    #[inline]
    pub fn centers(&self) -> usize {
        self.centers
    }

    /// Coordinate dimension of every center.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of tiles ([`LANE_WIDTH`] centers each, last may be
    /// partial).
    #[inline]
    pub fn tile_count(&self) -> usize {
        self.centers.div_ceil(LANE_WIDTH)
    }

    /// Real (non-padding) lanes in tile `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[inline]
    pub fn lanes_in_tile(&self, t: usize) -> usize {
        assert!(t < self.tile_count(), "tile index out of range");
        LANE_WIDTH.min(self.centers - t * LANE_WIDTH)
    }

    /// Tile `t` as a flat slice of `dim * LANE_WIDTH` values: coordinate
    /// `d` of lane `l` is at `d * LANE_WIDTH + l`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[inline]
    pub fn tile(&self, t: usize) -> &[f64] {
        let tile_len = self.dim * LANE_WIDTH;
        &self.data[t * tile_len..(t + 1) * tile_len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_round_trips() {
        let mut m = FeatureMatrix::new(3);
        for c in 0..LANE_WIDTH + 3 {
            m.push_row(&[c as f64, c as f64 + 0.5, -(c as f64)]);
        }
        let tiles = CenterTiles::new(&m);
        assert_eq!(tiles.centers(), LANE_WIDTH + 3);
        assert_eq!(tiles.tile_count(), 2);
        assert_eq!(tiles.lanes_in_tile(0), LANE_WIDTH);
        assert_eq!(tiles.lanes_in_tile(1), 3);
        for c in 0..tiles.centers() {
            let tile = tiles.tile(c / LANE_WIDTH);
            let lane = c % LANE_WIDTH;
            for d in 0..3 {
                assert_eq!(tile[d * LANE_WIDTH + lane], m.row(c)[d], "c={c} d={d}");
            }
        }
    }

    #[test]
    fn refill_tracks_center_movement_and_count() {
        let mut m = FeatureMatrix::from_rows(&[vec![1.0], vec![2.0]]);
        let mut tiles = CenterTiles::new(&m);
        m.row_mut(1)[0] = 9.0;
        m.push_row(&[4.0]);
        tiles.refill(&m);
        assert_eq!(tiles.centers(), 3);
        assert_eq!(&tiles.tile(0)[..3], &[1.0, 9.0, 4.0]);
        // Padding lanes are zeroed, not stale.
        assert_eq!(&tiles.tile(0)[3..], &[0.0; LANE_WIDTH - 3]);
    }

    #[test]
    #[should_panic(expected = "dimension changed")]
    fn dim_change_rejected() {
        let mut tiles = CenterTiles::new(&FeatureMatrix::from_rows(&[vec![1.0, 2.0]]));
        tiles.refill(&FeatureMatrix::from_rows(&[vec![1.0]]));
    }

    #[test]
    fn empty_matrix_is_fine() {
        let tiles = CenterTiles::new(&FeatureMatrix::new(4));
        assert_eq!(tiles.centers(), 0);
        assert_eq!(tiles.tile_count(), 0);
    }
}
