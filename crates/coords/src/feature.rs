//! Landmark feature vectors.
//!
//! The SL scheme represents each node's position as the vector of its
//! measured RTTs to the landmark set — "a simple feature vector
//! representation wherein the feature vector of a cache `Ec_j` contains
//! the network distance values between the cache and various landmark
//! points" (§3.2). Positional dissimilarity between two nodes is the L2
//! distance between their feature vectors.

use crate::matrix::FeatureMatrix;
use crate::probe::Prober;
use crate::resilience::{FeatureMask, RetryPolicy};
use ecg_obs::Obs;
use rand::Rng;
use std::fmt;
use std::ops::Index;

/// A node's measured RTTs to each landmark, in landmark order.
///
/// # Examples
///
/// ```
/// use ecg_coords::FeatureVector;
///
/// let a = FeatureVector::new(vec![3.0, 4.0]);
/// let b = FeatureVector::new(vec![0.0, 0.0]);
/// assert_eq!(a.l2_distance(&b), 5.0);
/// assert_eq!(a.dim(), 2);
/// assert_eq!(a[1], 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureVector {
    values: Vec<f64>,
}

impl FeatureVector {
    /// Wraps measured landmark RTTs as a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or not finite.
    pub fn new(values: Vec<f64>) -> Self {
        for &v in &values {
            assert!(
                v.is_finite() && v >= 0.0,
                "feature components must be finite and non-negative, got {v}"
            );
        }
        FeatureVector { values }
    }

    /// Number of landmarks the vector spans.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` for the zero-dimensional vector.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw component slice, in landmark order.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Euclidean (L2) distance to another feature vector — the paper's
    /// positional-dissimilarity measure.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn l2_distance(&self, other: &FeatureVector) -> f64 {
        assert_eq!(
            self.dim(),
            other.dim(),
            "feature vectors must share a landmark set"
        );
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Component-wise mean of a non-empty set of vectors — the cluster
    /// centroid computation K-means uses.
    ///
    /// Returns `None` if `vectors` is empty.
    ///
    /// # Panics
    ///
    /// Panics if the vectors disagree on dimension.
    pub fn mean<'a, I>(vectors: I) -> Option<FeatureVector>
    where
        I: IntoIterator<Item = &'a FeatureVector>,
    {
        let mut acc = Vec::new();
        FeatureVector::mean_into(vectors, &mut acc).then_some(FeatureVector { values: acc })
    }

    /// Accumulates the component-wise mean into a caller-provided buffer
    /// (cleared and resized as needed), avoiding the per-call allocation
    /// of [`FeatureVector::mean`]. Returns `false` (leaving `acc` empty)
    /// if `vectors` is empty.
    ///
    /// # Panics
    ///
    /// Panics if the vectors disagree on dimension.
    pub fn mean_into<'a, I>(vectors: I, acc: &mut Vec<f64>) -> bool
    where
        I: IntoIterator<Item = &'a FeatureVector>,
    {
        acc.clear();
        let mut iter = vectors.into_iter();
        let Some(first) = iter.next() else {
            return false;
        };
        acc.extend_from_slice(&first.values);
        let mut count = 1usize;
        for v in iter {
            assert_eq!(v.dim(), acc.len(), "mixed dimensions in mean");
            for (a, b) in acc.iter_mut().zip(&v.values) {
                *a += b;
            }
            count += 1;
        }
        for a in acc.iter_mut() {
            *a /= count as f64;
        }
        true
    }
}

impl Index<usize> for FeatureVector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

impl From<Vec<f64>> for FeatureVector {
    fn from(values: Vec<f64>) -> Self {
        FeatureVector::new(values)
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.1}")?;
        }
        write!(f, "]")
    }
}

/// Builds the feature vector of every node in `nodes` by probing each
/// landmark through `prober` (§3.2 of the paper, step 2 of both schemes).
///
/// Returned vectors are in `nodes` order; component `k` of a vector is the
/// measured RTT to `landmarks[k]`. A node that is itself a landmark
/// measures distance zero to itself, exactly as in Figure 2 of the paper.
pub fn build_feature_vectors<R: Rng + ?Sized>(
    prober: &Prober<'_>,
    nodes: &[usize],
    landmarks: &[usize],
    rng: &mut R,
) -> Vec<FeatureVector> {
    nodes
        .iter()
        .map(|&node| FeatureVector::new(prober.measure_all(node, landmarks, rng)))
        .collect()
}

/// Flat-storage variant of [`build_feature_vectors`]: probes the same
/// measurements in the same order (so a shared RNG stream is consumed
/// identically), but packs every node's row straight into one
/// [`FeatureMatrix`] instead of allocating a `FeatureVector` per node.
///
/// Row `i` of the result is node `nodes[i]`'s measured RTTs to each
/// landmark, in landmark order.
///
/// # Panics
///
/// Panics if a measurement comes back negative or non-finite (the same
/// validation [`FeatureVector::new`] applies).
pub fn build_feature_matrix<R: Rng + ?Sized>(
    prober: &Prober<'_>,
    nodes: &[usize],
    landmarks: &[usize],
    rng: &mut R,
) -> FeatureMatrix {
    let mut matrix = FeatureMatrix::with_capacity(nodes.len(), landmarks.len());
    let mut row = Vec::with_capacity(landmarks.len());
    for &node in nodes {
        prober.measure_all_into(node, landmarks, rng, &mut row);
        for &v in &row {
            assert!(
                v.is_finite() && v >= 0.0,
                "feature components must be finite and non-negative, got {v}"
            );
        }
        matrix.push_row(&row);
    }
    matrix
}

/// Failure-aware variant of [`build_feature_matrix`]: measures every
/// cell with bounded retries and reports which cells were actually
/// observed instead of averaging timeout sentinels into the features.
///
/// Cells whose measurement failed after retries (timeout or
/// unreachable) hold a `0.0` placeholder in the matrix and `false` in
/// the returned [`FeatureMask`]; masked K-means
/// (`ecg_clustering::kmeans_masked`) clusters on the observed cells
/// only. On the healthy path (nothing times out) the first attempt of
/// every cell consumes the shared RNG exactly like
/// [`build_feature_matrix`], so the matrix is bit-identical to the
/// non-resilient builder and the mask is fully observed.
pub fn build_feature_matrix_resilient<R: Rng + ?Sized>(
    prober: &Prober<'_>,
    nodes: &[usize],
    landmarks: &[usize],
    policy: &RetryPolicy,
    rng: &mut R,
) -> (FeatureMatrix, FeatureMask) {
    build_feature_matrix_resilient_observed(prober, nodes, landmarks, policy, rng, None)
}

/// Like [`build_feature_matrix_resilient`], but records every probe
/// attempt and retry into an observability bundle when one is supplied
/// (see [`Prober::measure_retry_observed`]). Instrumentation never
/// draws from the RNG.
pub fn build_feature_matrix_resilient_observed<R: Rng + ?Sized>(
    prober: &Prober<'_>,
    nodes: &[usize],
    landmarks: &[usize],
    policy: &RetryPolicy,
    rng: &mut R,
    mut obs: Option<&mut Obs>,
) -> (FeatureMatrix, FeatureMask) {
    let dim = landmarks.len();
    let mut matrix = FeatureMatrix::with_capacity(nodes.len(), dim);
    let mut mask = FeatureMask::new(dim);
    let mut row = Vec::with_capacity(dim);
    let mut row_mask = Vec::with_capacity(dim);
    for &node in nodes {
        row.clear();
        row_mask.clear();
        for &lm in landmarks {
            match prober
                .measure_retry_observed(node, lm, policy, rng, obs.as_deref_mut())
                .value()
            {
                Some(v) => {
                    assert!(
                        v.is_finite() && v >= 0.0,
                        "feature components must be finite and non-negative, got {v}"
                    );
                    row.push(v);
                    row_mask.push(true);
                }
                None => {
                    row.push(0.0);
                    row_mask.push(false);
                }
            }
        }
        matrix.push_row(&row);
        mask.push_row(&row_mask);
    }
    (matrix, mask)
}

/// Parallel, thread-count-invariant variant of [`build_feature_matrix`]
/// for the large-N scaling path.
///
/// Instead of threading one shared RNG stream through every probe (which
/// would serialize the measurements), this draws a single master seed
/// from `rng` and gives each node its own derived stream
/// ([`ecg_par::derive_seed`] on the node's position in `nodes`). Rows
/// are then probed on [`ecg_par`] workers over fixed chunk boundaries
/// and reassembled in `nodes` order, so the result depends only on
/// `(rng state, nodes, landmarks, prober config)` — never on
/// `ECG_THREADS` or scheduling.
///
/// The measurements are **not** stream-compatible with
/// [`build_feature_matrix`]: the sequential builder remains the default
/// so historical experiment outputs stay byte-identical; this variant is
/// for new large-N runs where per-node streams are the spec.
///
/// # Panics
///
/// Panics if a measurement comes back negative or non-finite.
pub fn build_feature_matrix_par<R: Rng + ?Sized>(
    prober: &Prober<'_>,
    nodes: &[usize],
    landmarks: &[usize],
    rng: &mut R,
) -> FeatureMatrix {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let master: u64 = rng.gen();
    let dim = landmarks.len();
    let mut matrix = FeatureMatrix::with_capacity(nodes.len(), dim);
    if dim == 0 {
        for _ in nodes {
            matrix.push_row(&[]);
        }
        return matrix;
    }
    let chunks: Vec<Vec<f64>> = ecg_par::par_chunk_map(nodes.len(), |range| {
        let mut flat = Vec::with_capacity(range.len() * dim);
        let mut row = Vec::with_capacity(dim);
        for i in range {
            let mut node_rng = StdRng::seed_from_u64(ecg_par::derive_seed(master, i as u64));
            prober.measure_all_into(nodes[i], landmarks, &mut node_rng, &mut row);
            for &v in &row {
                assert!(
                    v.is_finite() && v >= 0.0,
                    "feature components must be finite and non-negative, got {v}"
                );
            }
            flat.extend_from_slice(&row);
        }
        flat
    });
    for flat in &chunks {
        for row in flat.chunks(dim) {
            matrix.push_row(row);
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeConfig;
    use ecg_topology::fixtures::paper_figure1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn l2_distance_matches_pythagoras() {
        let a = FeatureVector::new(vec![1.0, 2.0, 2.0]);
        let b = FeatureVector::new(vec![1.0, 0.0, 0.0]);
        assert!((a.l2_distance(&b) - 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = FeatureVector::new(vec![5.0, 1.0]);
        let b = FeatureVector::new(vec![2.0, 9.0]);
        assert_eq!(a.l2_distance(&b), b.l2_distance(&a));
        assert_eq!(a.l2_distance(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "landmark set")]
    fn mismatched_dims_panic() {
        let a = FeatureVector::new(vec![1.0]);
        let b = FeatureVector::new(vec![1.0, 2.0]);
        let _ = a.l2_distance(&b);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_component() {
        let _ = FeatureVector::new(vec![f64::NAN]);
    }

    #[test]
    fn mean_averages_componentwise() {
        let vs = [
            FeatureVector::new(vec![0.0, 4.0]),
            FeatureVector::new(vec![2.0, 0.0]),
            FeatureVector::new(vec![4.0, 2.0]),
        ];
        let m = FeatureVector::mean(vs.iter()).unwrap();
        assert_eq!(m.as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(FeatureVector::mean([].iter()), None);
    }

    #[test]
    fn feature_vectors_match_paper_figure2() {
        // With noiseless probing and landmarks {Os, Ec0, Ec4} (matrix
        // indices 0, 1, 5), Ec1's feature vector is its RTT row to those
        // landmarks: (8.0, 4.0, 17.0).
        let m = paper_figure1();
        let prober = Prober::new(&m, ProbeConfig::noiseless());
        let mut rng = StdRng::seed_from_u64(0);
        let landmarks = [0usize, 1, 5];
        let nodes: Vec<usize> = (1..7).collect();
        let fvs = build_feature_vectors(&prober, &nodes, &landmarks, &mut rng);
        assert_eq!(fvs.len(), 6);
        // Ec0 (matrix index 1) is itself a landmark: zero in slot 1.
        assert_eq!(fvs[0].as_slice(), &[12.0, 0.0, 17.0]);
        // Ec1 (matrix index 2): 8.0 to Os, 4.0 to Ec0, 14.4 to Ec4.
        assert_eq!(fvs[1].as_slice(), &[8.0, 4.0, 14.4]);
        // Ec4 (matrix index 5) is a landmark too.
        assert_eq!(fvs[4].as_slice(), &[12.0, 17.0, 0.0]);
    }

    #[test]
    fn matrix_matches_vectors_measurement_for_measurement() {
        // Same seed, noisy probing: the flat builder must consume the
        // RNG identically, so the rows are bit-identical.
        let m = paper_figure1();
        let prober = Prober::new(&m, ProbeConfig::default());
        let landmarks = [0usize, 1, 5];
        let nodes: Vec<usize> = (1..7).collect();
        let mut rng_a = StdRng::seed_from_u64(31);
        let fvs = build_feature_vectors(&prober, &nodes, &landmarks, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(31);
        let fm = build_feature_matrix(&prober, &nodes, &landmarks, &mut rng_b);
        assert_eq!(fm.len(), fvs.len());
        assert_eq!(fm.dim(), 3);
        for (i, fv) in fvs.iter().enumerate() {
            assert_eq!(fm.row(i), fv.as_slice());
        }
    }

    #[test]
    fn mean_into_reuses_buffer_and_matches_mean() {
        let vs = [
            FeatureVector::new(vec![0.0, 4.0]),
            FeatureVector::new(vec![2.0, 0.0]),
        ];
        let mut buf = vec![99.0; 7];
        assert!(FeatureVector::mean_into(vs.iter(), &mut buf));
        assert_eq!(buf, vec![1.0, 2.0]);
        assert!(!FeatureVector::mean_into([].iter(), &mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn par_matrix_noiseless_matches_truth() {
        // With noiseless probing the per-node RNG streams are never
        // consulted, so the parallel builder must reproduce the exact
        // truth rows of the sequential one.
        let m = paper_figure1();
        let prober = Prober::new(&m, ProbeConfig::noiseless());
        let landmarks = [0usize, 1, 5];
        let nodes: Vec<usize> = (1..7).collect();
        let seq = build_feature_matrix(&prober, &nodes, &landmarks, &mut StdRng::seed_from_u64(9));
        let par =
            build_feature_matrix_par(&prober, &nodes, &landmarks, &mut StdRng::seed_from_u64(9));
        assert_eq!(par.len(), seq.len());
        for i in 0..seq.len() {
            assert_eq!(par.row(i), seq.row(i));
        }
    }

    #[test]
    fn par_matrix_is_thread_count_invariant() {
        // Noisy probing, forced thread counts: the rows must be
        // bit-identical because every node has its own derived stream
        // and chunk boundaries ignore the worker count.
        let m = paper_figure1();
        let prober = Prober::new(&m, ProbeConfig::default().noise_sigma(0.2));
        let landmarks = [0usize, 1, 5];
        let nodes: Vec<usize> = (1..7).collect();
        let build = |threads| {
            ecg_par::set_max_threads(Some(threads));
            let fm = build_feature_matrix_par(
                &prober,
                &nodes,
                &landmarks,
                &mut StdRng::seed_from_u64(77),
            );
            ecg_par::set_max_threads(None);
            fm
        };
        let one = build(1);
        let four = build(4);
        assert_eq!(one.len(), four.len());
        for i in 0..one.len() {
            let (a, b) = (one.row(i), four.row(i));
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {i}");
            }
        }
    }

    #[test]
    fn resilient_matrix_matches_plain_on_the_healthy_path() {
        // Noisy probing, zero loss, no faults: the resilient builder
        // must consume the shared RNG identically and mask nothing.
        let m = paper_figure1();
        let prober = Prober::new(&m, ProbeConfig::default());
        let landmarks = [0usize, 1, 5];
        let nodes: Vec<usize> = (1..7).collect();
        let plain =
            build_feature_matrix(&prober, &nodes, &landmarks, &mut StdRng::seed_from_u64(13));
        let (resilient, mask) = build_feature_matrix_resilient(
            &prober,
            &nodes,
            &landmarks,
            &RetryPolicy::default(),
            &mut StdRng::seed_from_u64(13),
        );
        assert!(mask.is_fully_observed());
        assert_eq!(resilient.len(), plain.len());
        for i in 0..plain.len() {
            assert_eq!(resilient.row(i), plain.row(i), "row {i}");
        }
    }

    #[test]
    fn resilient_matrix_masks_dead_landmark_column() {
        use crate::resilience::ProbeFaults;
        // Landmark node 5 is crashed: its column must be masked for
        // every probing node, with 0.0 placeholders, and node 5's own
        // row (it cannot probe at all) must be fully masked except the
        // free self-measurement.
        let m = paper_figure1();
        let faults = ProbeFaults::new().node_down(5);
        let prober = Prober::with_faults(&m, ProbeConfig::noiseless(), faults);
        let landmarks = [0usize, 1, 5];
        let nodes: Vec<usize> = (1..7).collect();
        let (fm, mask) = build_feature_matrix_resilient(
            &prober,
            &nodes,
            &landmarks,
            &RetryPolicy::default(),
            &mut StdRng::seed_from_u64(0),
        );
        for (i, &node) in nodes.iter().enumerate() {
            if node == 5 {
                // Self-probe is free and observed even for a down node.
                assert_eq!(mask.row(i), &[false, false, true]);
                assert_eq!(fm.row(i), &[0.0, 0.0, 0.0]);
            } else {
                assert_eq!(mask.row(i), &[true, true, false], "node {node}");
                assert_eq!(fm.row(i)[2], 0.0);
                assert_eq!(fm.row(i)[0], m.get(node, 0));
            }
        }
    }

    #[test]
    fn resilient_matrix_observed_matches_plain_variant() {
        let m = paper_figure1();
        let prober = Prober::new(
            &m,
            ProbeConfig::default()
                .probes_per_measurement(2)
                .loss_rate(0.4),
        );
        let landmarks = [0usize, 1, 5];
        let nodes: Vec<usize> = (1..7).collect();
        let policy = RetryPolicy::default();
        let (fm_a, mask_a) = build_feature_matrix_resilient(
            &prober,
            &nodes,
            &landmarks,
            &policy,
            &mut StdRng::seed_from_u64(50),
        );
        let mut obs = Obs::new();
        let (fm_b, mask_b) = build_feature_matrix_resilient_observed(
            &prober,
            &nodes,
            &landmarks,
            &policy,
            &mut StdRng::seed_from_u64(50),
            Some(&mut obs),
        );
        assert_eq!(mask_a, mask_b);
        for i in 0..fm_a.len() {
            assert_eq!(fm_a.row(i), fm_b.row(i));
        }
        assert!(
            obs.metrics.counter("probe.measurements") > 0,
            "attempts recorded"
        );
    }

    #[test]
    fn display_renders_components() {
        let v = FeatureVector::new(vec![1.0, 2.5]);
        assert_eq!(v.to_string(), "[1.0, 2.5]");
    }

    #[test]
    fn indexing_works() {
        let v = FeatureVector::from(vec![7.0, 8.0]);
        assert_eq!(v[0], 7.0);
    }
}
