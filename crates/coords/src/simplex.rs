//! Nelder–Mead downhill simplex minimization.
//!
//! GNP (Ng & Zhang, INFOCOM '02) solves its coordinate-fitting problems
//! with a generic derivative-free minimizer; the original implementation
//! used the downhill simplex method. This module provides that optimizer
//! for [`crate::gnp`], kept general enough to minimize any
//! `Fn(&[f64]) -> f64`.

/// Options controlling a Nelder–Mead run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexOptions {
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Convergence threshold on the absolute spread between the best and
    /// worst simplex vertex values.
    pub tolerance: f64,
    /// Initial displacement applied per dimension to build the simplex.
    pub initial_step: f64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 2_000,
            tolerance: 1e-9,
            initial_step: 1.0,
        }
    }
}

/// Result of a Nelder–Mead minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexResult {
    /// The best point found.
    pub point: Vec<f64>,
    /// Objective value at `point`.
    pub value: f64,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Minimizes `f` starting from `initial`, returning the best point found.
///
/// Standard Nelder–Mead with reflection 1, expansion 2, contraction ½ and
/// shrink ½. Deterministic: no randomness is used, so results are fully
/// reproducible for a given start point.
///
/// # Panics
///
/// Panics if `initial` is empty or the objective returns NaN at the start
/// simplex.
///
/// # Examples
///
/// ```
/// use ecg_coords::simplex::{minimize, SimplexOptions};
///
/// // Minimize (x-3)^2 + (y+1)^2.
/// let r = minimize(
///     |p| (p[0] - 3.0).powi(2) + (p[1] + 1.0).powi(2),
///     &[0.0, 0.0],
///     SimplexOptions::default(),
/// );
/// assert!(r.converged);
/// assert!((r.point[0] - 3.0).abs() < 1e-4);
/// assert!((r.point[1] + 1.0).abs() < 1e-4);
/// ```
pub fn minimize<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    initial: &[f64],
    options: SimplexOptions,
) -> SimplexResult {
    let dim = initial.len();
    assert!(dim > 0, "cannot minimize over zero dimensions");

    // Build the initial simplex: the start point plus one vertex displaced
    // along each axis.
    let mut vertices: Vec<Vec<f64>> = Vec::with_capacity(dim + 1);
    vertices.push(initial.to_vec());
    for d in 0..dim {
        let mut v = initial.to_vec();
        v[d] += if v[d].abs() > 1e-12 {
            options.initial_step * 0.1 * v[d].abs().max(1.0)
        } else {
            options.initial_step
        };
        vertices.push(v);
    }
    let mut values: Vec<f64> = vertices.iter().map(|v| f(v)).collect();
    assert!(
        values.iter().all(|v| !v.is_nan()),
        "objective returned NaN on the initial simplex"
    );

    let mut iterations = 0;
    let mut converged = false;
    while iterations < options.max_iterations {
        iterations += 1;

        // Order vertices by objective value.
        let mut order: Vec<usize> = (0..=dim).collect();
        order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("no NaN"));
        let best = order[0];
        let worst = order[dim];
        let second_worst = order[dim - 1];

        if (values[worst] - values[best]).abs() <= options.tolerance {
            converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; dim];
        for &i in order.iter().take(dim) {
            for d in 0..dim {
                centroid[d] += vertices[i][d];
            }
        }
        for c in &mut centroid {
            *c /= dim as f64;
        }

        let blend = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
        };

        // Reflection.
        let reflected = blend(&centroid, &vertices[worst], -1.0);
        let fr = f(&reflected);
        if fr < values[best] {
            // Expansion.
            let expanded = blend(&centroid, &vertices[worst], -2.0);
            let fe = f(&expanded);
            if fe < fr {
                vertices[worst] = expanded;
                values[worst] = fe;
            } else {
                vertices[worst] = reflected;
                values[worst] = fr;
            }
        } else if fr < values[second_worst] {
            vertices[worst] = reflected;
            values[worst] = fr;
        } else {
            // Contraction (inside if reflection is no better than worst).
            let towards = if fr < values[worst] { -0.5 } else { 0.5 };
            let contracted = blend(&centroid, &vertices[worst], towards);
            let fc = f(&contracted);
            if fc < values[worst].min(fr) {
                vertices[worst] = contracted;
                values[worst] = fc;
            } else {
                // Shrink everything towards the best vertex.
                let best_v = vertices[best].clone();
                for i in 0..=dim {
                    if i == best {
                        continue;
                    }
                    vertices[i] = blend(&best_v, &vertices[i], 0.5);
                    values[i] = f(&vertices[i]);
                }
            }
        }
    }

    let (best_idx, &value) = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .expect("simplex is non-empty");
    SimplexResult {
        point: vertices[best_idx].clone(),
        value,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let r = minimize(
            |p| p.iter().map(|x| (x - 2.0) * (x - 2.0)).sum(),
            &[10.0, -10.0, 0.0],
            SimplexOptions::default(),
        );
        assert!(r.converged, "did not converge in {} iters", r.iterations);
        for x in r.point {
            assert!((x - 2.0).abs() < 1e-3);
        }
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let rosenbrock = |p: &[f64]| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2);
        let r = minimize(
            rosenbrock,
            &[-1.2, 1.0],
            SimplexOptions {
                max_iterations: 10_000,
                tolerance: 1e-12,
                initial_step: 0.5,
            },
        );
        assert!((r.point[0] - 1.0).abs() < 1e-3, "x = {}", r.point[0]);
        assert!((r.point[1] - 1.0).abs() < 1e-3, "y = {}", r.point[1]);
    }

    #[test]
    fn one_dimensional_works() {
        let r = minimize(|p| (p[0] + 5.0).abs(), &[3.0], SimplexOptions::default());
        assert!((r.point[0] + 5.0).abs() < 1e-3);
    }

    #[test]
    fn respects_iteration_cap() {
        let r = minimize(
            |p| p[0] * p[0],
            &[100.0],
            SimplexOptions {
                max_iterations: 3,
                tolerance: 0.0,
                initial_step: 1.0,
            },
        );
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }

    #[test]
    fn deterministic() {
        let run = || {
            minimize(
                |p| (p[0] - 1.0).powi(2) + (p[1] - 2.0).powi(2),
                &[9.0, 9.0],
                SimplexOptions::default(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "zero dimensions")]
    fn empty_start_panics() {
        let _ = minimize(|_| 0.0, &[], SimplexOptions::default());
    }
}
