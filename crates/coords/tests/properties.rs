//! Property-based tests for the position-estimation crate.

use ecg_coords::simplex::{minimize, SimplexOptions};
use ecg_coords::{build_feature_vectors, FeatureVector, ProbeConfig, Prober};
use ecg_topology::RttMatrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_feature_vector(dim: usize) -> impl Strategy<Value = FeatureVector> {
    proptest::collection::vec(0.0f64..500.0, dim).prop_map(FeatureVector::new)
}

proptest! {
    #[test]
    fn l2_is_a_metric(
        a in arb_feature_vector(4),
        b in arb_feature_vector(4),
        c in arb_feature_vector(4),
    ) {
        // Non-negativity and identity.
        prop_assert!(a.l2_distance(&b) >= 0.0);
        prop_assert!(a.l2_distance(&a) < 1e-12);
        // Symmetry.
        prop_assert!((a.l2_distance(&b) - b.l2_distance(&a)).abs() < 1e-12);
        // Triangle inequality.
        prop_assert!(a.l2_distance(&c) <= a.l2_distance(&b) + b.l2_distance(&c) + 1e-9);
    }

    #[test]
    fn mean_lies_within_componentwise_bounds(
        vs in proptest::collection::vec(arb_feature_vector(3), 1..10)
    ) {
        let mean = FeatureVector::mean(vs.iter()).unwrap();
        for k in 0..3 {
            let lo = vs.iter().map(|v| v[k]).fold(f64::INFINITY, f64::min);
            let hi = vs.iter().map(|v| v[k]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(mean[k] >= lo - 1e-9 && mean[k] <= hi + 1e-9);
        }
    }

    #[test]
    fn noiseless_probing_reproduces_matrix(seed in any::<u64>(), n in 2usize..10) {
        let m = RttMatrix::from_fn(n, |i, j| ((i + 1) * (j + 2)) as f64);
        let prober = Prober::new(&m, ProbeConfig::noiseless());
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(prober.measure(i, j, &mut rng), m.get(i, j));
            }
        }
    }

    #[test]
    fn noisy_probes_are_positive_and_bounded(
        seed in any::<u64>(),
        sigma in 0.0f64..0.5,
    ) {
        let m = RttMatrix::from_fn(4, |i, j| (10 * (i + j)) as f64);
        let prober = Prober::new(
            &m,
            ProbeConfig::default().noise_sigma(sigma).probes_per_measurement(2),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let v = prober.measure(0, 3, &mut rng);
            prop_assert!(v > 0.0);
            prop_assert!(v.is_finite());
            // exp(σz) with |z| < 6 virtually always: generous envelope.
            let truth = m.get(0, 3);
            prop_assert!(v < truth * (6.0 * (sigma + 0.01)).exp());
        }
    }

    #[test]
    fn feature_vectors_have_zero_at_own_landmark_slot(
        seed in any::<u64>(),
        n in 3usize..12,
    ) {
        let m = RttMatrix::from_fn(n, |i, j| (i + j) as f64 * 3.0 + 1.0);
        let prober = Prober::new(&m, ProbeConfig::noiseless());
        let mut rng = StdRng::seed_from_u64(seed);
        let landmarks: Vec<usize> = (0..n.min(3)).collect();
        let nodes: Vec<usize> = (0..n).collect();
        let fvs = build_feature_vectors(&prober, &nodes, &landmarks, &mut rng);
        for (node, fv) in nodes.iter().zip(&fvs) {
            for (slot, lm) in landmarks.iter().enumerate() {
                if node == lm {
                    prop_assert_eq!(fv[slot], 0.0);
                }
            }
        }
    }

    #[test]
    fn simplex_never_worsens_the_start_point(
        start in proptest::collection::vec(-50.0f64..50.0, 1..5),
        target in -10.0f64..10.0,
    ) {
        let f = |p: &[f64]| -> f64 {
            p.iter().map(|x| (x - target) * (x - target)).sum()
        };
        let start_value = f(&start);
        let r = minimize(f, &start, SimplexOptions::default());
        prop_assert!(r.value <= start_value + 1e-12);
    }
}
