//! Edge cache group formation: the SL and SDSL schemes.
//!
//! This crate implements the contribution of *Efficient Formation of
//! Edge Cache Groups for Dynamic Content Delivery* (Ramaswamy, Liu &
//! Zhang, ICDCS 2006): partitioning the `N` edge caches of a content
//! delivery network into `K` cooperative groups.
//!
//! Two utility factors drive the designs:
//!
//! * **network proximity of the caches** — groups should be tight so
//!   cooperative lookups are cheap (§2's *group interaction cost*);
//! * **network distance to the origin server** — far-away caches need
//!   high group hit rates (big groups), nearby caches need cheap
//!   cooperation (small groups), because a miss costs them little (§4).
//!
//! The **SL scheme** ([`SchemeConfig::sl`]) optimizes the first factor:
//! greedy max–min landmark selection, RTT feature vectors, K-means. The
//! **SDSL scheme** ([`SchemeConfig::sdsl`]) adds the second: initial
//! K-means centers are drawn with probability inversely proportional to
//! `Dist(Ec_j, Os)^θ`, producing compact groups near the origin and
//! progressively larger ones farther away.
//!
//! # Examples
//!
//! ```
//! use ecg_core::{GfCoordinator, SchemeConfig};
//! use ecg_topology::{EdgeNetwork, OriginPlacement, TransitStubConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let topo = TransitStubConfig::for_caches(60).generate(&mut rng);
//! let network = EdgeNetwork::place(&topo, 60, OriginPlacement::TransitNode, &mut rng)?;
//!
//! let outcome = GfCoordinator::new(SchemeConfig::sdsl(6, 1.0))
//!     .form_groups(&network, &mut rng)?;
//! let gic = outcome.average_interaction_cost(|a, b| network.cache_to_cache(a, b));
//! println!("{} groups, avg interaction cost {gic:.1} ms", outcome.groups().len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must attach context to failures (`expect`/`Result`), not
// panic opaquely; tests may still unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod health;
pub mod landmarks;
pub mod maintenance;
pub mod scheme;

pub use health::{FormationHealth, ResilienceConfig};
pub use landmarks::{
    select_landmarks, select_landmarks_par, select_landmarks_resilient,
    select_landmarks_resilient_observed, LandmarkError, LandmarkSelection, LandmarkSelector,
    ResilientLandmarkSelection,
};
pub use maintenance::{GroupMaintainer, MaintenanceError, PartialReformOutcome, RetireOutcome};
pub use scheme::{
    FormationTimings, GfCoordinator, GroupInit, GroupingOutcome, Representation, ScaledFormation,
    SchemeConfig, SchemeError,
};
