//! The SL and SDSL group formation schemes.
//!
//! Both schemes share the same three-step pipeline, coordinated by the
//! [`GfCoordinator`] (the paper's *Group Formation-Coordinator*):
//!
//! 1. **Landmark selection** (§3.1) — [`crate::landmarks`].
//! 2. **Position estimation** (§3.2) — landmark feature vectors, or the
//!    GNP Euclidean embedding for the Figure-7 comparison.
//! 3. **Clustering** (§3.3 / §4.1) — K-means; SL seeds the initial
//!    centers uniformly, SDSL with probability
//!    `Pr(Ec_j) ∝ 1 / Dist(Ec_j, Os)^θ`.

use crate::health::{FormationHealth, ResilienceConfig};
use crate::landmarks::{
    select_landmarks, select_landmarks_par, select_landmarks_resilient_observed, LandmarkError,
    LandmarkSelection, LandmarkSelector,
};
use ecg_clustering::{
    kmeans_capped, kmeans_masked_observed, kmeans_observed, server_distance_weights, AssignMode,
    CapError, Initializer, KmeansConfig, KmeansError, KmeansVariant,
};
use ecg_coords::{
    build_feature_matrix, build_feature_matrix_par, build_feature_matrix_resilient_observed,
    embed_network, run_vivaldi, FeatureMask, FeatureMatrix, GnpConfig, ProbeConfig, ProbeFaults,
    Prober, VivaldiConfig,
};
use ecg_obs::Obs;
use ecg_topology::{CacheId, EdgeNetwork, RttSource};
use rand::Rng;
use std::fmt;
use std::time::Instant;

/// How node positions are represented for clustering (§3.2 vs §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Representation {
    /// The paper's simple feature vectors: measured RTTs to each
    /// landmark. The default.
    #[default]
    FeatureVectors,
    /// GNP Euclidean-space coordinates — the computationally expensive
    /// comparator of Figure 7.
    Gnp(GnpConfig),
    /// Decentralized Vivaldi coordinates (Dabek et al., cited in the
    /// paper's related work). Landmark-free: every cache refines
    /// spring-model coordinates against random peers, so the landmark
    /// set is used only for SDSL's server distances. An extension, not
    /// in the paper's evaluation.
    Vivaldi(VivaldiConfig),
}

/// How the K-means initial centers are drawn — the only difference
/// between SL and SDSL.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum GroupInit {
    /// Uniform over caches (SL, §3.3): "any cache may be selected to an
    /// initial cluster center with equal probability".
    #[default]
    Uniform,
    /// Server-distance-biased (SDSL, §4.1):
    /// `Pr(Ec_j) ∝ 1 / Dist(Ec_j, Os)^θ`. Higher `theta` means more
    /// sensitivity to server distance.
    ServerDistance {
        /// The sensitivity exponent θ.
        theta: f64,
    },
    /// k-means++ seeding — not in the paper; available for the
    /// initialization ablation.
    KmeansPlusPlus,
}

/// Full configuration of a group formation run.
///
/// # Examples
///
/// ```
/// use ecg_core::SchemeConfig;
///
/// let sl = SchemeConfig::sl(10);
/// let sdsl = SchemeConfig::sdsl(10, 1.0);
/// assert_eq!(sl.groups(), 10);
/// assert_ne!(sl, sdsl);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeConfig {
    landmarks: usize,
    plset_multiplier: usize,
    groups: usize,
    probe: ProbeConfig,
    selector: LandmarkSelector,
    representation: Representation,
    init: GroupInit,
    kmeans_max_iterations: usize,
    kmeans_variant: KmeansVariant,
    kmeans_assign: AssignMode,
    max_group_size: Option<usize>,
    resilience: Option<ResilienceConfig>,
}

impl SchemeConfig {
    /// The SL scheme with `k` groups and the paper's defaults: 25
    /// landmarks, PLSet multiplier `M = 4`, greedy max–min selection,
    /// feature vectors, uniform K-means seeding.
    pub fn sl(k: usize) -> Self {
        SchemeConfig {
            landmarks: 25,
            plset_multiplier: 4,
            groups: k,
            probe: ProbeConfig::default(),
            selector: LandmarkSelector::GreedyMaxMin,
            representation: Representation::FeatureVectors,
            init: GroupInit::Uniform,
            kmeans_max_iterations: 100,
            kmeans_variant: KmeansVariant::Lloyd,
            kmeans_assign: AssignMode::Auto,
            max_group_size: None,
            resilience: None,
        }
    }

    /// The SDSL scheme: SL plus server-distance-sensitive seeding with
    /// exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is negative or not finite.
    pub fn sdsl(k: usize, theta: f64) -> Self {
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be finite and non-negative"
        );
        SchemeConfig {
            init: GroupInit::ServerDistance { theta },
            ..SchemeConfig::sl(k)
        }
    }

    /// Sets the number of landmarks `L`.
    pub fn landmarks(mut self, l: usize) -> Self {
        self.landmarks = l;
        self
    }

    /// Sets the PLSet multiplier `M`.
    pub fn plset_multiplier(mut self, m: usize) -> Self {
        self.plset_multiplier = m;
        self
    }

    /// Sets the number of groups `K`.
    pub fn groups_count(mut self, k: usize) -> Self {
        self.groups = k;
        self
    }

    /// Sets the probing model.
    pub fn probe(mut self, probe: ProbeConfig) -> Self {
        self.probe = probe;
        self
    }

    /// Sets the landmark selector.
    pub fn selector(mut self, selector: LandmarkSelector) -> Self {
        self.selector = selector;
        self
    }

    /// Sets the position representation.
    pub fn representation(mut self, representation: Representation) -> Self {
        self.representation = representation;
        self
    }

    /// Sets the K-means initialization rule directly.
    pub fn init(mut self, init: GroupInit) -> Self {
        self.init = init;
        self
    }

    /// Sets the K-means iteration cap.
    pub fn kmeans_max_iterations(mut self, iters: usize) -> Self {
        self.kmeans_max_iterations = iters;
        self
    }

    /// Selects the K-means engine for the *scaled* pipeline
    /// ([`GfCoordinator::form_groups_scaled`]): full-batch Lloyd (the
    /// default, byte-exact with the paper path) or the deterministic
    /// mini-batch variant for large `N`. The paper-exact entry points
    /// ([`GfCoordinator::form_groups`] and friends) always run
    /// full-batch Lloyd regardless of this setting, so historical
    /// experiment outputs cannot move.
    pub fn kmeans_variant(mut self, variant: KmeansVariant) -> Self {
        self.kmeans_variant = variant;
        self
    }

    /// The K-means engine the scaled pipeline uses.
    pub fn kmeans_variant_config(&self) -> &KmeansVariant {
        &self.kmeans_variant
    }

    /// Selects the nearest-center engine for the K-means assignment
    /// scans: the flat blocked kernel, the KD-tree over centers, or
    /// (the default) automatic selection on k. Every mode yields a
    /// bit-identical clustering — the tree's exactness contract (see
    /// `ecg_clustering::tree`) is proptest-pinned — so this knob moves
    /// wall-clock only and is safe on the paper-exact paths too.
    pub fn kmeans_assign(mut self, mode: AssignMode) -> Self {
        self.kmeans_assign = mode;
        self
    }

    /// The configured nearest-center engine.
    pub fn kmeans_assign_config(&self) -> AssignMode {
        self.kmeans_assign
    }

    /// Caps every group at `max` members (an extension beyond the
    /// paper): clustering switches to the size-constrained K-means of
    /// [`ecg_clustering::balanced`].
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`.
    pub fn max_group_size(mut self, max: usize) -> Self {
        assert!(max > 0, "group size cap must be positive");
        self.max_group_size = Some(max);
        self
    }

    /// Enables the resilient pipeline: probe retries under the
    /// configured policy, landmark failover when a PLSet node is
    /// detected dead, masked clustering over the observed feature
    /// cells, and quarantine of caches below the observation floor.
    /// The outcome then carries a [`FormationHealth`] report.
    ///
    /// On a fault-free network the resilient pipeline produces a
    /// bit-identical grouping to the plain one (it draws from the RNG
    /// in exactly the same sequence), so enabling resilience cannot
    /// perturb healthy runs.
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// The resilience configuration, if enabled.
    pub fn resilience_config(&self) -> Option<&ResilienceConfig> {
        self.resilience.as_ref()
    }

    /// Number of groups `K`.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Number of landmarks `L`.
    pub fn landmark_count(&self) -> usize {
        self.landmarks
    }
}

/// Error from [`GfCoordinator::form_groups`].
#[derive(Debug, Clone, PartialEq)]
pub enum SchemeError {
    /// Landmark selection failed.
    Landmarks(LandmarkError),
    /// Clustering failed.
    Clustering(KmeansError),
    /// More groups than caches were requested.
    TooManyGroups {
        /// Groups requested.
        groups: usize,
        /// Caches available.
        caches: usize,
    },
    /// The configured group-size cap cannot hold all caches.
    CapTooTight {
        /// Groups requested.
        groups: usize,
        /// Per-group cap.
        max_group_size: usize,
        /// Caches to place.
        caches: usize,
    },
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeError::Landmarks(e) => write!(f, "landmark selection failed: {e}"),
            SchemeError::Clustering(e) => write!(f, "clustering failed: {e}"),
            SchemeError::TooManyGroups { groups, caches } => {
                write!(f, "cannot form {groups} groups from {caches} caches")
            }
            SchemeError::CapTooTight {
                groups,
                max_group_size,
                caches,
            } => write!(
                f,
                "{groups} groups capped at {max_group_size} cannot hold {caches} caches"
            ),
        }
    }
}

impl std::error::Error for SchemeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchemeError::Landmarks(e) => Some(e),
            SchemeError::Clustering(e) => Some(e),
            SchemeError::TooManyGroups { .. } | SchemeError::CapTooTight { .. } => None,
        }
    }
}

impl From<LandmarkError> for SchemeError {
    fn from(e: LandmarkError) -> Self {
        SchemeError::Landmarks(e)
    }
}

impl From<KmeansError> for SchemeError {
    fn from(e: KmeansError) -> Self {
        SchemeError::Clustering(e)
    }
}

/// The result of forming cooperative groups.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupingOutcome {
    groups: Vec<Vec<CacheId>>,
    assignments: Vec<usize>,
    landmarks: LandmarkSelection,
    server_distances_ms: Vec<f64>,
    probes_sent: u64,
    kmeans_iterations: usize,
    centers: FeatureMatrix,
    points: FeatureMatrix,
    health: Option<FormationHealth>,
}

impl GroupingOutcome {
    /// The cooperative groups: `K` disjoint, non-empty, ascending-sorted
    /// member lists covering every cache.
    pub fn groups(&self) -> &[Vec<CacheId>] {
        &self.groups
    }

    /// Group index of each cache, in cache order.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Group index of one cache.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    pub fn group_of(&self, cache: CacheId) -> usize {
        self.assignments[cache.index()]
    }

    /// The landmark selection used.
    pub fn landmarks(&self) -> &LandmarkSelection {
        &self.landmarks
    }

    /// Measured cache-to-origin RTTs (ms), in cache order — the server
    /// distances SDSL weights by.
    pub fn server_distances_ms(&self) -> &[f64] {
        &self.server_distances_ms
    }

    /// Total probe packets the run sent — the scheme's measurement
    /// overhead.
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent
    }

    /// K-means iterations until termination.
    pub fn kmeans_iterations(&self) -> usize {
        self.kmeans_iterations
    }

    /// Final cluster centers in position space (feature-vector or GNP
    /// coordinates, per the configured representation), one matrix row
    /// per group. Used by [`crate::maintenance`] to admit new caches
    /// without re-clustering.
    pub fn centers(&self) -> &FeatureMatrix {
        &self.centers
    }

    /// The per-cache position estimates that were clustered, one matrix
    /// row per cache, in cache order.
    pub fn points(&self) -> &FeatureMatrix {
        &self.points
    }

    /// The resilience layer's health report — `Some` exactly when the
    /// run was configured with [`SchemeConfig::resilience`].
    pub fn health(&self) -> Option<&FormationHealth> {
        self.health.as_ref()
    }

    /// Average group interaction cost of the grouping under a pairwise
    /// cost function — the paper's clustering accuracy metric (§2).
    pub fn average_interaction_cost(&self, cost: impl Fn(CacheId, CacheId) -> f64 + Sync) -> f64 {
        let as_indices: Vec<Vec<usize>> = self
            .groups
            .iter()
            .map(|g| g.iter().map(|c| c.index()).collect())
            .collect();
        ecg_clustering::average_group_interaction_cost(&as_indices, |a, b| {
            cost(CacheId(a), CacheId(b))
        })
    }
}

/// The Group Formation-Coordinator: runs the configured scheme against
/// an edge network.
///
/// # Examples
///
/// ```
/// use ecg_core::{GfCoordinator, SchemeConfig};
/// use ecg_topology::{fixtures::paper_figure1, EdgeNetwork};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
/// let coordinator = GfCoordinator::new(
///     SchemeConfig::sl(3).landmarks(3).plset_multiplier(2),
/// );
/// let mut rng = StdRng::seed_from_u64(1);
/// let outcome = coordinator.form_groups(&network, &mut rng)?;
/// assert_eq!(outcome.groups().len(), 3);
/// # Ok::<(), ecg_core::SchemeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GfCoordinator {
    config: SchemeConfig,
}

impl GfCoordinator {
    /// Creates a coordinator for the given configuration.
    pub fn new(config: SchemeConfig) -> Self {
        GfCoordinator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    /// Sweeps candidate group counts on this network and returns the
    /// silhouette-best `K` (see
    /// [`ecg_clustering::model_selection::suggest_k`]).
    ///
    /// Landmark selection and position estimation run once; only the
    /// clustering is repeated per candidate, so the probing cost is the
    /// same as a single [`GfCoordinator::form_groups`] call.
    ///
    /// # Errors
    ///
    /// Returns [`SchemeError`] if the pipeline fails or no candidate is
    /// usable for the network size.
    pub fn suggest_groups<R: Rng + ?Sized>(
        &self,
        network: &EdgeNetwork,
        candidates: &[usize],
        rng: &mut R,
    ) -> Result<ecg_clustering::KSelection, SchemeError> {
        // Reuse the pipeline with K = 1 (always valid) to obtain the
        // position estimates, then sweep.
        let probe_run = GfCoordinator::new(self.config.clone().groups_count(1));
        let outcome = probe_run.form_groups(network, rng)?;
        let initializer = match self.config.init {
            GroupInit::Uniform => Initializer::RandomRepresentative,
            GroupInit::ServerDistance { theta } => Initializer::Weighted(server_distance_weights(
                outcome.server_distances_ms(),
                theta,
            )),
            GroupInit::KmeansPlusPlus => Initializer::KmeansPlusPlus,
        };
        ecg_clustering::suggest_k(outcome.points(), candidates, &initializer, 3, rng)
            .map_err(SchemeError::Clustering)
    }

    /// Runs the full pipeline and returns the cooperative groups.
    ///
    /// # Errors
    ///
    /// Returns [`SchemeError`] if the network is too small for the
    /// requested landmarks or groups, or clustering fails.
    pub fn form_groups<R: Rng + ?Sized>(
        &self,
        network: &EdgeNetwork,
        rng: &mut R,
    ) -> Result<GroupingOutcome, SchemeError> {
        self.form_groups_observed(network, rng, None)
    }

    /// Like [`GfCoordinator::form_groups`], but records pipeline
    /// telemetry into an observability bundle when one is supplied:
    /// `scheme.landmarks` / `scheme.positions` phase spans whose work is
    /// the probe packets each step sent, a `scheme.clustering` span
    /// whose work is the K-means iteration count, the `kmeans.*`
    /// per-iteration stats (uncapped clustering only), `scheme.*`
    /// counters, and one `scheme`/`formed` trace event. With
    /// `obs = None` this is exactly [`GfCoordinator::form_groups`];
    /// instrumentation never draws from the RNG, so the grouping is
    /// identical either way.
    ///
    /// # Errors
    ///
    /// Exactly as [`GfCoordinator::form_groups`].
    pub fn form_groups_observed<R: Rng + ?Sized>(
        &self,
        network: &EdgeNetwork,
        rng: &mut R,
        obs: Option<&mut Obs>,
    ) -> Result<GroupingOutcome, SchemeError> {
        self.form_groups_faulted_observed(network, &ProbeFaults::default(), rng, obs)
    }

    /// Runs the pipeline against a network with injected probe faults
    /// (crashed nodes, black-holed links — see
    /// [`ecg_coords::ProbeFaults`]).
    ///
    /// Without a [`SchemeConfig::resilience`] configuration the
    /// pipeline behaves exactly like a non-resilient deployment under
    /// failure: dead links report the probe timeout as their RTT, so
    /// crashed caches look maximally far and poison landmark selection
    /// and feature vectors — the baseline the resilience ablation
    /// measures against. With resilience enabled, probes are retried,
    /// dead landmarks fail over, unobserved feature cells are masked
    /// out of clustering, and the outcome carries a
    /// [`FormationHealth`].
    ///
    /// An empty fault set leaves both paths bit-identical to
    /// [`GfCoordinator::form_groups`].
    ///
    /// # Errors
    ///
    /// Exactly as [`GfCoordinator::form_groups`]; additionally, if
    /// quarantine leaves fewer participating caches than groups, a
    /// [`SchemeError::TooManyGroups`] reports the post-quarantine
    /// count.
    pub fn form_groups_faulted<R: Rng + ?Sized>(
        &self,
        network: &EdgeNetwork,
        faults: &ProbeFaults,
        rng: &mut R,
    ) -> Result<GroupingOutcome, SchemeError> {
        self.form_groups_faulted_observed(network, faults, rng, None)
    }

    /// [`GfCoordinator::form_groups_faulted`] with optional
    /// observability (see [`GfCoordinator::form_groups_observed`]; the
    /// resilient path additionally records `probe.retries` /
    /// `probe.gave_up` / `landmarks.failovers` / `scheme.quarantined`).
    ///
    /// # Errors
    ///
    /// Exactly as [`GfCoordinator::form_groups_faulted`].
    pub fn form_groups_faulted_observed<R: Rng + ?Sized>(
        &self,
        network: &EdgeNetwork,
        faults: &ProbeFaults,
        rng: &mut R,
        obs: Option<&mut Obs>,
    ) -> Result<GroupingOutcome, SchemeError> {
        let cfg = &self.config;
        let n = network.cache_count();
        if cfg.groups > n {
            return Err(SchemeError::TooManyGroups {
                groups: cfg.groups,
                caches: n,
            });
        }
        let prober = Prober::with_faults(network.rtt_matrix(), cfg.probe, faults.clone());
        match cfg.resilience {
            None => self.run_legacy(&prober, n, rng, obs),
            Some(res) => self.run_resilient(&prober, &res, n, rng, obs),
        }
    }

    /// The original (non-resilient) pipeline over an already-built
    /// prober.
    fn run_legacy<R: Rng + ?Sized>(
        &self,
        prober: &Prober<'_>,
        n: usize,
        rng: &mut R,
        mut obs: Option<&mut Obs>,
    ) -> Result<GroupingOutcome, SchemeError> {
        let cfg = &self.config;

        // Step 1: landmark selection.
        let probes_before = prober.probes_sent();
        let selection = select_landmarks(
            prober,
            cfg.selector,
            cfg.landmarks.min(n + 1),
            cfg.plset_multiplier,
            rng,
        )?;
        if let Some(o) = obs.as_deref_mut() {
            let mut span = o.phases.span("scheme.landmarks");
            span.add_work((prober.probes_sent() - probes_before) as f64);
        }

        // Step 2: position estimation. Cache Ec_i is matrix index i + 1.
        let probes_before = prober.probes_sent();
        let nodes: Vec<usize> = (1..=n).collect();
        let (points, server_distances_ms): (FeatureMatrix, Vec<f64>) = match cfg.representation {
            Representation::FeatureVectors => {
                let fm = build_feature_matrix(prober, &nodes, &selection.landmarks, rng);
                // landmarks[0] is always the origin, so component 0
                // of every feature vector *is* the measured server
                // distance — SDSL reuses it for free.
                let dists = fm.iter_rows().map(|row| row[0]).collect();
                (fm, dists)
            }
            Representation::Gnp(gnp) => {
                let coords = embed_network(gnp, prober, &nodes, &selection.landmarks, rng);
                let dists = nodes
                    .iter()
                    .map(|&node| prober.measure(node, 0, rng))
                    .collect();
                let dim = coords.first().map(|c| c.as_slice().len()).unwrap_or(0);
                let mut fm = FeatureMatrix::with_capacity(coords.len(), dim);
                for c in &coords {
                    fm.push_row(c.as_slice());
                }
                (fm, dists)
            }
            Representation::Vivaldi(vivaldi) => {
                let states = run_vivaldi(vivaldi, prober, &nodes, rng);
                let dists = nodes
                    .iter()
                    .map(|&node| prober.measure(node, 0, rng))
                    .collect();
                let dim = states
                    .first()
                    .map(|s| s.coords().as_slice().len())
                    .unwrap_or(0);
                let mut fm = FeatureMatrix::with_capacity(states.len(), dim);
                for s in &states {
                    fm.push_row(s.coords().as_slice());
                }
                (fm, dists)
            }
        };
        if let Some(o) = obs.as_deref_mut() {
            let mut span = o.phases.span("scheme.positions");
            span.add_work((prober.probes_sent() - probes_before) as f64);
        }

        // Step 3: clustering with the scheme's initialization.
        let initializer = match cfg.init {
            GroupInit::Uniform => Initializer::RandomRepresentative,
            GroupInit::ServerDistance { theta } => {
                Initializer::Weighted(server_distance_weights(&server_distances_ms, theta))
            }
            GroupInit::KmeansPlusPlus => Initializer::KmeansPlusPlus,
        };
        let kmeans_config = KmeansConfig::new(cfg.groups)
            .max_iterations(cfg.kmeans_max_iterations)
            .assign(cfg.kmeans_assign);
        let clustering = match cfg.max_group_size {
            None => kmeans_observed(
                &points,
                kmeans_config,
                &initializer,
                rng,
                obs.as_deref_mut(),
            )?,
            Some(cap) => kmeans_capped(&points, kmeans_config, &initializer, cap, rng).map_err(
                |e| match e {
                    CapError::InsufficientCapacity {
                        points: caches,
                        k,
                        max_size,
                    } => SchemeError::CapTooTight {
                        groups: k,
                        max_group_size: max_size,
                        caches,
                    },
                    CapError::Kmeans(inner) => SchemeError::Clustering(inner),
                },
            )?,
        };

        if let Some(o) = obs.as_deref_mut() {
            let mut span = o.phases.span("scheme.clustering");
            span.add_work(clustering.iterations() as f64);
        }

        if let Some(o) = obs {
            o.metrics.inc("scheme.runs");
            o.metrics.add("scheme.probes_sent", prober.probes_sent());
            o.trace.push(
                clustering.iterations() as f64,
                "scheme",
                "formed",
                vec![
                    ("groups", cfg.groups.into()),
                    ("probes_sent", prober.probes_sent().into()),
                    ("kmeans_iterations", clustering.iterations().into()),
                ],
            );
        }

        let groups: Vec<Vec<CacheId>> = clustering
            .clusters()
            .into_iter()
            .map(|members| members.into_iter().map(CacheId).collect())
            .collect();
        Ok(GroupingOutcome {
            groups,
            assignments: clustering.assignments().to_vec(),
            landmarks: selection,
            server_distances_ms,
            probes_sent: prober.probes_sent(),
            kmeans_iterations: clustering.iterations(),
            centers: clustering.centers().clone(),
            points,
            health: None,
        })
    }

    /// The resilient pipeline: retried probing, landmark failover,
    /// masked clustering, quarantine, and a [`FormationHealth`] report.
    fn run_resilient<R: Rng + ?Sized>(
        &self,
        prober: &Prober<'_>,
        res: &ResilienceConfig,
        n: usize,
        rng: &mut R,
        mut obs: Option<&mut Obs>,
    ) -> Result<GroupingOutcome, SchemeError> {
        let cfg = &self.config;
        let policy = res.retry_policy();

        // Step 1: landmark selection with failure detection and
        // failover.
        let probes_before = prober.probes_sent();
        let rsel = select_landmarks_resilient_observed(
            prober,
            cfg.selector,
            cfg.landmarks.min(n + 1),
            cfg.plset_multiplier,
            policy,
            rng,
            obs.as_deref_mut(),
        )?;
        if let Some(o) = obs.as_deref_mut() {
            let mut span = o.phases.span("scheme.landmarks");
            span.add_work((prober.probes_sent() - probes_before) as f64);
        }
        let selection = rsel.selection;

        // Step 2: position estimation. Masking applies to the paper's
        // feature vectors; the embedding representations keep their
        // legacy estimators (which substitute the timeout sentinel for
        // failed measurements) under a fully-observed mask.
        let probes_before = prober.probes_sent();
        let nodes: Vec<usize> = (1..=n).collect();
        let (points, mask, server_distances_ms): (FeatureMatrix, FeatureMask, Vec<f64>) =
            match cfg.representation {
                Representation::FeatureVectors => {
                    let (fm, mask) = build_feature_matrix_resilient_observed(
                        prober,
                        &nodes,
                        &selection.landmarks,
                        policy,
                        rng,
                        obs.as_deref_mut(),
                    );
                    // Component 0 is the measured server distance where
                    // observed; a cache that never reached the origin
                    // falls back to the mean observed server distance
                    // (the timeout if nobody reached it) so SDSL's
                    // weights stay finite.
                    let observed: Vec<f64> = (0..n)
                        .filter(|&i| mask.is_observed(i, 0))
                        .map(|i| fm.row(i)[0])
                        .collect();
                    let fallback = if observed.is_empty() {
                        prober.config().timeout()
                    } else {
                        observed.iter().sum::<f64>() / observed.len() as f64
                    };
                    let dists = (0..n)
                        .map(|i| {
                            if mask.is_observed(i, 0) {
                                fm.row(i)[0]
                            } else {
                                fallback
                            }
                        })
                        .collect();
                    (fm, mask, dists)
                }
                Representation::Gnp(gnp) => {
                    let coords = embed_network(gnp, prober, &nodes, &selection.landmarks, rng);
                    let dists = nodes
                        .iter()
                        .map(|&node| prober.measure(node, 0, rng))
                        .collect();
                    let dim = coords.first().map(|c| c.as_slice().len()).unwrap_or(0);
                    let mut fm = FeatureMatrix::with_capacity(coords.len(), dim);
                    for c in &coords {
                        fm.push_row(c.as_slice());
                    }
                    let mask = FeatureMask::all_observed(fm.len(), dim);
                    (fm, mask, dists)
                }
                Representation::Vivaldi(vivaldi) => {
                    let states = run_vivaldi(vivaldi, prober, &nodes, rng);
                    let dists = nodes
                        .iter()
                        .map(|&node| prober.measure(node, 0, rng))
                        .collect();
                    let dim = states
                        .first()
                        .map(|s| s.coords().as_slice().len())
                        .unwrap_or(0);
                    let mut fm = FeatureMatrix::with_capacity(states.len(), dim);
                    for s in &states {
                        fm.push_row(s.coords().as_slice());
                    }
                    let mask = FeatureMask::all_observed(fm.len(), dim);
                    (fm, mask, dists)
                }
            };
        if let Some(o) = obs.as_deref_mut() {
            let mut span = o.phases.span("scheme.positions");
            span.add_work((prober.probes_sent() - probes_before) as f64);
        }

        // Step 3: quarantine. A cache below the observation floor
        // carries too little positional signal to cluster; it is routed
        // to its nearest observed landmark's group instead. The floor
        // is clamped to the feature dimension so a fully-observed row
        // is never quarantined.
        let floor = res.min_observed().min(mask.dim()).max(1);
        let mut quarantined: Vec<CacheId> = Vec::new();
        let mut kept: Vec<usize> = Vec::new();
        for i in 0..n {
            if mask.observed_count(i) < floor {
                quarantined.push(CacheId(i));
            } else {
                kept.push(i);
            }
        }
        if kept.len() < cfg.groups {
            return Err(SchemeError::TooManyGroups {
                groups: cfg.groups,
                caches: kept.len(),
            });
        }
        let (kept_points, kept_mask) = if quarantined.is_empty() {
            (points.clone(), mask.clone())
        } else {
            let mut kp = FeatureMatrix::with_capacity(kept.len(), points.dim());
            let mut km = FeatureMask::new(mask.dim());
            for &i in &kept {
                kp.push_row(points.row(i));
                km.push_row(mask.row(i));
            }
            (kp, km)
        };

        // Step 4: masked clustering of the participating caches. SDSL
        // weights come from the kept caches' server distances.
        let initializer = match cfg.init {
            GroupInit::Uniform => Initializer::RandomRepresentative,
            GroupInit::ServerDistance { theta } => {
                let kept_dists: Vec<f64> = kept.iter().map(|&i| server_distances_ms[i]).collect();
                Initializer::Weighted(server_distance_weights(&kept_dists, theta))
            }
            GroupInit::KmeansPlusPlus => Initializer::KmeansPlusPlus,
        };
        let kmeans_config = KmeansConfig::new(cfg.groups)
            .max_iterations(cfg.kmeans_max_iterations)
            .assign(cfg.kmeans_assign);
        let clustering = match cfg.max_group_size {
            None => kmeans_masked_observed(
                &kept_points,
                &kept_mask,
                kmeans_config,
                &initializer,
                rng,
                obs.as_deref_mut(),
            )?,
            // The size-capped variant has no masked twin: the cap path
            // clusters the raw rows, placeholders included.
            Some(cap) => kmeans_capped(&kept_points, kmeans_config, &initializer, cap, rng)
                .map_err(|e| match e {
                    CapError::InsufficientCapacity {
                        points: caches,
                        k,
                        max_size,
                    } => SchemeError::CapTooTight {
                        groups: k,
                        max_group_size: max_size,
                        caches,
                    },
                    CapError::Kmeans(inner) => SchemeError::Clustering(inner),
                })?,
        };
        if let Some(o) = obs.as_deref_mut() {
            let mut span = o.phases.span("scheme.clustering");
            span.add_work(clustering.iterations() as f64);
        }

        // Map the kept-subset assignments back to cache order, then
        // place each quarantined cache with its nearest observed
        // landmark's cache (group 0 if it observed no landmark cache at
        // all).
        let mut assignments = vec![usize::MAX; n];
        for (ki, &i) in kept.iter().enumerate() {
            assignments[i] = clustering.assignments()[ki];
        }
        for &c in &quarantined {
            let i = c.index();
            let mut best: Option<(f64, usize)> = None;
            for j in 1..mask.dim() {
                if mask.is_observed(i, j) {
                    let d = points.row(i)[j];
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, j));
                    }
                }
            }
            assignments[i] = best
                .and_then(|(_, j)| {
                    let lm_cache = selection.landmarks.get(j)?.checked_sub(1)?;
                    let g = assignments[lm_cache];
                    (g != usize::MAX).then_some(g)
                })
                .unwrap_or(0);
        }
        let mut groups: Vec<Vec<CacheId>> = vec![Vec::new(); cfg.groups];
        for (i, &g) in assignments.iter().enumerate() {
            groups[g].push(CacheId(i));
        }

        let health = FormationHealth {
            probe_retries: prober.retries(),
            probe_gave_up: prober.gave_up(),
            backoff_ms: prober.backoff_ms(),
            dead_landmarks: rsel.dead_nodes,
            landmark_failovers: rsel.replaced.len(),
            masked_cells: mask.masked_cells(),
            quarantined: quarantined.clone(),
        };
        if let Some(o) = obs {
            o.metrics.inc("scheme.runs");
            o.metrics.add("scheme.probes_sent", prober.probes_sent());
            o.metrics
                .add("scheme.quarantined", quarantined.len() as u64);
            o.metrics
                .add("scheme.failovers", health.landmark_failovers as u64);
            o.trace.push(
                clustering.iterations() as f64,
                "scheme",
                "formed",
                vec![
                    ("groups", cfg.groups.into()),
                    ("probes_sent", prober.probes_sent().into()),
                    ("kmeans_iterations", clustering.iterations().into()),
                    ("degraded", u64::from(health.is_degraded()).into()),
                ],
            );
        }

        Ok(GroupingOutcome {
            groups,
            assignments,
            landmarks: selection,
            server_distances_ms,
            probes_sent: prober.probes_sent(),
            kmeans_iterations: clustering.iterations(),
            centers: clustering.centers().clone(),
            points,
            health: Some(health),
        })
    }

    /// The large-N pipeline over any [`RttSource`] oracle: parallel
    /// landmark probing ([`select_landmarks_par`]), parallel feature
    /// construction ([`build_feature_matrix_par`]), and the configured
    /// [`KmeansVariant`] (full-batch Lloyd by default, mini-batch via
    /// [`SchemeConfig::kmeans_variant`]).
    ///
    /// This is the same three-step pipeline as
    /// [`GfCoordinator::form_groups`], but over an O(n)-state oracle
    /// (e.g. [`ecg_topology::SyntheticRtt`]) instead of a dense
    /// `EdgeNetwork`, with every probing stage on derived-seed parallel
    /// kernels — so the result depends only on the seed, never the
    /// thread count, and the per-stage wall-clock is reported in
    /// [`FormationTimings`]. Timings are measurement-only: no RNG draw
    /// or control-flow decision reads the clock.
    ///
    /// Two deliberate scope limits versus the paper path: positions are
    /// always landmark feature vectors (no GNP/Vivaldi embedding — both
    /// are quadratic-ish and exist for small-scale comparisons), and
    /// [`SchemeConfig::max_group_size`] is ignored (the balanced
    /// assignment pass is sequential and paper-scale only). Resilience
    /// is likewise a paper-path feature. The outcome carries no
    /// [`FormationHealth`].
    ///
    /// # Errors
    ///
    /// Returns [`SchemeError`] if the network is too small for the
    /// requested landmarks or groups, or clustering fails.
    pub fn form_groups_scaled<R: Rng + ?Sized>(
        &self,
        source: &dyn RttSource,
        rng: &mut R,
    ) -> Result<ScaledFormation, SchemeError> {
        let cfg = &self.config;
        let n = source.node_count() - 1;
        if cfg.groups > n {
            return Err(SchemeError::TooManyGroups {
                groups: cfg.groups,
                caches: n,
            });
        }
        let prober = Prober::new(source, cfg.probe);
        let started = Instant::now();

        // Step 1: landmark selection, parallel measurement phase.
        let selection = select_landmarks_par(
            &prober,
            cfg.selector,
            cfg.landmarks.min(n + 1),
            cfg.plset_multiplier,
            rng,
        )?;
        let landmarks_ms = started.elapsed().as_secs_f64() * 1e3;

        // Step 2: feature vectors, parallel row construction. Component
        // 0 of every row is the measured server distance (landmarks[0]
        // is always the origin).
        let features_started = Instant::now();
        let nodes: Vec<usize> = (1..=n).collect();
        let points = build_feature_matrix_par(&prober, &nodes, &selection.landmarks, rng);
        let server_distances_ms: Vec<f64> = points.iter_rows().map(|row| row[0]).collect();
        let features_ms = features_started.elapsed().as_secs_f64() * 1e3;

        // Step 3: clustering through the configured engine. The
        // tree-build accumulator is drained before the phase so the
        // after-read covers exactly this clustering's rebuilds.
        let _ = ecg_clustering::take_tree_build_ms();
        let clustering_started = Instant::now();
        let initializer = match cfg.init {
            GroupInit::Uniform => Initializer::RandomRepresentative,
            GroupInit::ServerDistance { theta } => {
                Initializer::Weighted(server_distance_weights(&server_distances_ms, theta))
            }
            GroupInit::KmeansPlusPlus => Initializer::KmeansPlusPlus,
        };
        let kmeans_config = KmeansConfig::new(cfg.groups)
            .max_iterations(cfg.kmeans_max_iterations)
            .assign(cfg.kmeans_assign);
        let clustering = ecg_clustering::kmeans_variant(
            &points,
            kmeans_config,
            &cfg.kmeans_variant,
            &initializer,
            rng,
        )?;
        let clustering_ms = clustering_started.elapsed().as_secs_f64() * 1e3;
        let tree_build_ms = ecg_clustering::take_tree_build_ms();

        let groups: Vec<Vec<CacheId>> = clustering
            .clusters()
            .into_iter()
            .map(|members| members.into_iter().map(CacheId).collect())
            .collect();
        let outcome = GroupingOutcome {
            groups,
            assignments: clustering.assignments().to_vec(),
            landmarks: selection,
            server_distances_ms,
            probes_sent: prober.probes_sent(),
            kmeans_iterations: clustering.iterations(),
            centers: clustering.centers().clone(),
            points,
            health: None,
        };
        Ok(ScaledFormation {
            outcome,
            timings: FormationTimings {
                landmarks_ms,
                features_ms,
                clustering_ms,
                tree_build_ms,
                total_ms: started.elapsed().as_secs_f64() * 1e3,
            },
        })
    }
}

/// Per-stage wall-clock of a [`GfCoordinator::form_groups_scaled`] run,
/// in milliseconds. Purely observational — the pipeline never branches
/// on the clock, so timings cannot perturb results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormationTimings {
    /// Landmark selection (PLSet probing + greedy fill).
    pub landmarks_ms: f64,
    /// Feature-matrix construction (cache-to-landmark probing).
    pub features_ms: f64,
    /// K-means clustering (whichever [`KmeansVariant`] ran).
    pub clustering_ms: f64,
    /// Of `clustering_ms`, the time spent (re)building the KD-tree
    /// over centers — 0 when the scans ran on the blocked kernel (see
    /// [`SchemeConfig::kmeans_assign`]). The remainder of
    /// `clustering_ms` is queries and center updates.
    pub tree_build_ms: f64,
    /// End-to-end formation time.
    pub total_ms: f64,
}

/// A grouping from the scaled pipeline plus its per-stage timings.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledFormation {
    /// The grouping, identical in shape to the paper path's outcome
    /// (health is always `None` — resilience is a paper-path feature).
    pub outcome: GroupingOutcome,
    /// Per-stage wall-clock of this run.
    pub timings: FormationTimings,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_topology::fixtures::paper_figure1;
    use ecg_topology::RttMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn figure1_network() -> EdgeNetwork {
        EdgeNetwork::from_rtt_matrix(paper_figure1())
    }

    fn noiseless(cfg: SchemeConfig) -> SchemeConfig {
        cfg.probe(ProbeConfig::noiseless())
    }

    #[test]
    fn sl_forms_k_disjoint_covering_groups() {
        let net = figure1_network();
        let coord = GfCoordinator::new(noiseless(
            SchemeConfig::sl(3).landmarks(3).plset_multiplier(2),
        ));
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = coord.form_groups(&net, &mut rng).unwrap();
        assert_eq!(outcome.groups().len(), 3);
        let mut all: Vec<usize> = outcome
            .groups()
            .iter()
            .flatten()
            .map(|c| c.index())
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
        // assignments agree with groups.
        for (g, members) in outcome.groups().iter().enumerate() {
            for &c in members {
                assert_eq!(outcome.group_of(c), g);
            }
        }
    }

    #[test]
    fn sl_recovers_figure1_natural_pairs() {
        // The Figure 1 network has three obvious 4ms pairs
        // ({Ec0,Ec1}, {Ec2,Ec3}, {Ec4,Ec5}) — the grouping the paper's
        // Figure 2 walkthrough produces. K-means is seed-dependent, but
        // a majority of seeds should land exactly there.
        let net = figure1_network();
        let coord = GfCoordinator::new(noiseless(
            SchemeConfig::sl(3).landmarks(3).plset_multiplier(2),
        ));
        let seeds = 30;
        let mut exact = 0;
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = coord.form_groups(&net, &mut rng).unwrap();
            let mut sorted: Vec<Vec<usize>> = outcome
                .groups()
                .iter()
                .map(|g| g.iter().map(|c| c.index()).collect())
                .collect();
            sorted.sort();
            if sorted == vec![vec![0, 1], vec![2, 3], vec![4, 5]] {
                exact += 1;
                // When the pairs are found, the mean pairwise cost within
                // each group is exactly the 4ms pair RTT.
                let cost = outcome.average_interaction_cost(|a, b| net.cache_to_cache(a, b));
                assert!((cost - 4.0).abs() < 1e-9, "GIC {cost}");
            }
        }
        assert!(
            exact * 2 > seeds,
            "pairs found on only {exact}/{seeds} seeds"
        );
    }

    #[test]
    fn server_distances_match_ground_truth_when_noiseless() {
        let net = figure1_network();
        let coord = GfCoordinator::new(noiseless(
            SchemeConfig::sl(3).landmarks(3).plset_multiplier(2),
        ));
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = coord.form_groups(&net, &mut rng).unwrap();
        for (i, &d) in outcome.server_distances_ms().iter().enumerate() {
            assert_eq!(d, net.cache_to_origin(CacheId(i)));
        }
    }

    /// A 12-cache network in four 3-cache sites at increasing distance
    /// from the origin (10, 40, 70, 100 ms). Intra-site RTT is 2 ms.
    fn gradient_network() -> EdgeNetwork {
        let site_dist = [10.0, 40.0, 70.0, 100.0];
        let m = RttMatrix::from_fn(13, |i, j| {
            if i == 0 || j == 0 {
                // Origin to cache: the cache's site distance.
                let c = i.max(j) - 1;
                site_dist[c / 3]
            } else {
                let (a, b) = (i - 1, j - 1);
                if a / 3 == b / 3 {
                    2.0
                } else {
                    // Inter-site: through the origin's vicinity.
                    site_dist[a / 3] + site_dist[b / 3]
                }
            }
        });
        EdgeNetwork::from_rtt_matrix(m)
    }

    #[test]
    fn sdsl_places_smaller_groups_near_origin() {
        let net = gradient_network();
        let coord = GfCoordinator::new(noiseless(
            SchemeConfig::sdsl(6, 3.0).landmarks(5).plset_multiplier(2),
        ));
        // Average, over seeds, the size of the group containing the
        // nearest cache vs. the one containing the farthest cache.
        let (mut near_sum, mut far_sum) = (0.0, 0.0);
        let seeds = 40;
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = coord.form_groups(&net, &mut rng).unwrap();
            let near_group = outcome.group_of(CacheId(0));
            let far_group = outcome.group_of(CacheId(11));
            near_sum += outcome.groups()[near_group].len() as f64;
            far_sum += outcome.groups()[far_group].len() as f64;
        }
        let (near, far) = (near_sum / seeds as f64, far_sum / seeds as f64);
        assert!(
            near < far,
            "near-origin mean group size {near} vs far {far}"
        );
    }

    #[test]
    fn sdsl_theta_zero_behaves_like_sl_distribution() {
        // θ = 0 gives uniform weights: same initializer family as SL.
        let net = gradient_network();
        let sl = GfCoordinator::new(noiseless(
            SchemeConfig::sl(4).landmarks(5).plset_multiplier(2),
        ));
        let sdsl0 = GfCoordinator::new(noiseless(
            SchemeConfig::sdsl(4, 0.0).landmarks(5).plset_multiplier(2),
        ));
        // Not bit-identical (different RNG consumption), but the average
        // interaction costs over seeds should be statistically close.
        let avg = |coord: &GfCoordinator| -> f64 {
            (0..30)
                .map(|seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    coord
                        .form_groups(&net, &mut rng)
                        .unwrap()
                        .average_interaction_cost(|a, b| net.cache_to_cache(a, b))
                })
                .sum::<f64>()
                / 30.0
        };
        let (a, b) = (avg(&sl), avg(&sdsl0));
        assert!((a - b).abs() / a.max(b) < 0.35, "sl {a} vs sdsl(0) {b}");
    }

    #[test]
    fn gnp_representation_also_forms_valid_groups() {
        let net = figure1_network();
        let coord = GfCoordinator::new(noiseless(
            SchemeConfig::sl(3)
                .landmarks(3)
                .plset_multiplier(2)
                .representation(Representation::Gnp(
                    ecg_coords::GnpConfig::default().dimensions(2).restarts(2),
                )),
        ));
        let mut rng = StdRng::seed_from_u64(8);
        let outcome = coord.form_groups(&net, &mut rng).unwrap();
        assert_eq!(outcome.groups().len(), 3);
        let total: usize = outcome.groups().iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn vivaldi_representation_also_forms_valid_groups() {
        let net = figure1_network();
        let coord = GfCoordinator::new(noiseless(
            SchemeConfig::sl(3)
                .landmarks(3)
                .plset_multiplier(2)
                .representation(Representation::Vivaldi(
                    ecg_coords::VivaldiConfig::default()
                        .dimensions(2)
                        .rounds(150),
                )),
        ));
        let mut rng = StdRng::seed_from_u64(12);
        let outcome = coord.form_groups(&net, &mut rng).unwrap();
        assert_eq!(outcome.groups().len(), 3);
        let total: usize = outcome.groups().iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        // Points are the 2-D Vivaldi coordinates.
        assert_eq!(outcome.points().dim(), 2);
        assert_eq!(outcome.points().len(), 6);
    }

    #[test]
    fn too_many_groups_is_an_error() {
        let net = figure1_network();
        let coord = GfCoordinator::new(SchemeConfig::sl(10).landmarks(3));
        let mut rng = StdRng::seed_from_u64(0);
        let err = coord.form_groups(&net, &mut rng).unwrap_err();
        assert_eq!(
            err,
            SchemeError::TooManyGroups {
                groups: 10,
                caches: 6
            }
        );
        assert!(err.to_string().contains("10 groups"));
    }

    #[test]
    fn landmark_count_is_capped_at_network_size() {
        // L = 25 default exceeds 6 caches + origin: capped, not an error.
        let net = figure1_network();
        let coord = GfCoordinator::new(noiseless(SchemeConfig::sl(2)));
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = coord.form_groups(&net, &mut rng).unwrap();
        assert_eq!(outcome.landmarks().landmarks.len(), 7);
    }

    #[test]
    fn probe_accounting_is_exposed() {
        let net = figure1_network();
        let coord = GfCoordinator::new(noiseless(
            SchemeConfig::sl(2).landmarks(3).plset_multiplier(2),
        ));
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = coord.form_groups(&net, &mut rng).unwrap();
        // Selection probes + 6 caches × 3 landmarks feature probes.
        assert!(outcome.probes_sent() >= 18);
    }

    #[test]
    fn suggest_groups_finds_the_natural_k() {
        // The Figure 1 network has three natural pairs: K = 3 should
        // win the silhouette sweep.
        let net = figure1_network();
        let coord = GfCoordinator::new(noiseless(
            SchemeConfig::sl(1).landmarks(3).plset_multiplier(2),
        ));
        let mut hits = 0;
        let seeds = 10;
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let sel = coord.suggest_groups(&net, &[2, 3, 4], &mut rng).unwrap();
            assert_eq!(sel.scores.len(), 3);
            if sel.k == 3 {
                hits += 1;
            }
        }
        assert!(
            hits * 2 > seeds,
            "K = 3 chosen on only {hits}/{seeds} seeds"
        );
    }

    #[test]
    fn group_size_cap_is_enforced() {
        let net = figure1_network();
        let coord = GfCoordinator::new(noiseless(
            SchemeConfig::sl(3)
                .landmarks(3)
                .plset_multiplier(2)
                .max_group_size(2),
        ));
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = coord.form_groups(&net, &mut rng).unwrap();
            let sizes: Vec<usize> = outcome.groups().iter().map(Vec::len).collect();
            assert!(sizes.iter().all(|&s| s == 2), "seed {seed}: {sizes:?}");
        }
    }

    #[test]
    fn impossible_cap_is_an_error() {
        let net = figure1_network();
        let coord = GfCoordinator::new(noiseless(
            SchemeConfig::sl(2)
                .landmarks(3)
                .plset_multiplier(2)
                .max_group_size(2),
        ));
        let mut rng = StdRng::seed_from_u64(0);
        let err = coord.form_groups(&net, &mut rng).unwrap_err();
        assert_eq!(
            err,
            SchemeError::CapTooTight {
                groups: 2,
                max_group_size: 2,
                caches: 6
            }
        );
        assert!(err.to_string().contains("capped at 2"));
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn sdsl_rejects_bad_theta() {
        let _ = SchemeConfig::sdsl(3, f64::NAN);
    }

    #[test]
    fn resilient_pipeline_is_bit_identical_on_healthy_network() {
        use crate::health::ResilienceConfig;
        let net = figure1_network();
        let base = noiseless(SchemeConfig::sl(3).landmarks(3).plset_multiplier(2));
        let plain = GfCoordinator::new(base.clone());
        let resilient = GfCoordinator::new(base.resilience(ResilienceConfig::default()));
        for seed in 0..25u64 {
            let a = plain
                .form_groups(&net, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            let b = resilient
                .form_groups(&net, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            assert_eq!(a.groups(), b.groups(), "seed {seed}");
            assert_eq!(a.assignments(), b.assignments());
            assert_eq!(a.landmarks(), b.landmarks());
            assert_eq!(a.probes_sent(), b.probes_sent());
            assert_eq!(a.server_distances_ms(), b.server_distances_ms());
            assert_eq!(a.points().as_flat(), b.points().as_flat());
            assert!(a.health().is_none());
            let health = b.health().expect("resilient run reports health");
            assert!(health.is_healthy(), "seed {seed}: {health}");
            assert_eq!(health.probe_retries, 0);
        }
    }

    #[test]
    fn faulted_run_without_resilience_reports_no_health() {
        // The baseline the resilience ablation measures against: faults
        // poison the measurements, but the pipeline neither panics nor
        // reports anything.
        let net = figure1_network();
        let coord = GfCoordinator::new(noiseless(
            SchemeConfig::sl(3).landmarks(3).plset_multiplier(2),
        ));
        let faults = ecg_coords::ProbeFaults::new().node_down(3);
        let outcome = coord
            .form_groups_faulted(&net, &faults, &mut StdRng::seed_from_u64(4))
            .unwrap();
        assert!(outcome.health().is_none());
        assert_eq!(outcome.groups().len(), 3);
    }

    #[test]
    fn resilient_pipeline_quarantines_a_crashed_cache() {
        use crate::health::ResilienceConfig;
        let net = figure1_network();
        let coord = GfCoordinator::new(
            noiseless(SchemeConfig::sl(3).landmarks(3).plset_multiplier(2))
                .resilience(ResilienceConfig::default()),
        );
        // Node 3 = Ec2 crashes: every probe to it dies, so its feature
        // row has zero observed cells and it must be quarantined (and,
        // if it was drawn into the PLSet, failed over).
        let faults = ecg_coords::ProbeFaults::new().node_down(3);
        for seed in 0..10u64 {
            let outcome = coord
                .form_groups_faulted(&net, &faults, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            let health = outcome.health().expect("health report");
            assert!(health.is_degraded(), "seed {seed}");
            assert_eq!(health.quarantined, vec![CacheId(2)], "seed {seed}");
            assert!(health.masked_cells >= outcome.landmarks().landmarks.len());
            assert!(!outcome.landmarks().landmarks.contains(&3), "dead landmark");
            // Still a partition of all six caches into three groups.
            let mut all: Vec<usize> = outcome
                .groups()
                .iter()
                .flatten()
                .map(|c| c.index())
                .collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn resilient_pipeline_retries_through_loss() {
        use crate::health::ResilienceConfig;
        use ecg_coords::RetryPolicy;
        let net = figure1_network();
        let coord = GfCoordinator::new(
            SchemeConfig::sl(3)
                .landmarks(3)
                .plset_multiplier(2)
                .probe(ProbeConfig::noiseless().loss_rate(0.45).timeout_ms(500.0))
                .resilience(ResilienceConfig::default().retry(RetryPolicy::default().retries(4))),
        );
        let mut retried = 0u64;
        for seed in 0..20u64 {
            let outcome = coord
                .form_groups(&net, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            let health = outcome.health().expect("health report");
            retried += health.probe_retries;
            assert!(health.backoff_ms >= health.probe_retries * 50);
        }
        assert!(retried > 0, "45% loss never triggered a retry");
    }

    #[test]
    fn scaled_pipeline_forms_valid_groups_with_timings() {
        use ecg_topology::SyntheticRttConfig;
        let net = SyntheticRttConfig::default().generate(301, 9);
        let coord = GfCoordinator::new(noiseless(
            SchemeConfig::sl(10).landmarks(8).plset_multiplier(4),
        ));
        let formed = coord
            .form_groups_scaled(&net, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let outcome = &formed.outcome;
        assert_eq!(outcome.groups().len(), 10);
        let mut all: Vec<usize> = outcome
            .groups()
            .iter()
            .flatten()
            .map(|c| c.index())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..300).collect::<Vec<_>>());
        assert!(outcome.groups().iter().all(|g| !g.is_empty()));
        assert!(outcome.health().is_none());
        // Feature dim == landmark count; component 0 is the measured
        // (noiseless: exact) server distance.
        assert_eq!(outcome.points().dim(), 8);
        for (i, &d) in outcome.server_distances_ms().iter().enumerate() {
            assert_eq!(d, net.rtt_ms(i + 1, 0));
        }
        let t = formed.timings;
        assert!(t.landmarks_ms >= 0.0 && t.features_ms >= 0.0 && t.clustering_ms >= 0.0);
        assert!(t.total_ms >= t.clustering_ms);
    }

    #[test]
    fn scaled_pipeline_is_thread_count_invariant_for_both_variants() {
        use ecg_clustering::{KmeansVariant, MiniBatchConfig};
        use ecg_topology::SyntheticRttConfig;
        let net = SyntheticRttConfig::default().generate(401, 77);
        for variant in [
            KmeansVariant::Lloyd,
            KmeansVariant::MiniBatch(MiniBatchConfig::default().batch_size(128).iterations(15)),
        ] {
            let coord = GfCoordinator::new(
                SchemeConfig::sdsl(8, 1.0)
                    .landmarks(6)
                    .plset_multiplier(4)
                    .kmeans_variant(variant),
            );
            let run_at = |threads: usize| {
                ecg_par::set_max_threads(Some(threads));
                let formed = coord
                    .form_groups_scaled(&net, &mut StdRng::seed_from_u64(21))
                    .unwrap();
                ecg_par::set_max_threads(None);
                formed.outcome
            };
            let at1 = run_at(1);
            let at4 = run_at(4);
            assert_eq!(at1.assignments(), at4.assignments(), "{variant:?}");
            assert_eq!(
                at1.centers().as_flat(),
                at4.centers().as_flat(),
                "{variant:?}"
            );
            assert_eq!(at1.landmarks(), at4.landmarks(), "{variant:?}");
            assert_eq!(
                at1.points().as_flat(),
                at4.points().as_flat(),
                "{variant:?}"
            );
        }
    }

    #[test]
    fn scaled_pipeline_rejects_too_many_groups() {
        use ecg_topology::SyntheticRttConfig;
        let net = SyntheticRttConfig::default().generate(11, 1);
        let coord = GfCoordinator::new(SchemeConfig::sl(50).landmarks(4));
        let err = coord
            .form_groups_scaled(&net, &mut StdRng::seed_from_u64(0))
            .unwrap_err();
        assert_eq!(
            err,
            SchemeError::TooManyGroups {
                groups: 50,
                caches: 10
            }
        );
    }

    #[test]
    fn observed_form_groups_matches_plain_and_records_pipeline() {
        let net = figure1_network();
        let coord = GfCoordinator::new(noiseless(
            SchemeConfig::sdsl(3, 1.0).landmarks(3).plset_multiplier(2),
        ));
        let plain = coord
            .form_groups(&net, &mut StdRng::seed_from_u64(11))
            .unwrap();
        let mut obs = Obs::new();
        let observed = coord
            .form_groups_observed(&net, &mut StdRng::seed_from_u64(11), Some(&mut obs))
            .unwrap();

        // Instrumentation must not perturb the pipeline.
        assert_eq!(plain.assignments(), observed.assignments());
        assert_eq!(plain.probes_sent(), observed.probes_sent());
        assert_eq!(plain.kmeans_iterations(), observed.kmeans_iterations());

        assert_eq!(obs.metrics.counter("scheme.runs"), 1);
        assert_eq!(
            obs.metrics.counter("scheme.probes_sent"),
            observed.probes_sent()
        );
        assert_eq!(obs.metrics.counter("kmeans.runs"), 1);
        assert_eq!(
            obs.metrics.counter("kmeans.iterations"),
            observed.kmeans_iterations() as u64
        );

        // The landmark + position spans together account for every probe
        // the coordinator sent (clustering sends none).
        let roots = obs.phases.roots();
        let names: Vec<&str> = roots.iter().map(|n| n.name()).collect();
        for phase in ["scheme.landmarks", "scheme.positions", "scheme.clustering"] {
            assert!(names.contains(&phase), "missing phase {phase}: {names:?}");
        }
        let probe_work: f64 = roots
            .iter()
            .filter(|n| matches!(n.name(), "scheme.landmarks" | "scheme.positions"))
            .map(|n| n.work())
            .sum();
        assert_eq!(probe_work, observed.probes_sent() as f64);

        let last = obs.trace.events().last().expect("trace has events");
        assert_eq!((last.component, last.kind), ("scheme", "formed"));
    }
}
