//! Formation-run health reporting for the resilient pipeline.
//!
//! When a [`GfCoordinator`](crate::GfCoordinator) runs with a
//! [`ResilienceConfig`], it returns a [`FormationHealth`] alongside the
//! grouping: how hard the probing layer had to work (retries, virtual
//! backoff, abandoned measurements), which landmarks were detected dead
//! and failed over, how many feature cells were never observed, and
//! which caches were quarantined into the nearest-landmark fallback.
//! A fault-free run reports [`FormationHealth::is_healthy`] and is
//! bit-identical to the non-resilient pipeline.

use ecg_coords::RetryPolicy;
use ecg_topology::CacheId;
use std::fmt;

/// Tuning for the resilient formation pipeline
/// ([`crate::GfCoordinator::form_groups_faulted`]).
///
/// # Examples
///
/// ```
/// use ecg_core::ResilienceConfig;
/// use ecg_coords::RetryPolicy;
///
/// let cfg = ResilienceConfig::default()
///     .retry(RetryPolicy::default().retries(3))
///     .min_observed_features(2);
/// assert_eq!(cfg.retry_policy().max_retries(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    retry: RetryPolicy,
    min_observed_features: usize,
}

impl Default for ResilienceConfig {
    /// The default [`RetryPolicy`] and a one-feature quarantine floor:
    /// a cache that observed at least one landmark is still clustered
    /// (masked), one that observed none is quarantined.
    fn default() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::default(),
            min_observed_features: 1,
        }
    }
}

impl ResilienceConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the probe retry policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Sets the minimum number of observed feature-vector components a
    /// cache needs to participate in clustering; below it the cache is
    /// quarantined to the nearest-landmark fallback group.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` (a zero-observation row cannot be placed at
    /// all and is always quarantined).
    pub fn min_observed_features(mut self, min: usize) -> Self {
        assert!(min > 0, "quarantine floor must be at least 1");
        self.min_observed_features = min;
        self
    }

    /// The probe retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The quarantine floor.
    pub fn min_observed(&self) -> usize {
        self.min_observed_features
    }
}

/// What the resilience layer saw and did during one formation run.
///
/// Returned by [`crate::GroupingOutcome::health`] when the run used a
/// [`ResilienceConfig`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FormationHealth {
    /// Probe retry attempts the run performed.
    pub probe_retries: u64,
    /// Measurements abandoned after exhausting retries (or hitting a
    /// dead link, which is never retried).
    pub probe_gave_up: u64,
    /// Total virtual backoff the retries would have slept, in ms.
    pub backoff_ms: u64,
    /// PLSet nodes declared dead (no successful pairwise measurement),
    /// ascending node indices.
    pub dead_landmarks: Vec<usize>,
    /// Landmark slots that were re-elected after their first choice was
    /// found dead.
    pub landmark_failovers: usize,
    /// Feature-matrix cells that held no real measurement and were
    /// masked out of clustering.
    pub masked_cells: usize,
    /// Caches quarantined to the nearest-landmark fallback group
    /// because they observed fewer than
    /// [`ResilienceConfig::min_observed`] features.
    pub quarantined: Vec<CacheId>,
}

impl FormationHealth {
    /// `true` when the run saw no degradation at all: no measurement
    /// was abandoned, no landmark failed over, no feature cell was
    /// masked, and no cache was quarantined. Retries alone (that then
    /// succeeded) keep a run healthy.
    pub fn is_healthy(&self) -> bool {
        self.probe_gave_up == 0
            && self.dead_landmarks.is_empty()
            && self.landmark_failovers == 0
            && self.masked_cells == 0
            && self.quarantined.is_empty()
    }

    /// `true` when any degradation was recorded — the complement of
    /// [`FormationHealth::is_healthy`].
    pub fn is_degraded(&self) -> bool {
        !self.is_healthy()
    }
}

impl fmt::Display for FormationHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_healthy() {
            return write!(
                f,
                "healthy ({} retries, {} ms backoff)",
                self.probe_retries, self.backoff_ms
            );
        }
        write!(
            f,
            "degraded: {} retries, {} gave up, {} ms backoff, \
             {} dead landmarks ({} failed over), {} masked cells, {} quarantined",
            self.probe_retries,
            self.probe_gave_up,
            self.backoff_ms,
            self.dead_landmarks.len(),
            self.landmark_failovers,
            self.masked_cells,
            self.quarantined.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_uses_default_policy() {
        let cfg = ResilienceConfig::new();
        assert_eq!(cfg.retry_policy(), &RetryPolicy::default());
        assert_eq!(cfg.min_observed(), 1);
    }

    #[test]
    #[should_panic(expected = "quarantine floor")]
    fn zero_quarantine_floor_is_rejected() {
        let _ = ResilienceConfig::new().min_observed_features(0);
    }

    #[test]
    fn health_classification() {
        let mut h = FormationHealth::default();
        assert!(h.is_healthy());
        h.probe_retries = 7;
        h.backoff_ms = 350;
        assert!(h.is_healthy(), "recovered retries are not degradation");
        assert!(h.to_string().starts_with("healthy"));

        h.landmark_failovers = 1;
        h.dead_landmarks = vec![4];
        assert!(h.is_degraded());
        let text = h.to_string();
        assert!(text.contains("degraded"), "{text}");
        assert!(text.contains("1 dead landmarks"), "{text}");
    }

    #[test]
    fn quarantine_alone_is_degradation() {
        let h = FormationHealth {
            quarantined: vec![CacheId(3)],
            ..FormationHealth::default()
        };
        assert!(h.is_degraded());
        assert!(h.to_string().contains("1 quarantined"));
    }
}
