//! Incremental group maintenance for dynamic edge networks.
//!
//! The paper assumes "the scale of the edge cache network, and the
//! locations of the edge caches ... are pre-decided" (§2) and leaves
//! dynamics open. Deployments are not static: caches are added during
//! capacity expansion and drained for maintenance. This module provides
//! the incremental operations a GF-Coordinator needs between full
//! re-clusterings:
//!
//! * **admit** — a joining cache probes the existing landmark set,
//!   builds its feature vector, and joins the group with the nearest
//!   cluster center; no other cache moves.
//! * **retire** — a leaving cache is dropped from its group.
//! * **drift tracking** — the maintained interaction cost is compared
//!   against the formation-time cost, so operators can trigger a full
//!   re-run of the scheme once incremental decay crosses a threshold.

use crate::scheme::{GroupingOutcome, SchemeError};
use ecg_coords::{FeatureMatrix, ProbeConfig, Prober};
use ecg_obs::Obs;
use ecg_topology::{CacheId, EdgeNetwork};
use rand::Rng;
use std::fmt;

/// Error from the maintenance operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintenanceError {
    /// The network passed in does not have the expected cache count.
    CacheCountMismatch {
        /// Caches the maintainer tracks.
        expected: usize,
        /// Caches in the supplied network.
        actual: usize,
    },
    /// Retiring this cache would empty its group.
    WouldEmptyGroup {
        /// The group that would become empty.
        group: usize,
    },
    /// The cache id is unknown.
    UnknownCache(CacheId),
    /// The cache is already assigned to a group.
    AlreadyActive(CacheId),
    /// A partial re-formation referenced a group index that does not
    /// exist.
    UnknownGroup(usize),
    /// Pruning dead landmarks would leave too few to position caches —
    /// escalate to a full re-formation instead.
    TooFewLandmarks {
        /// Landmarks that would survive the prune.
        surviving: usize,
    },
}

impl fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintenanceError::CacheCountMismatch { expected, actual } => {
                write!(
                    f,
                    "maintainer tracks {expected} caches, network has {actual}"
                )
            }
            MaintenanceError::WouldEmptyGroup { group } => {
                write!(f, "retiring the cache would empty group {group}")
            }
            MaintenanceError::UnknownCache(c) => write!(f, "unknown cache {c}"),
            MaintenanceError::AlreadyActive(c) => {
                write!(f, "cache {c} is already assigned to a group")
            }
            MaintenanceError::UnknownGroup(g) => write!(f, "unknown group {g}"),
            MaintenanceError::TooFewLandmarks { surviving } => {
                write!(
                    f,
                    "only {surviving} landmarks would survive the prune; re-form fully"
                )
            }
        }
    }
}

impl std::error::Error for MaintenanceError {}

/// What [`GroupMaintainer::retire`] removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetireOutcome {
    /// The group the cache left.
    pub group: usize,
    /// `true` when the departed cache was one of the formation-time
    /// landmarks. Admissions and readmissions keep probing the original
    /// landmark set, so losing a member of it silently degrades every
    /// future position estimate — treat this as a re-formation signal.
    pub was_landmark: bool,
}

/// What [`GroupMaintainer::reform_partial`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PartialReformOutcome {
    /// Dead landmarks pruned from the probing set (their feature
    /// columns dropped everywhere).
    pub pruned_landmarks: usize,
    /// Caches that were re-probed and re-clustered (the members of the
    /// degraded groups).
    pub regrouped: usize,
    /// Of those, how many ended up in a different group.
    pub moved: usize,
    /// Lloyd iterations of the local re-clustering.
    pub iterations: usize,
}

/// Maintains a formed grouping as caches join and leave.
///
/// # Examples
///
/// ```
/// use ecg_core::{GfCoordinator, GroupMaintainer, SchemeConfig};
/// use ecg_coords::ProbeConfig;
/// use ecg_topology::{fixtures::paper_figure1, EdgeNetwork};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
/// let mut rng = StdRng::seed_from_u64(3);
/// let outcome = GfCoordinator::new(
///     SchemeConfig::sl(3).landmarks(3).plset_multiplier(2)
///         .probe(ProbeConfig::noiseless()),
/// )
/// .form_groups(&network, &mut rng)?;
///
/// let mut maintainer = GroupMaintainer::new(&network, outcome, ProbeConfig::noiseless());
/// // A new cache joins 1 ms from Ec0 (and far from everyone else):
/// let grown = network.with_added_cache(
///     12.5,
///     &[1.0, 4.5, 18.0, 15.0, 18.0, 15.0],
/// );
/// let group = maintainer.admit(&grown, &mut rng)?;
/// // It lands in Ec0's group.
/// assert_eq!(group, maintainer.group_of(ecg_topology::CacheId(0)).unwrap());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GroupMaintainer {
    groups: Vec<Vec<CacheId>>,
    assignments: Vec<Option<usize>>,
    landmarks: Vec<usize>,
    centers: FeatureMatrix,
    probe: ProbeConfig,
    formation_cost: f64,
    retired: Vec<CacheId>,
    /// Probe-scratch buffer reused across admit/readmit calls.
    fv_scratch: Vec<f64>,
    /// Completed maintenance operations; keys the event-trace timeline.
    ops: u64,
}

impl GroupMaintainer {
    /// Wraps a freshly formed grouping for incremental maintenance.
    ///
    /// The formation-time average interaction cost (under raw RTTs) is
    /// recorded as the drift baseline.
    pub fn new(network: &EdgeNetwork, outcome: GroupingOutcome, probe: ProbeConfig) -> Self {
        let formation_cost = outcome.average_interaction_cost(|a, b| network.cache_to_cache(a, b));
        GroupMaintainer {
            groups: outcome.groups().to_vec(),
            assignments: outcome.assignments().iter().map(|&g| Some(g)).collect(),
            landmarks: outcome.landmarks().landmarks.clone(),
            centers: outcome.centers().clone(),
            probe,
            formation_cost,
            retired: Vec::new(),
            fv_scratch: Vec::new(),
            ops: 0,
        }
    }

    /// Current groups (retired caches removed, admitted caches added).
    pub fn groups(&self) -> &[Vec<CacheId>] {
        &self.groups
    }

    /// Group of `cache`, or `None` if it was retired or never admitted.
    pub fn group_of(&self, cache: CacheId) -> Option<usize> {
        self.assignments.get(cache.index()).copied().flatten()
    }

    /// Number of caches currently assigned to groups.
    pub fn active_caches(&self) -> usize {
        self.assignments.iter().flatten().count()
    }

    /// Total cache ids tracked, assigned or not (ids are dense
    /// `0..cache_count`).
    pub fn cache_count(&self) -> usize {
        self.assignments.len()
    }

    /// Caches retired so far, in retirement order.
    pub fn retired(&self) -> &[CacheId] {
        &self.retired
    }

    /// The landmark node indices every admission and readmission probes
    /// (node 0 is the origin; cache `Ec_i` is node `i + 1`).
    pub fn landmarks(&self) -> &[usize] {
        &self.landmarks
    }

    /// The cost baseline drift is measured against: the average group
    /// interaction cost at formation time (re-anchored by
    /// [`GroupMaintainer::reform_partial`]).
    pub fn formation_cost(&self) -> f64 {
        self.formation_cost
    }

    /// Admits the newest cache of `network` (id `N-1`, appended via
    /// [`EdgeNetwork::with_added_cache`]) into the nearest group.
    ///
    /// The newcomer probes the original landmark set and is assigned to
    /// the group whose K-means center is closest in feature space —
    /// exactly the assignment rule the clustering itself used, so
    /// admission is consistent with formation.
    ///
    /// Returns the group index it joined.
    ///
    /// # Errors
    ///
    /// Returns [`MaintenanceError::CacheCountMismatch`] if `network`
    /// does not contain exactly one more cache than currently tracked.
    pub fn admit<R: Rng + ?Sized>(
        &mut self,
        network: &EdgeNetwork,
        rng: &mut R,
    ) -> Result<usize, MaintenanceError> {
        self.admit_observed(network, rng, None)
    }

    /// Like [`GroupMaintainer::admit`], but records a
    /// `maintenance.admissions` counter, the newcomer's landmark probes
    /// (`probe.*`), and a `maintenance`/`admit` trace event when an
    /// observability bundle is supplied. With `obs = None` this is
    /// exactly [`GroupMaintainer::admit`].
    ///
    /// # Errors
    ///
    /// Exactly as [`GroupMaintainer::admit`].
    pub fn admit_observed<R: Rng + ?Sized>(
        &mut self,
        network: &EdgeNetwork,
        rng: &mut R,
        mut obs: Option<&mut Obs>,
    ) -> Result<usize, MaintenanceError> {
        let expected = self.assignments.len() + 1;
        if network.cache_count() != expected {
            return Err(MaintenanceError::CacheCountMismatch {
                expected,
                actual: network.cache_count(),
            });
        }
        let newcomer = CacheId(expected - 1);
        let best_group = self.nearest_group(network, newcomer, rng, obs.as_deref_mut());
        self.groups[best_group].push(newcomer);
        self.assignments.push(Some(best_group));
        let op = self.ops;
        self.ops += 1;
        if let Some(o) = obs {
            o.metrics.inc("maintenance.admissions");
            o.trace.push(
                op as f64,
                "maintenance",
                "admit",
                vec![
                    ("cache", newcomer.index().into()),
                    ("group", best_group.into()),
                ],
            );
        }
        Ok(best_group)
    }

    /// Probes the landmark set from `cache`'s position and returns the
    /// group with the nearest K-means center. The probe buffer is reused
    /// across calls, so steady-state admission allocates nothing.
    fn nearest_group<R: Rng + ?Sized>(
        &mut self,
        network: &EdgeNetwork,
        cache: CacheId,
        rng: &mut R,
        obs: Option<&mut Obs>,
    ) -> usize {
        let prober = Prober::new(network.rtt_matrix(), self.probe);
        prober.measure_all_into_observed(
            cache.index() + 1,
            &self.landmarks,
            rng,
            &mut self.fv_scratch,
            obs,
        );
        let fv = &self.fv_scratch;
        self.centers
            .iter_rows()
            .enumerate()
            .map(|(g, center)| {
                let d: f64 = center.iter().zip(fv).map(|(a, b)| (a - b) * (a - b)).sum();
                (g, d)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are not NaN"))
            .expect("at least one group")
            .0
    }

    /// Re-admits a previously retired cache into the nearest group — the
    /// recovery half of churn: a node that was drained (or crashed and
    /// was written off) comes back online at the same network position.
    ///
    /// Like [`GroupMaintainer::admit`], the returning cache re-probes
    /// the original landmark set and joins the group with the closest
    /// K-means center; conditions may have changed since it left, so it
    /// does not simply resume its old membership.
    ///
    /// Returns the group index it joined.
    ///
    /// # Errors
    ///
    /// * [`MaintenanceError::CacheCountMismatch`] if `network` does not
    ///   cover the maintained id space.
    /// * [`MaintenanceError::UnknownCache`] if `cache` was never
    ///   tracked.
    /// * [`MaintenanceError::AlreadyActive`] if `cache` is currently in
    ///   a group.
    pub fn readmit<R: Rng + ?Sized>(
        &mut self,
        network: &EdgeNetwork,
        cache: CacheId,
        rng: &mut R,
    ) -> Result<usize, MaintenanceError> {
        self.readmit_observed(network, cache, rng, None)
    }

    /// Like [`GroupMaintainer::readmit`], but records a
    /// `maintenance.readmissions` counter, the returning cache's landmark
    /// probes (`probe.*`), and a `maintenance`/`readmit` trace event when
    /// an observability bundle is supplied. With `obs = None` this is
    /// exactly [`GroupMaintainer::readmit`].
    ///
    /// # Errors
    ///
    /// Exactly as [`GroupMaintainer::readmit`].
    pub fn readmit_observed<R: Rng + ?Sized>(
        &mut self,
        network: &EdgeNetwork,
        cache: CacheId,
        rng: &mut R,
        mut obs: Option<&mut Obs>,
    ) -> Result<usize, MaintenanceError> {
        if network.cache_count() != self.assignments.len() {
            return Err(MaintenanceError::CacheCountMismatch {
                expected: self.assignments.len(),
                actual: network.cache_count(),
            });
        }
        if cache.index() >= self.assignments.len() {
            return Err(MaintenanceError::UnknownCache(cache));
        }
        if self.assignments[cache.index()].is_some() {
            return Err(MaintenanceError::AlreadyActive(cache));
        }
        let best_group = self.nearest_group(network, cache, rng, obs.as_deref_mut());
        self.groups[best_group].push(cache);
        self.assignments[cache.index()] = Some(best_group);
        self.retired.retain(|&c| c != cache);
        let op = self.ops;
        self.ops += 1;
        if let Some(o) = obs {
            o.metrics.inc("maintenance.readmissions");
            o.trace.push(
                op as f64,
                "maintenance",
                "readmit",
                vec![
                    ("cache", cache.index().into()),
                    ("group", best_group.into()),
                ],
            );
        }
        Ok(best_group)
    }

    /// Retires `cache` from its group. Its id stays reserved (ids are
    /// stable), it simply stops belonging to any group.
    ///
    /// The returned [`RetireOutcome`] flags whether the departed cache
    /// was a formation-time *landmark*: every future admission and
    /// readmission keeps probing it, so its silent loss degrades the
    /// position estimates of newcomers. Callers should treat
    /// [`RetireOutcome::was_landmark`] as a re-formation signal.
    ///
    /// # Errors
    ///
    /// Returns an error if the cache is unknown/already retired, or if
    /// removing it would leave its group empty (re-form instead).
    pub fn retire(&mut self, cache: CacheId) -> Result<RetireOutcome, MaintenanceError> {
        self.retire_observed(cache, None)
    }

    /// Like [`GroupMaintainer::retire`], but records a
    /// `maintenance.retirements` counter (plus
    /// `maintenance.landmark_retirements` when the departed cache was a
    /// landmark) and a `maintenance`/`retire` trace event when an
    /// observability bundle is supplied. With `obs = None` this is
    /// exactly [`GroupMaintainer::retire`].
    ///
    /// # Errors
    ///
    /// Exactly as [`GroupMaintainer::retire`].
    pub fn retire_observed(
        &mut self,
        cache: CacheId,
        obs: Option<&mut Obs>,
    ) -> Result<RetireOutcome, MaintenanceError> {
        let Some(group) = self.group_of(cache) else {
            return Err(MaintenanceError::UnknownCache(cache));
        };
        if self.groups[group].len() == 1 {
            return Err(MaintenanceError::WouldEmptyGroup { group });
        }
        // Cache Ec_i is node i + 1 in the landmark index space.
        let was_landmark = self.landmarks.contains(&(cache.index() + 1));
        self.groups[group].retain(|&c| c != cache);
        self.assignments[cache.index()] = None;
        self.retired.push(cache);
        let op = self.ops;
        self.ops += 1;
        if let Some(o) = obs {
            o.metrics.inc("maintenance.retirements");
            if was_landmark {
                o.metrics.inc("maintenance.landmark_retirements");
            }
            o.trace.push(
                op as f64,
                "maintenance",
                "retire",
                vec![
                    ("cache", cache.index().into()),
                    ("group", group.into()),
                    ("was_landmark", u64::from(was_landmark).into()),
                ],
            );
        }
        Ok(RetireOutcome {
            group,
            was_landmark,
        })
    }

    /// Current average group interaction cost under `cost`, over the
    /// active membership.
    pub fn current_cost(&self, cost: impl Fn(CacheId, CacheId) -> f64 + Sync) -> f64 {
        let groups_idx: Vec<Vec<usize>> = self
            .groups
            .iter()
            .map(|g| g.iter().map(|c| c.index()).collect())
            .collect();
        ecg_clustering::average_group_interaction_cost(&groups_idx, |a, b| {
            cost(CacheId(a), CacheId(b))
        })
    }

    /// Ratio of the current interaction cost (under the given network's
    /// RTTs) to the formation-time cost. `1.0` means no drift; values
    /// above ~1.2–1.5 are a reasonable re-clustering trigger.
    ///
    /// # Errors
    ///
    /// Returns [`MaintenanceError::CacheCountMismatch`] if `network`
    /// covers fewer caches than the highest active id.
    pub fn drift(&self, network: &EdgeNetwork) -> Result<f64, MaintenanceError> {
        if network.cache_count() < self.assignments.len() {
            return Err(MaintenanceError::CacheCountMismatch {
                expected: self.assignments.len(),
                actual: network.cache_count(),
            });
        }
        let current = self.current_cost(|a, b| network.cache_to_cache(a, b));
        Ok(if self.formation_cost > 0.0 {
            current / self.formation_cost
        } else if current > 0.0 {
            f64::INFINITY
        } else {
            1.0
        })
    }

    /// Returns `true` once drift exceeds `threshold` — the signal to run
    /// the full scheme again.
    ///
    /// # Errors
    ///
    /// Propagates [`MaintenanceError`] from [`GroupMaintainer::drift`].
    pub fn needs_reformation(
        &self,
        network: &EdgeNetwork,
        threshold: f64,
    ) -> Result<bool, MaintenanceError> {
        Ok(self.drift(network)? > threshold)
    }

    /// Re-clusters only the groups flagged degraded, in place, while
    /// everything else keeps its membership — the middle ground between
    /// per-cache maintenance and a full re-run of the scheme.
    ///
    /// Three steps, all deterministic for a fixed RNG:
    ///
    /// 1. **Prune dead landmarks.** Every node index in
    ///    `dead_landmarks` is dropped from the probing set and its
    ///    feature column removed from all cluster centers, so no future
    ///    admission probes a gone node.
    /// 2. **Re-probe the degraded members.** Each member of a degraded
    ///    group measures the surviving landmark set afresh.
    /// 3. **Warm-started local Lloyd.** The degraded groups' (pruned)
    ///    centers seed a K-means over just those members; empty
    ///    clusters deterministically steal the point farthest from its
    ///    center, so no degraded group ever ends up empty.
    ///
    /// The drift baseline is re-anchored to the post-repair cost, so
    /// [`GroupMaintainer::drift`] measures decay since *this* repair.
    ///
    /// # Errors
    ///
    /// * [`MaintenanceError::CacheCountMismatch`] if `network` does not
    ///   cover the maintained id space.
    /// * [`MaintenanceError::UnknownGroup`] for an out-of-range group
    ///   index.
    /// * [`MaintenanceError::TooFewLandmarks`] if fewer than two
    ///   landmarks would survive the prune — the caller should escalate
    ///   to [`GroupMaintainer::reform`]. The maintainer is untouched.
    pub fn reform_partial<R: Rng + ?Sized>(
        &mut self,
        network: &EdgeNetwork,
        degraded_groups: &[usize],
        dead_landmarks: &[usize],
        rng: &mut R,
    ) -> Result<PartialReformOutcome, MaintenanceError> {
        self.reform_partial_observed(network, degraded_groups, dead_landmarks, rng, None)
    }

    /// Like [`GroupMaintainer::reform_partial`], but records a
    /// `maintenance.partial_reforms` counter, the members' landmark
    /// probes, and a `maintenance`/`partial_reform` trace event when an
    /// observability bundle is supplied.
    ///
    /// # Errors
    ///
    /// Exactly as [`GroupMaintainer::reform_partial`].
    pub fn reform_partial_observed<R: Rng + ?Sized>(
        &mut self,
        network: &EdgeNetwork,
        degraded_groups: &[usize],
        dead_landmarks: &[usize],
        rng: &mut R,
        mut obs: Option<&mut Obs>,
    ) -> Result<PartialReformOutcome, MaintenanceError> {
        if network.cache_count() < self.assignments.len() {
            return Err(MaintenanceError::CacheCountMismatch {
                expected: self.assignments.len(),
                actual: network.cache_count(),
            });
        }
        let mut degraded: Vec<usize> = degraded_groups.to_vec();
        degraded.sort_unstable();
        degraded.dedup();
        if let Some(&bad) = degraded.iter().find(|&&g| g >= self.groups.len()) {
            return Err(MaintenanceError::UnknownGroup(bad));
        }
        let keep: Vec<usize> = (0..self.landmarks.len())
            .filter(|&i| !dead_landmarks.contains(&self.landmarks[i]))
            .collect();
        let pruned_landmarks = self.landmarks.len() - keep.len();
        if keep.len() < 2 {
            return Err(MaintenanceError::TooFewLandmarks {
                surviving: keep.len(),
            });
        }
        if pruned_landmarks > 0 {
            self.landmarks = keep.iter().map(|&i| self.landmarks[i]).collect();
            let rows: Vec<Vec<f64>> = self
                .centers
                .iter_rows()
                .map(|row| keep.iter().map(|&i| row[i]).collect())
                .collect();
            self.centers = FeatureMatrix::from_rows(&rows);
        }

        // Re-probe the degraded groups' members (group order, then
        // member order — the RNG draw order is part of the contract).
        let members: Vec<CacheId> = degraded
            .iter()
            .flat_map(|&g| self.groups[g].iter().copied())
            .collect();
        let mut features: Vec<Vec<f64>> = Vec::with_capacity(members.len());
        {
            let prober = Prober::new(network.rtt_matrix(), self.probe);
            for &c in &members {
                prober.measure_all_into_observed(
                    c.index() + 1,
                    &self.landmarks,
                    rng,
                    &mut self.fv_scratch,
                    obs.as_deref_mut(),
                );
                features.push(self.fv_scratch.clone());
            }
        }

        // Warm-started Lloyd over just these members, seeded from the
        // degraded groups' surviving center coordinates.
        let k = degraded.len();
        let mut centers: Vec<Vec<f64>> = degraded
            .iter()
            .map(|&g| self.centers.row(g).to_vec())
            .collect();
        let mut assign = vec![0usize; members.len()];
        let mut iterations = 0usize;
        for round in 0..50 {
            let mut changed = false;
            for (i, fv) in features.iter().enumerate() {
                let best = centers
                    .iter()
                    .enumerate()
                    .map(|(j, c)| (j, sq_dist(c, fv)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are not NaN"))
                    .map(|(j, _)| j)
                    .unwrap_or(0);
                if assign[i] != best || round == 0 {
                    assign[i] = best;
                    changed = true;
                }
            }
            // Deterministic empty-cluster fixup: in cluster-index order,
            // an empty cluster steals the point farthest from its own
            // center among clusters that can spare one (first index wins
            // ties).
            loop {
                let mut sizes = vec![0usize; k];
                for &a in &assign {
                    sizes[a] += 1;
                }
                let Some(empty) = (0..k).find(|&j| sizes[j] == 0) else {
                    break;
                };
                let mut donor: Option<(f64, usize)> = None;
                for (i, fv) in features.iter().enumerate() {
                    if sizes[assign[i]] < 2 {
                        continue;
                    }
                    let d = sq_dist(&centers[assign[i]], fv);
                    if donor.is_none_or(|(bd, _)| d > bd) {
                        donor = Some((d, i));
                    }
                }
                let Some((_, i)) = donor else { break };
                assign[i] = empty;
                changed = true;
            }
            iterations = round + 1;
            if !changed {
                break;
            }
            let dim = self.centers.dim();
            for (j, center) in centers.iter_mut().enumerate() {
                let mut sum = vec![0.0f64; dim];
                let mut count = 0usize;
                for (i, fv) in features.iter().enumerate() {
                    if assign[i] == j {
                        count += 1;
                        for (s, v) in sum.iter_mut().zip(fv) {
                            *s += v;
                        }
                    }
                }
                if count > 0 {
                    for s in &mut sum {
                        *s /= count as f64;
                    }
                    *center = sum;
                }
            }
        }

        // Write the repaired membership and centers back.
        let mut moved = 0usize;
        let mut new_groups: Vec<Vec<CacheId>> = vec![Vec::new(); k];
        for (i, &c) in members.iter().enumerate() {
            let g = degraded[assign[i]];
            if self.assignments[c.index()] != Some(g) {
                moved += 1;
            }
            new_groups[assign[i]].push(c);
            self.assignments[c.index()] = Some(g);
        }
        for (slot, &g) in degraded.iter().enumerate() {
            self.groups[g] = std::mem::take(&mut new_groups[slot]);
        }
        let rows: Vec<Vec<f64>> = self
            .centers
            .iter_rows()
            .enumerate()
            .map(|(g, row)| match degraded.iter().position(|&d| d == g) {
                Some(slot) => centers[slot].clone(),
                None => row.to_vec(),
            })
            .collect();
        self.centers = FeatureMatrix::from_rows(&rows);

        // Re-anchor the drift baseline to the repaired grouping.
        self.formation_cost = self.current_cost(|a, b| network.cache_to_cache(a, b));
        let op = self.ops;
        self.ops += 1;
        let outcome = PartialReformOutcome {
            pruned_landmarks,
            regrouped: members.len(),
            moved,
            iterations,
        };
        if let Some(o) = obs {
            o.metrics.inc("maintenance.partial_reforms");
            o.trace.push(
                op as f64,
                "maintenance",
                "partial_reform",
                vec![
                    ("groups", (degraded.len() as u64).into()),
                    ("pruned_landmarks", (pruned_landmarks as u64).into()),
                    ("moved", (moved as u64).into()),
                ],
            );
        }
        Ok(outcome)
    }

    /// Consumes the maintainer and re-forms groups from scratch with the
    /// given coordinator, returning a fresh maintainer.
    ///
    /// # Errors
    ///
    /// Propagates [`SchemeError`] from the coordinator.
    pub fn reform<R: Rng + ?Sized>(
        self,
        coordinator: &crate::scheme::GfCoordinator,
        network: &EdgeNetwork,
        rng: &mut R,
    ) -> Result<GroupMaintainer, SchemeError> {
        let outcome = coordinator.form_groups(network, rng)?;
        Ok(GroupMaintainer::new(network, outcome, self.probe))
    }
}

/// Squared Euclidean distance between two equal-length vectors.
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{GfCoordinator, SchemeConfig};
    use ecg_topology::fixtures::paper_figure1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn formed() -> (EdgeNetwork, GroupMaintainer, StdRng) {
        let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
        // Find a seed that yields the natural pairs for determinism.
        for seed in 0..100 {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = GfCoordinator::new(
                SchemeConfig::sl(3)
                    .landmarks(3)
                    .plset_multiplier(2)
                    .probe(ProbeConfig::noiseless()),
            )
            .form_groups(&network, &mut rng)
            .unwrap();
            let mut groups: Vec<Vec<usize>> = outcome
                .groups()
                .iter()
                .map(|g| g.iter().map(|c| c.index()).collect())
                .collect();
            groups.sort();
            if groups == vec![vec![0, 1], vec![2, 3], vec![4, 5]] {
                let m = GroupMaintainer::new(&network, outcome, ProbeConfig::noiseless());
                return (network, m, rng);
            }
        }
        panic!("no seed produced the natural pairs");
    }

    #[test]
    fn admit_joins_nearest_group() {
        let (network, mut m, mut rng) = formed();
        // Newcomer adjacent to the Ec4/Ec5 pair.
        let grown = network.with_added_cache(8.2, &[14.4, 11.3, 14.4, 11.3, 1.0, 1.0]);
        let g = m.admit(&grown, &mut rng).unwrap();
        assert_eq!(g, m.group_of(CacheId(4)).unwrap());
        assert_eq!(m.group_of(CacheId(6)), Some(g));
        assert_eq!(m.active_caches(), 7);
        assert!(m.groups()[g].contains(&CacheId(6)));
    }

    #[test]
    fn admit_requires_grown_network() {
        let (network, mut m, mut rng) = formed();
        let err = m.admit(&network, &mut rng).unwrap_err();
        assert!(matches!(err, MaintenanceError::CacheCountMismatch { .. }));
    }

    #[test]
    fn retire_removes_from_group() {
        let (_, mut m, _) = formed();
        let group = m.group_of(CacheId(0)).unwrap();
        m.retire(CacheId(0)).unwrap();
        assert_eq!(m.group_of(CacheId(0)), None);
        assert!(!m.groups()[group].contains(&CacheId(0)));
        assert_eq!(m.retired(), &[CacheId(0)]);
        assert_eq!(m.active_caches(), 5);
        // Retiring again is an error.
        assert_eq!(
            m.retire(CacheId(0)),
            Err(MaintenanceError::UnknownCache(CacheId(0)))
        );
    }

    #[test]
    fn retiring_a_landmark_is_flagged() {
        // Regression: a departing landmark used to be indistinguishable
        // from any other retirement, so callers kept probing a gone
        // node for every future admission.
        let (_, mut m, _) = formed();
        let landmark_cache = m
            .landmarks
            .iter()
            .copied()
            .find(|&n| n > 0)
            .map(|n| CacheId(n - 1))
            .expect("formation always has a cache landmark");
        let plain_cache = (0..m.cache_count())
            .map(CacheId)
            .find(|c| !m.landmarks.contains(&(c.index() + 1)))
            .expect("some cache is not a landmark");

        let mut obs = Obs::new();
        let lm_outcome = m.retire_observed(landmark_cache, Some(&mut obs)).unwrap();
        assert!(lm_outcome.was_landmark, "landmark retirement not flagged");
        assert_eq!(obs.metrics.counter("maintenance.landmark_retirements"), 1);

        let (_, mut m2, _) = formed();
        let plain_outcome = m2.retire_observed(plain_cache, Some(&mut obs)).unwrap();
        assert!(!plain_outcome.was_landmark, "ordinary retirement flagged");
        assert_eq!(
            plain_outcome.group,
            m.group_of(plain_cache).expect("still active in m")
        );
        // Second retirement was not a landmark: counter unchanged.
        assert_eq!(obs.metrics.counter("maintenance.landmark_retirements"), 1);
        assert_eq!(obs.metrics.counter("maintenance.retirements"), 2);
    }

    #[test]
    fn readmit_restores_retired_cache() {
        let (network, mut m, mut rng) = formed();
        let original_group = m.group_of(CacheId(0)).unwrap();
        m.retire(CacheId(0)).unwrap();
        assert_eq!(m.active_caches(), 5);
        let g = m.readmit(&network, CacheId(0), &mut rng).unwrap();
        // Noiseless probing at an unchanged position: it rejoins its
        // original group.
        assert_eq!(g, original_group);
        assert_eq!(m.group_of(CacheId(0)), Some(g));
        assert_eq!(m.active_caches(), 6);
        assert!(m.retired().is_empty());
        // Round trip restores the formation cost exactly.
        let drift = m.drift(&network).unwrap();
        assert!((drift - 1.0).abs() < 1e-9, "drift {drift}");
    }

    #[test]
    fn readmit_rejects_active_and_unknown_caches() {
        let (network, mut m, mut rng) = formed();
        assert_eq!(
            m.readmit(&network, CacheId(0), &mut rng),
            Err(MaintenanceError::AlreadyActive(CacheId(0)))
        );
        assert_eq!(
            m.readmit(&network, CacheId(9), &mut rng),
            Err(MaintenanceError::UnknownCache(CacheId(9)))
        );
        let grown = network.with_added_cache(1.0, &[1.0; 6]);
        m.retire(CacheId(0)).unwrap();
        assert!(matches!(
            m.readmit(&grown, CacheId(0), &mut rng),
            Err(MaintenanceError::CacheCountMismatch { .. })
        ));
    }

    #[test]
    fn admit_then_retire_round_trip_preserves_group_sizes() {
        let (network, mut m, mut rng) = formed();
        let before: Vec<usize> = m.groups().iter().map(Vec::len).collect();
        let grown = network.with_added_cache(8.2, &[14.4, 11.3, 14.4, 11.3, 1.0, 1.0]);
        let g = m.admit(&grown, &mut rng).unwrap();
        assert_eq!(m.groups()[g].len(), before[g] + 1);
        m.retire(CacheId(6)).unwrap();
        let after: Vec<usize> = m.groups().iter().map(Vec::len).collect();
        assert_eq!(after, before);
        assert_eq!(m.active_caches(), 6);
        assert_eq!(m.retired(), &[CacheId(6)]);
    }

    #[test]
    fn drift_is_monotone_under_repeated_retire() {
        // One big group; each round retires the best-connected member
        // (minimum mean RTT to the others). Removing a below-average
        // contributor can only raise the surviving mean pairwise cost,
        // so the drift series must be non-decreasing.
        let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
        let mut rng = StdRng::seed_from_u64(0);
        let outcome = GfCoordinator::new(
            SchemeConfig::sl(1)
                .landmarks(3)
                .plset_multiplier(2)
                .probe(ProbeConfig::noiseless()),
        )
        .form_groups(&network, &mut rng)
        .unwrap();
        let mut m = GroupMaintainer::new(&network, outcome, ProbeConfig::noiseless());
        let mut last = m.drift(&network).unwrap();
        assert!((last - 1.0).abs() < 1e-9);
        while m.groups()[0].len() > 2 {
            let members = m.groups()[0].clone();
            let mean_rtt = |c: CacheId| {
                members
                    .iter()
                    .filter(|&&o| o != c)
                    .map(|&o| network.cache_to_cache(c, o))
                    .sum::<f64>()
            };
            let victim = *members
                .iter()
                .min_by(|&&a, &&b| mean_rtt(a).partial_cmp(&mean_rtt(b)).unwrap())
                .unwrap();
            m.retire(victim).unwrap();
            let drift = m.drift(&network).unwrap();
            assert!(drift >= last - 1e-9, "drift fell from {last} to {drift}");
            last = drift;
        }
        assert!(last >= 1.0 - 1e-9, "final drift {last}");
    }

    #[test]
    fn retire_refuses_to_empty_a_group() {
        let (_, mut m, _) = formed();
        m.retire(CacheId(0)).unwrap();
        let err = m.retire(CacheId(1)).unwrap_err();
        assert!(matches!(err, MaintenanceError::WouldEmptyGroup { .. }));
    }

    #[test]
    fn drift_is_one_when_nothing_changes() {
        let (network, m, _) = formed();
        let drift = m.drift(&network).unwrap();
        assert!((drift - 1.0).abs() < 1e-9, "drift {drift}");
        assert!(!m.needs_reformation(&network, 1.2).unwrap());
    }

    #[test]
    fn bad_admissions_raise_drift() {
        let (network, mut m, mut rng) = formed();
        // A newcomer far from everyone joins some group and stretches it.
        let grown = network.with_added_cache(200.0, &[190.0; 6]);
        m.admit(&grown, &mut rng).unwrap();
        let drift = m.drift(&grown).unwrap();
        assert!(drift > 1.5, "drift {drift}");
        assert!(m.needs_reformation(&grown, 1.2).unwrap());
    }

    #[test]
    fn reform_resets_drift() {
        let (network, mut m, mut rng) = formed();
        let grown = network.with_added_cache(200.0, &[190.0; 6]);
        m.admit(&grown, &mut rng).unwrap();
        let coordinator = GfCoordinator::new(
            SchemeConfig::sl(3)
                .landmarks(3)
                .plset_multiplier(2)
                .probe(ProbeConfig::noiseless()),
        );
        let fresh = m.reform(&coordinator, &grown, &mut rng).unwrap();
        let drift = fresh.drift(&grown).unwrap();
        assert!((drift - 1.0).abs() < 1e-9);
        assert_eq!(fresh.active_caches(), 7);
    }

    #[test]
    fn observed_ops_match_plain_and_record_lifecycle() {
        let (network, mut plain, mut rng_a) = formed();
        let (_, mut observed, mut rng_b) = formed();
        let grown = network.with_added_cache(8.2, &[14.4, 11.3, 14.4, 11.3, 1.0, 1.0]);
        let mut obs = Obs::new();

        let ga = plain.admit(&grown, &mut rng_a).unwrap();
        plain.retire(CacheId(0)).unwrap();
        let ra = plain.readmit(&grown, CacheId(0), &mut rng_a).unwrap();

        let gb = observed
            .admit_observed(&grown, &mut rng_b, Some(&mut obs))
            .unwrap();
        observed
            .retire_observed(CacheId(0), Some(&mut obs))
            .unwrap();
        let rb = observed
            .readmit_observed(&grown, CacheId(0), &mut rng_b, Some(&mut obs))
            .unwrap();

        // Instrumentation must not perturb maintenance decisions.
        assert_eq!((ga, ra), (gb, rb));
        assert_eq!(plain, observed);

        assert_eq!(obs.metrics.counter("maintenance.admissions"), 1);
        assert_eq!(obs.metrics.counter("maintenance.retirements"), 1);
        assert_eq!(obs.metrics.counter("maintenance.readmissions"), 1);
        // Admit + readmit each probe every landmark once.
        assert_eq!(
            obs.metrics.counter("probe.measurements"),
            2 * observed.landmarks.len() as u64
        );

        let kinds: Vec<&str> = obs.trace.events().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["admit", "retire", "readmit"]);
        // Trace time is the per-maintainer operation counter.
        let times: Vec<f64> = obs.trace.events().map(|e| e.t).collect();
        assert_eq!(times, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn error_display() {
        let e = MaintenanceError::WouldEmptyGroup { group: 2 };
        assert!(e.to_string().contains("group 2"));
        let e = MaintenanceError::CacheCountMismatch {
            expected: 5,
            actual: 4,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('4'));
        let e = MaintenanceError::UnknownGroup(7);
        assert!(e.to_string().contains('7'));
        let e = MaintenanceError::TooFewLandmarks { surviving: 1 };
        assert!(e.to_string().contains("1 landmarks"));
    }

    #[test]
    fn failed_retire_leaves_state_untouched() {
        // Regression for the empty-group guard: a refused retirement
        // must not leak partial state (membership, retired list, or the
        // ops counter that keys the trace timeline).
        let (_, mut m, _) = formed();
        m.retire(CacheId(0)).unwrap();
        let before = m.clone();
        let err = m.retire(CacheId(1)).unwrap_err();
        assert!(matches!(err, MaintenanceError::WouldEmptyGroup { .. }));
        assert_eq!(m, before, "failed retire mutated the maintainer");
        assert_eq!(m.group_of(CacheId(1)), before.group_of(CacheId(1)));
        assert_eq!(m.retired(), &[CacheId(0)]);
    }

    #[test]
    fn partial_reform_regroups_only_flagged_groups() {
        let (network, mut m, mut rng) = formed();
        // Stretch one group with a far-away newcomer, then repair only
        // that group: the other groups' membership must be untouched.
        let grown = network.with_added_cache(200.0, &[190.0; 6]);
        let g = m.admit(&grown, &mut rng).unwrap();
        let others: Vec<Vec<CacheId>> = m
            .groups()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != g)
            .map(|(_, grp)| grp.clone())
            .collect();
        assert!(m.drift(&grown).unwrap() > 1.5);

        let out = m.reform_partial(&grown, &[g], &[], &mut rng).unwrap();
        assert_eq!(out.pruned_landmarks, 0);
        assert_eq!(out.regrouped, m.groups()[g].len());
        assert!(out.iterations >= 1);
        let after: Vec<Vec<CacheId>> = m
            .groups()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != g)
            .map(|(_, grp)| grp.clone())
            .collect();
        assert_eq!(others, after, "untouched groups changed membership");
        // The baseline re-anchors: drift is back at 1.0 by definition.
        let drift = m.drift(&grown).unwrap();
        assert!((drift - 1.0).abs() < 1e-9, "drift {drift}");
        assert_eq!(m.active_caches(), 7);
    }

    #[test]
    fn partial_reform_prunes_dead_landmarks() {
        let (network, mut m, mut rng) = formed();
        let original = m.landmarks().to_vec();
        assert!(original.len() >= 3);
        let dead = original[0];
        let out = m.reform_partial(&network, &[0], &[dead], &mut rng).unwrap();
        assert_eq!(out.pruned_landmarks, 1);
        assert_eq!(m.landmarks().len(), original.len() - 1);
        assert!(!m.landmarks().contains(&dead));
        // Admission still works against the pruned landmark set.
        let grown = network.with_added_cache(8.2, &[14.4, 11.3, 14.4, 11.3, 1.0, 1.0]);
        m.admit(&grown, &mut rng).unwrap();
        assert_eq!(m.active_caches(), 7);
    }

    #[test]
    fn partial_reform_escalation_and_bad_group() {
        let (network, mut m, mut rng) = formed();
        let all = m.landmarks().to_vec();
        let before = m.clone();
        // Killing all landmarks must refuse and leave the maintainer
        // untouched — the caller escalates to a full reform.
        let err = m
            .reform_partial(&network, &[0], &all, &mut rng)
            .unwrap_err();
        assert!(matches!(err, MaintenanceError::TooFewLandmarks { .. }));
        assert_eq!(m, before);
        let err = m.reform_partial(&network, &[9], &[], &mut rng).unwrap_err();
        assert_eq!(err, MaintenanceError::UnknownGroup(9));
        assert_eq!(m, before);
    }

    #[test]
    fn partial_reform_is_deterministic_and_observed_matches_plain() {
        let (network, mut plain, _) = formed();
        let (_, mut observed, _) = formed();
        let grown = network.with_added_cache(200.0, &[190.0; 6]);
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let ga = plain.admit(&grown, &mut rng_a).unwrap();
        let gb = observed.admit(&grown, &mut rng_b).unwrap();
        assert_eq!(ga, gb);

        let mut obs = Obs::new();
        let oa = plain
            .reform_partial(&grown, &[ga], &[], &mut rng_a)
            .unwrap();
        let ob = observed
            .reform_partial_observed(&grown, &[gb], &[], &mut rng_b, Some(&mut obs))
            .unwrap();
        assert_eq!(oa, ob);
        assert_eq!(plain, observed, "instrumentation perturbed the repair");
        assert_eq!(obs.metrics.counter("maintenance.partial_reforms"), 1);
        let kinds: Vec<&str> = obs.trace.events().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["partial_reform"]);
    }
}
