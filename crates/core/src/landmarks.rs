//! Landmark selection (§3.1 of the paper).
//!
//! The quality of the landmark set determines the accuracy of every
//! downstream position estimate, and a good set is *well dispersed*. The
//! SL scheme approximates the dispersal criterion cheaply:
//!
//! 1. The origin server is always a landmark.
//! 2. A random *potential landmark set* (PLSet) of `M × (L-1)` caches is
//!    drawn; only those caches measure their pairwise distances — this
//!    bounds the probing overhead to `O((M·L)²)` instead of `O(N²)`.
//! 3. `L-1` caches are picked from the PLSet greedily, each maximizing
//!    the current `MinDist(LmSet)` (the minimum pairwise distance within
//!    the landmark set).
//!
//! The module also implements the two comparison selectors of §5.1:
//! uniform random selection, and the adversarial *Min-Dist* selector
//! that greedily *minimizes* `MinDist(LmSet)`.

use ecg_coords::{Measurement, Prober, RetryPolicy};
use ecg_obs::Obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// Candidate count above which the greedy arg-max fans out across
/// [`ecg_par`] workers. Paper-scale PLSets (tens of candidates) stay on
/// the sequential branch; the parallel branch only engages at bench
/// scale, and is bit-identical anyway (see [`max_min_fill`]).
const PAR_THRESHOLD: usize = 512;

/// Strategy for choosing the landmark set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LandmarkSelector {
    /// The SL scheme's greedy max–min dispersal selection from the
    /// PLSet. The default.
    #[default]
    GreedyMaxMin,
    /// Uniform random landmarks (first baseline of Figure 4/5/6).
    Random,
    /// Greedy *minimum* dispersal — the pathological baseline the paper
    /// calls the "minimum distance landmarks selection technique".
    MinDist,
}

impl fmt::Display for LandmarkSelector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LandmarkSelector::GreedyMaxMin => "greedy (SL)",
            LandmarkSelector::Random => "random",
            LandmarkSelector::MinDist => "min-dist",
        };
        f.write_str(name)
    }
}

/// Error from [`select_landmarks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LandmarkError {
    /// Fewer than two landmarks were requested (the origin alone is not
    /// a frame of reference).
    TooFewLandmarks {
        /// Requested landmark count.
        requested: usize,
    },
    /// The network has fewer caches than `L - 1`.
    TooFewCaches {
        /// Caches available.
        caches: usize,
        /// Landmarks requested.
        landmarks: usize,
    },
    /// `M` must be at least 1.
    BadMultiplier,
}

impl fmt::Display for LandmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LandmarkError::TooFewLandmarks { requested } => {
                write!(f, "need at least 2 landmarks, requested {requested}")
            }
            LandmarkError::TooFewCaches { caches, landmarks } => write!(
                f,
                "{landmarks} landmarks need {} caches, only {caches} available",
                landmarks - 1
            ),
            LandmarkError::BadMultiplier => write!(f, "PLSet multiplier M must be >= 1"),
        }
    }
}

impl std::error::Error for LandmarkError {}

/// Result of landmark selection.
///
/// Node indices follow the prober's matrix: `0` is the origin server,
/// `i + 1` is cache `Ec_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct LandmarkSelection {
    /// The chosen landmark node indices; `landmarks[0] == 0` (the
    /// origin) always.
    pub landmarks: Vec<usize>,
    /// The potential landmark set the greedy phase drew from (empty for
    /// the random selector, which probes nothing).
    pub plset: Vec<usize>,
    /// `MinDist(LmSet)` of the final set under the *measured* distances,
    /// or `None` for the random selector (it never measures).
    pub min_dist_ms: Option<f64>,
}

/// Selects `l` landmarks for the network behind `prober`.
///
/// # Errors
///
/// Returns [`LandmarkError`] if `l < 2`, `m < 1`, or the network is too
/// small.
///
/// # Examples
///
/// Reproduces the worked example of Figure 1 (PLSet `{Ec0, Ec1, Ec3,
/// Ec4}`, `L = 3`): the greedy phase picks `Ec0` (12 ms from the origin)
/// then `Ec4`, giving landmarks `{Os, Ec0, Ec4}` with
/// `MinDist = 12 ms` — see this module's tests.
pub fn select_landmarks<R: Rng + ?Sized>(
    prober: &Prober<'_>,
    selector: LandmarkSelector,
    l: usize,
    m: usize,
    rng: &mut R,
) -> Result<LandmarkSelection, LandmarkError> {
    if l < 2 {
        return Err(LandmarkError::TooFewLandmarks { requested: l });
    }
    if m < 1 {
        return Err(LandmarkError::BadMultiplier);
    }
    let caches = prober.node_count() - 1;
    if caches < l - 1 {
        return Err(LandmarkError::TooFewCaches {
            caches,
            landmarks: l,
        });
    }

    if selector == LandmarkSelector::Random {
        // Uniform L-1 caches plus the origin; no measurement phase.
        let mut indices: Vec<usize> = (1..=caches).collect();
        for i in 0..(l - 1) {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        let mut landmarks = vec![0usize];
        landmarks.extend_from_slice(&indices[..l - 1]);
        return Ok(LandmarkSelection {
            landmarks,
            plset: Vec::new(),
            min_dist_ms: None,
        });
    }

    // Phase 1: draw the PLSet — M·(L-1) distinct caches (capped at N).
    let plset_size = (m * (l - 1)).min(caches);
    let mut indices: Vec<usize> = (1..=caches).collect();
    for i in 0..plset_size {
        let j = rng.gen_range(i..indices.len());
        indices.swap(i, j);
    }
    let plset: Vec<usize> = indices[..plset_size].to_vec();

    // The potential landmarks measure their distances to each other and
    // to the origin.
    let mut measured: HashMap<(usize, usize), f64> = HashMap::new();
    let mut nodes = vec![0usize];
    nodes.extend_from_slice(&plset);
    for (a_pos, &a) in nodes.iter().enumerate() {
        for &b in nodes.iter().skip(a_pos + 1) {
            let d = prober.measure(a, b, rng);
            measured.insert((a.min(b), a.max(b)), d);
        }
    }
    let dist = |a: usize, b: usize| -> f64 { measured[&(a.min(b), a.max(b))] };

    // Phase 2: greedy max–min (SL) or min (Min-Dist baseline).
    let maximize = selector == LandmarkSelector::GreedyMaxMin;
    let mut lm_set = vec![0usize];
    let mut remaining = plset.clone();
    max_min_fill(&mut lm_set, &mut remaining, l, maximize, &dist);

    let min_dist = pairwise_min_dist(&lm_set, &dist);
    Ok(LandmarkSelection {
        landmarks: lm_set,
        plset,
        min_dist_ms: Some(min_dist),
    })
}

/// Like [`select_landmarks`], but the `O((M·L)²)` PLSet measurement
/// phase fans out across [`ecg_par`] workers: pair `p` (in the same
/// `(a, b)` enumeration order as the sequential pass) draws its probe
/// noise from an independent `StdRng` stream seeded with
/// [`ecg_par::derive_seed`]`(master, p)`, where `master` is one `u64`
/// drawn from `rng`. Results therefore depend only on the seed, **never
/// on the thread count** — but, like
/// [`ecg_coords::build_feature_matrix_par`], the per-pair streams are
/// *not* draw-for-draw compatible with the sequential prober loop, so
/// with a noisy [`ecg_coords::ProbeConfig`] the measured values (and
/// possibly the selection) differ from [`select_landmarks`]. Under a
/// noiseless config a measurement draws nothing, so the selection is
/// **identical** to the sequential pass (pinned by the equivalence
/// tests).
///
/// The greedy phase itself goes through the same [`max_min_fill`] as
/// the sequential selector (chunk-parallel arg-max above
/// [`PAR_THRESHOLD`] candidates, bit-identical by construction), and
/// the `Random` selector measures nothing and delegates outright.
///
/// # Errors
///
/// Exactly as [`select_landmarks`].
pub fn select_landmarks_par<R: Rng + ?Sized>(
    prober: &Prober<'_>,
    selector: LandmarkSelector,
    l: usize,
    m: usize,
    rng: &mut R,
) -> Result<LandmarkSelection, LandmarkError> {
    if selector == LandmarkSelector::Random {
        return select_landmarks(prober, selector, l, m, rng);
    }
    if l < 2 {
        return Err(LandmarkError::TooFewLandmarks { requested: l });
    }
    if m < 1 {
        return Err(LandmarkError::BadMultiplier);
    }
    let caches = prober.node_count() - 1;
    if caches < l - 1 {
        return Err(LandmarkError::TooFewCaches {
            caches,
            landmarks: l,
        });
    }

    // Phase 1: the same PLSet draw as the sequential path (same RNG
    // stream), then one master seed for the measurement streams.
    let plset_size = (m * (l - 1)).min(caches);
    let mut indices: Vec<usize> = (1..=caches).collect();
    for i in 0..plset_size {
        let j = rng.gen_range(i..indices.len());
        indices.swap(i, j);
    }
    let plset: Vec<usize> = indices[..plset_size].to_vec();
    let master: u64 = rng.gen();

    // Pairs in the sequential enumeration order; pair p gets its own
    // derived stream, measured in parallel over fixed chunks and
    // reassembled in order.
    let mut nodes = vec![0usize];
    nodes.extend_from_slice(&plset);
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(nodes.len() * (nodes.len() - 1) / 2);
    for (a_pos, &a) in nodes.iter().enumerate() {
        for &b in nodes.iter().skip(a_pos + 1) {
            pairs.push((a, b));
        }
    }
    let values: Vec<f64> = ecg_par::par_chunk_map(pairs.len(), |range| {
        range
            .map(|p| {
                let (a, b) = pairs[p];
                let mut pair_rng = StdRng::seed_from_u64(ecg_par::derive_seed(master, p as u64));
                prober.measure(a, b, &mut pair_rng)
            })
            .collect::<Vec<f64>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let mut measured: HashMap<(usize, usize), f64> = HashMap::new();
    for (&(a, b), &d) in pairs.iter().zip(&values) {
        measured.insert((a.min(b), a.max(b)), d);
    }
    let dist = |a: usize, b: usize| -> f64 { measured[&(a.min(b), a.max(b))] };

    let maximize = selector == LandmarkSelector::GreedyMaxMin;
    let mut lm_set = vec![0usize];
    let mut remaining = plset.clone();
    max_min_fill(&mut lm_set, &mut remaining, l, maximize, &dist);

    let min_dist = pairwise_min_dist(&lm_set, &dist);
    Ok(LandmarkSelection {
        landmarks: lm_set,
        plset,
        min_dist_ms: Some(min_dist),
    })
}

/// The greedy dispersal fill shared by every non-random selector: grow
/// `lm_set` from `remaining` until it has `target` members (or the
/// candidates run out), each step electing the candidate whose minimum
/// distance to the current set is largest (`maximize`) or smallest.
///
/// Candidates are scored by their min distance to the set — equivalent
/// to scoring `MinDist(LmSet ∪ {cand})`, because the set's own MinDist
/// is fixed within a step. Exact-tie scores elect the earliest
/// remaining-position candidate (the comparator reverses the index, and
/// `max_by` keeps the last maximum).
///
/// Above [`PAR_THRESHOLD`] candidates the arg-max fans out over fixed
/// [`ecg_par::chunk_ranges`] chunks with an in-order reduction of the
/// per-chunk winners. The comparator is a *total* order on
/// `(position, score)` pairs (distinct positions never compare equal),
/// so the maximum is unique and the chunked reduction returns exactly
/// the sequential winner — bit-identical at any thread count, which the
/// parallel==sequential equivalence tests pin.
fn max_min_fill(
    lm_set: &mut Vec<usize>,
    remaining: &mut Vec<usize>,
    target: usize,
    maximize: bool,
    dist: &(impl Fn(usize, usize) -> f64 + Sync),
) {
    let better = |a: &(usize, f64), b: &(usize, f64)| {
        let ord = a.1.partial_cmp(&b.1).expect("distances are not NaN");
        if maximize { ord } else { ord.reverse() }
            // Stable preference for the earliest candidate on ties comes
            // from max_by keeping the *last* max; reverse the index to
            // prefer the first.
            .then_with(|| b.0.cmp(&a.0))
    };
    while lm_set.len() < target && !remaining.is_empty() {
        let score = |pos: usize| {
            let cand = remaining[pos];
            let to_set = lm_set
                .iter()
                .map(|&s| dist(s, cand))
                .fold(f64::INFINITY, f64::min);
            (pos, to_set)
        };
        let (best_pos, _) = if remaining.len() >= PAR_THRESHOLD {
            ecg_par::par_chunk_map(remaining.len(), |range| {
                range.map(score).max_by(better).expect("chunk is non-empty")
            })
            .into_iter()
            .max_by(better)
            .expect("PLSet has candidates")
        } else {
            (0..remaining.len())
                .map(score)
                .max_by(better)
                .expect("PLSet has candidates")
        };
        lm_set.push(remaining.swap_remove(best_pos));
    }
}

/// `MinDist(LmSet)` — the minimum pairwise measured distance.
fn pairwise_min_dist(lm_set: &[usize], dist: &impl Fn(usize, usize) -> f64) -> f64 {
    let mut min_dist = f64::INFINITY;
    for (a_pos, &a) in lm_set.iter().enumerate() {
        for &b in lm_set.iter().skip(a_pos + 1) {
            min_dist = min_dist.min(dist(a, b));
        }
    }
    min_dist
}

/// Result of [`select_landmarks_resilient`]: the selection plus what
/// the failure-detection pass saw.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientLandmarkSelection {
    /// The (possibly failed-over) landmark selection.
    pub selection: LandmarkSelection,
    /// PLSet members whose *every* pairwise measurement failed after
    /// retries — treated as crashed and barred from the landmark set.
    /// Sorted by node index.
    pub dead_nodes: Vec<usize>,
    /// The subset of `dead_nodes` the greedy phase had initially
    /// elected; each was evicted and replaced (when an alive candidate
    /// remained) by re-running the max–min step. Sorted by node index.
    pub replaced: Vec<usize>,
}

impl ResilientLandmarkSelection {
    /// Number of landmark slots that failed over to a replacement.
    pub fn failover_count(&self) -> usize {
        self.replaced.len()
    }
}

/// [`select_landmarks`] hardened against probe loss and crashed nodes.
///
/// Every pairwise PLSet measurement goes through
/// [`Prober::measure_retry`] under `policy`; pairs that still fail
/// report the probe timeout as their distance (matching the legacy
/// sentinel semantics). A PLSet member with *no* successful pair is
/// declared dead. The greedy phase then runs unchanged, after which any
/// dead member that slipped into the landmark set — dead nodes look
/// maximally far, so greedy max–min is actively drawn to them — is
/// evicted and the existing max–min step re-elects a replacement from
/// the surviving PLSet.
///
/// On a fault-free network this draws from `rng` exactly like
/// [`select_landmarks`] and returns the identical selection.
///
/// If the PLSet runs out of alive candidates the returned set is
/// shorter than `l` (callers decide whether that is fatal); it always
/// retains the origin. The `Random` selector probes nothing, so no
/// failure detection is possible: it delegates to [`select_landmarks`]
/// unchanged.
///
/// # Errors
///
/// Exactly as [`select_landmarks`].
pub fn select_landmarks_resilient<R: Rng + ?Sized>(
    prober: &Prober<'_>,
    selector: LandmarkSelector,
    l: usize,
    m: usize,
    policy: &RetryPolicy,
    rng: &mut R,
) -> Result<ResilientLandmarkSelection, LandmarkError> {
    select_landmarks_resilient_observed(prober, selector, l, m, policy, rng, None)
}

/// [`select_landmarks_resilient`] with optional observability: probe
/// retry counters flow through the prober, and the selection records
/// `landmarks.dead` / `landmarks.failovers`.
///
/// # Errors
///
/// Exactly as [`select_landmarks`].
pub fn select_landmarks_resilient_observed<R: Rng + ?Sized>(
    prober: &Prober<'_>,
    selector: LandmarkSelector,
    l: usize,
    m: usize,
    policy: &RetryPolicy,
    rng: &mut R,
    mut obs: Option<&mut Obs>,
) -> Result<ResilientLandmarkSelection, LandmarkError> {
    if selector == LandmarkSelector::Random {
        let selection = select_landmarks(prober, selector, l, m, rng)?;
        return Ok(ResilientLandmarkSelection {
            selection,
            dead_nodes: Vec::new(),
            replaced: Vec::new(),
        });
    }
    if l < 2 {
        return Err(LandmarkError::TooFewLandmarks { requested: l });
    }
    if m < 1 {
        return Err(LandmarkError::BadMultiplier);
    }
    let caches = prober.node_count() - 1;
    if caches < l - 1 {
        return Err(LandmarkError::TooFewCaches {
            caches,
            landmarks: l,
        });
    }

    // Phase 1: same PLSet draw as the legacy path (same RNG stream).
    let plset_size = (m * (l - 1)).min(caches);
    let mut indices: Vec<usize> = (1..=caches).collect();
    for i in 0..plset_size {
        let j = rng.gen_range(i..indices.len());
        indices.swap(i, j);
    }
    let plset: Vec<usize> = indices[..plset_size].to_vec();

    // Pairwise measurements, retried under `policy`. The outcome is
    // kept per pair so failure detection can distinguish "far" from
    // "gone"; distances fall back to the timeout sentinel, matching
    // what the legacy path would have recorded.
    let timeout = prober.config().timeout();
    let mut measured: HashMap<(usize, usize), Measurement> = HashMap::new();
    let mut nodes = vec![0usize];
    nodes.extend_from_slice(&plset);
    for (a_pos, &a) in nodes.iter().enumerate() {
        for &b in nodes.iter().skip(a_pos + 1) {
            let outcome = prober.measure_retry_observed(a, b, policy, rng, obs.as_deref_mut());
            measured.insert((a.min(b), a.max(b)), outcome);
        }
    }
    let dist = |a: usize, b: usize| -> f64 { measured[&(a.min(b), a.max(b))].value_or(timeout) };

    // Failure detection: a PLSet member with zero successful pairs is
    // dead. (The origin is never evicted — with the origin gone there
    // is no server to form groups around.)
    let mut dead_nodes: Vec<usize> = plset
        .iter()
        .copied()
        .filter(|&n| {
            nodes
                .iter()
                .filter(|&&o| o != n)
                .all(|&o| !measured[&(n.min(o), n.max(o))].is_ok())
        })
        .collect();
    dead_nodes.sort_unstable();

    // Phase 2: legacy greedy over the full PLSet (dead nodes included,
    // exactly as a non-resilient run would see them) ...
    let maximize = selector == LandmarkSelector::GreedyMaxMin;
    let mut lm_set = vec![0usize];
    let mut remaining = plset.clone();
    max_min_fill(&mut lm_set, &mut remaining, l, maximize, &dist);

    // ... then evict dead electees and re-run the same max–min step
    // over the surviving candidates.
    let mut replaced: Vec<usize> = lm_set
        .iter()
        .copied()
        .filter(|n| dead_nodes.binary_search(n).is_ok())
        .collect();
    if !replaced.is_empty() {
        lm_set.retain(|n| dead_nodes.binary_search(n).is_err());
        remaining.retain(|n| dead_nodes.binary_search(n).is_err());
        max_min_fill(&mut lm_set, &mut remaining, l, maximize, &dist);
    }
    replaced.sort_unstable();

    let min_dist = pairwise_min_dist(&lm_set, &dist);
    if let Some(o) = obs {
        o.metrics.add("landmarks.dead", dead_nodes.len() as u64);
        o.metrics.add("landmarks.failovers", replaced.len() as u64);
    }
    Ok(ResilientLandmarkSelection {
        selection: LandmarkSelection {
            landmarks: lm_set,
            plset,
            min_dist_ms: Some(min_dist),
        },
        dead_nodes,
        replaced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_coords::ProbeConfig;
    use ecg_topology::fixtures::paper_figure1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A prober over the Figure 1 matrix with exact measurements.
    fn prober(m: &ecg_topology::RttMatrix) -> Prober<'_> {
        Prober::new(m, ProbeConfig::noiseless())
    }

    /// A prober with the default noisy measurement model.
    fn prober_noisy(m: &ecg_topology::RttMatrix) -> Prober<'_> {
        Prober::new(m, ProbeConfig::default())
    }

    /// Reproduces the paper's worked example with a forced PLSet. Since
    /// the PLSet draw is random, we search seeds until the PLSet matches
    /// the figure's `{Ec0, Ec1, Ec3, Ec4}` (matrix indices 1, 2, 4, 5).
    #[test]
    fn figure1_worked_example() {
        let m = paper_figure1();
        for seed in 0..5_000u64 {
            let p = prober(&m);
            let mut rng = StdRng::seed_from_u64(seed);
            let sel = select_landmarks(&p, LandmarkSelector::GreedyMaxMin, 3, 2, &mut rng).unwrap();
            let mut plset_sorted = sel.plset.clone();
            plset_sorted.sort_unstable();
            if plset_sorted == vec![1, 2, 4, 5] {
                // Greedy picks Ec0 or Ec4 first (both 12.0 from Os) and
                // the other second: final set {Os, Ec0, Ec4}.
                let mut lms = sel.landmarks.clone();
                lms.sort_unstable();
                assert_eq!(lms, vec![0, 1, 5], "seed {seed}: {:?}", sel.landmarks);
                assert_eq!(sel.min_dist_ms, Some(12.0));
                return;
            }
        }
        panic!("no seed produced the figure's PLSet");
    }

    #[test]
    fn origin_is_always_a_landmark() {
        let m = paper_figure1();
        for selector in [
            LandmarkSelector::GreedyMaxMin,
            LandmarkSelector::Random,
            LandmarkSelector::MinDist,
        ] {
            let p = prober(&m);
            let mut rng = StdRng::seed_from_u64(3);
            let sel = select_landmarks(&p, selector, 3, 2, &mut rng).unwrap();
            assert_eq!(sel.landmarks[0], 0, "{selector}");
            assert_eq!(sel.landmarks.len(), 3);
            // All distinct.
            let mut sorted = sel.landmarks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3);
        }
    }

    #[test]
    fn greedy_beats_mindist_on_dispersal() {
        let m = paper_figure1();
        let mut greedy_total = 0.0;
        let mut mindist_total = 0.0;
        for seed in 0..20 {
            let p = prober(&m);
            let mut rng = StdRng::seed_from_u64(seed);
            greedy_total += select_landmarks(&p, LandmarkSelector::GreedyMaxMin, 3, 3, &mut rng)
                .unwrap()
                .min_dist_ms
                .unwrap();
            let p = prober(&m);
            let mut rng = StdRng::seed_from_u64(seed);
            mindist_total += select_landmarks(&p, LandmarkSelector::MinDist, 3, 3, &mut rng)
                .unwrap()
                .min_dist_ms
                .unwrap();
        }
        assert!(
            greedy_total > mindist_total,
            "greedy {greedy_total} vs mindist {mindist_total}"
        );
    }

    #[test]
    fn random_selector_probes_nothing() {
        let m = paper_figure1();
        let p = prober(&m);
        let mut rng = StdRng::seed_from_u64(1);
        let sel = select_landmarks(&p, LandmarkSelector::Random, 4, 2, &mut rng).unwrap();
        assert_eq!(p.probes_sent(), 0);
        assert!(sel.plset.is_empty());
        assert_eq!(sel.min_dist_ms, None);
    }

    #[test]
    fn greedy_probing_is_bounded_by_plset() {
        let m = paper_figure1();
        let p = prober(&m);
        let mut rng = StdRng::seed_from_u64(1);
        let l = 3usize;
        let mm = 2usize;
        let _ = select_landmarks(&p, LandmarkSelector::GreedyMaxMin, l, mm, &mut rng).unwrap();
        // PLSet ∪ {Os} has M(L-1)+1 = 5 nodes → 10 pairs, 1 probe each
        // under the noiseless config.
        assert_eq!(p.probes_sent(), 10);
    }

    #[test]
    fn plset_is_capped_at_cache_count() {
        let m = paper_figure1();
        let p = prober(&m);
        let mut rng = StdRng::seed_from_u64(1);
        // M(L-1) = 5*6 = 30 > 6 caches: PLSet covers all caches.
        let sel = select_landmarks(&p, LandmarkSelector::GreedyMaxMin, 7, 5, &mut rng).unwrap();
        assert_eq!(sel.plset.len(), 6);
        assert_eq!(sel.landmarks.len(), 7);
    }

    #[test]
    fn errors_are_reported() {
        let m = paper_figure1();
        let p = prober(&m);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            select_landmarks(&p, LandmarkSelector::GreedyMaxMin, 1, 2, &mut rng),
            Err(LandmarkError::TooFewLandmarks { requested: 1 })
        );
        assert_eq!(
            select_landmarks(&p, LandmarkSelector::GreedyMaxMin, 3, 0, &mut rng),
            Err(LandmarkError::BadMultiplier)
        );
        assert_eq!(
            select_landmarks(&p, LandmarkSelector::GreedyMaxMin, 8, 2, &mut rng),
            Err(LandmarkError::TooFewCaches {
                caches: 6,
                landmarks: 8
            })
        );
        assert!(LandmarkError::BadMultiplier.to_string().contains('M'));
    }

    #[test]
    fn resilient_selection_matches_legacy_on_healthy_network() {
        let m = paper_figure1();
        let policy = RetryPolicy::default();
        for selector in [
            LandmarkSelector::GreedyMaxMin,
            LandmarkSelector::MinDist,
            LandmarkSelector::Random,
        ] {
            for seed in 0..20u64 {
                let p = prober(&m);
                let legacy =
                    select_landmarks(&p, selector, 3, 2, &mut StdRng::seed_from_u64(seed)).unwrap();
                let p = prober(&m);
                let resilient = select_landmarks_resilient(
                    &p,
                    selector,
                    3,
                    2,
                    &policy,
                    &mut StdRng::seed_from_u64(seed),
                )
                .unwrap();
                assert_eq!(resilient.selection, legacy, "{selector} seed {seed}");
                assert!(resilient.dead_nodes.is_empty());
                assert!(resilient.replaced.is_empty());
                assert_eq!(resilient.failover_count(), 0);
            }
        }
    }

    #[test]
    fn crashed_plset_member_fails_over() {
        use ecg_coords::ProbeFaults;
        let m = paper_figure1();
        // Ec4 (node 5) crashes — one of the figure's natural picks.
        let faults = ProbeFaults::new().node_down(5);
        let p = Prober::with_faults(&m, ProbeConfig::noiseless(), faults);
        let mut rng = StdRng::seed_from_u64(1);
        // M(L-1) = 10 > 6 caches: the PLSet covers every cache, so the
        // crashed node is guaranteed to be a candidate. Dead nodes look
        // timeout-far, which greedy max–min would elect immediately.
        let sel = select_landmarks_resilient(
            &p,
            LandmarkSelector::GreedyMaxMin,
            3,
            5,
            &RetryPolicy::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(sel.dead_nodes, vec![5]);
        assert_eq!(sel.replaced, vec![5]);
        assert_eq!(sel.failover_count(), 1);
        assert_eq!(sel.selection.landmarks.len(), 3);
        assert_eq!(sel.selection.landmarks[0], 0);
        assert!(!sel.selection.landmarks.contains(&5), "dead landmark kept");
    }

    #[test]
    fn resilient_selection_survives_every_cache_down_but_one() {
        use ecg_coords::ProbeFaults;
        let m = paper_figure1();
        let faults = (2..=6).fold(ProbeFaults::new(), ProbeFaults::node_down);
        let p = Prober::with_faults(&m, ProbeConfig::noiseless(), faults);
        let mut rng = StdRng::seed_from_u64(0);
        let sel = select_landmarks_resilient(
            &p,
            LandmarkSelector::GreedyMaxMin,
            4,
            5,
            &RetryPolicy::none(),
            &mut rng,
        )
        .unwrap();
        // Only the origin and cache 1 survive: the set degrades to two
        // members instead of panicking or electing the dead.
        assert_eq!(sel.selection.landmarks, vec![0, 1]);
        assert_eq!(sel.dead_nodes, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn parallel_matches_sequential_noiseless_over_many_seeds() {
        // A noiseless measurement draws nothing from its RNG, so the
        // derived per-pair streams cannot diverge from the sequential
        // prober loop: the parallel selector must return the *identical*
        // selection for every seed and selector.
        let m = paper_figure1();
        for selector in [
            LandmarkSelector::GreedyMaxMin,
            LandmarkSelector::MinDist,
            LandmarkSelector::Random,
        ] {
            for seed in 0..30u64 {
                let p = prober(&m);
                let seq =
                    select_landmarks(&p, selector, 3, 2, &mut StdRng::seed_from_u64(seed)).unwrap();
                let p = prober(&m);
                let par =
                    select_landmarks_par(&p, selector, 3, 2, &mut StdRng::seed_from_u64(seed))
                        .unwrap();
                assert_eq!(par, seq, "{selector} seed {seed}");
            }
        }
    }

    #[test]
    fn parallel_selection_is_thread_count_invariant_with_noise() {
        // With a noisy probe config the parallel values come from
        // derived per-pair streams — legitimately different from the
        // sequential prober loop, but a pure function of the seed. The
        // selection must not move when the worker count does. (Results
        // are thread-invariant by construction, so flipping the global
        // override cannot perturb concurrently running tests.)
        let m = paper_figure1();
        let run_at = |threads: usize, seed: u64| {
            ecg_par::set_max_threads(Some(threads));
            let p = prober_noisy(&m);
            let sel = select_landmarks_par(
                &p,
                LandmarkSelector::GreedyMaxMin,
                3,
                2,
                &mut StdRng::seed_from_u64(seed),
            )
            .unwrap();
            ecg_par::set_max_threads(None);
            sel
        };
        for seed in 0..5u64 {
            let at1 = run_at(1, seed);
            let at2 = run_at(2, seed);
            let at8 = run_at(8, seed);
            assert_eq!(at1, at2, "seed {seed}");
            assert_eq!(at1, at8, "seed {seed}");
        }
    }

    #[test]
    fn parallel_argmax_branch_matches_sequential_at_bench_scale() {
        // l=4, m=200 over a 700-cache synthetic network: the PLSet has
        // 600 candidates, past PAR_THRESHOLD, so the greedy fill takes
        // the chunk-parallel arg-max branch — which must elect exactly
        // the sequential winners (total order on (position, score)).
        use ecg_topology::SyntheticRttConfig;
        let net = SyntheticRttConfig::default().generate(701, 42);
        let run = |threads: Option<usize>| {
            ecg_par::set_max_threads(threads);
            let p = Prober::new(&net, ProbeConfig::noiseless());
            let sel = select_landmarks_par(
                &p,
                LandmarkSelector::GreedyMaxMin,
                4,
                200,
                &mut StdRng::seed_from_u64(7),
            )
            .unwrap();
            ecg_par::set_max_threads(None);
            sel
        };
        let at1 = run(Some(1));
        let at4 = run(Some(4));
        assert_eq!(at1, at4);
        assert_eq!(at1.plset.len(), 600);
        assert_eq!(at1.landmarks.len(), 4);
        // Sequential oracle over the same seed (noiseless: same values).
        let p = Prober::new(&net, ProbeConfig::noiseless());
        let seq = select_landmarks(
            &p,
            LandmarkSelector::GreedyMaxMin,
            4,
            200,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        assert_eq!(at1, seq);
    }

    #[test]
    fn selector_display_names() {
        assert_eq!(LandmarkSelector::GreedyMaxMin.to_string(), "greedy (SL)");
        assert_eq!(LandmarkSelector::Random.to_string(), "random");
        assert_eq!(LandmarkSelector::MinDist.to_string(), "min-dist");
    }
}
