//! Landmark selection (§3.1 of the paper).
//!
//! The quality of the landmark set determines the accuracy of every
//! downstream position estimate, and a good set is *well dispersed*. The
//! SL scheme approximates the dispersal criterion cheaply:
//!
//! 1. The origin server is always a landmark.
//! 2. A random *potential landmark set* (PLSet) of `M × (L-1)` caches is
//!    drawn; only those caches measure their pairwise distances — this
//!    bounds the probing overhead to `O((M·L)²)` instead of `O(N²)`.
//! 3. `L-1` caches are picked from the PLSet greedily, each maximizing
//!    the current `MinDist(LmSet)` (the minimum pairwise distance within
//!    the landmark set).
//!
//! The module also implements the two comparison selectors of §5.1:
//! uniform random selection, and the adversarial *Min-Dist* selector
//! that greedily *minimizes* `MinDist(LmSet)`.

use ecg_coords::Prober;
use rand::Rng;
use std::collections::HashMap;
use std::fmt;

/// Strategy for choosing the landmark set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LandmarkSelector {
    /// The SL scheme's greedy max–min dispersal selection from the
    /// PLSet. The default.
    #[default]
    GreedyMaxMin,
    /// Uniform random landmarks (first baseline of Figure 4/5/6).
    Random,
    /// Greedy *minimum* dispersal — the pathological baseline the paper
    /// calls the "minimum distance landmarks selection technique".
    MinDist,
}

impl fmt::Display for LandmarkSelector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LandmarkSelector::GreedyMaxMin => "greedy (SL)",
            LandmarkSelector::Random => "random",
            LandmarkSelector::MinDist => "min-dist",
        };
        f.write_str(name)
    }
}

/// Error from [`select_landmarks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LandmarkError {
    /// Fewer than two landmarks were requested (the origin alone is not
    /// a frame of reference).
    TooFewLandmarks {
        /// Requested landmark count.
        requested: usize,
    },
    /// The network has fewer caches than `L - 1`.
    TooFewCaches {
        /// Caches available.
        caches: usize,
        /// Landmarks requested.
        landmarks: usize,
    },
    /// `M` must be at least 1.
    BadMultiplier,
}

impl fmt::Display for LandmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LandmarkError::TooFewLandmarks { requested } => {
                write!(f, "need at least 2 landmarks, requested {requested}")
            }
            LandmarkError::TooFewCaches { caches, landmarks } => write!(
                f,
                "{landmarks} landmarks need {} caches, only {caches} available",
                landmarks - 1
            ),
            LandmarkError::BadMultiplier => write!(f, "PLSet multiplier M must be >= 1"),
        }
    }
}

impl std::error::Error for LandmarkError {}

/// Result of landmark selection.
///
/// Node indices follow the prober's matrix: `0` is the origin server,
/// `i + 1` is cache `Ec_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct LandmarkSelection {
    /// The chosen landmark node indices; `landmarks[0] == 0` (the
    /// origin) always.
    pub landmarks: Vec<usize>,
    /// The potential landmark set the greedy phase drew from (empty for
    /// the random selector, which probes nothing).
    pub plset: Vec<usize>,
    /// `MinDist(LmSet)` of the final set under the *measured* distances,
    /// or `None` for the random selector (it never measures).
    pub min_dist_ms: Option<f64>,
}

/// Selects `l` landmarks for the network behind `prober`.
///
/// # Errors
///
/// Returns [`LandmarkError`] if `l < 2`, `m < 1`, or the network is too
/// small.
///
/// # Examples
///
/// Reproduces the worked example of Figure 1 (PLSet `{Ec0, Ec1, Ec3,
/// Ec4}`, `L = 3`): the greedy phase picks `Ec0` (12 ms from the origin)
/// then `Ec4`, giving landmarks `{Os, Ec0, Ec4}` with
/// `MinDist = 12 ms` — see this module's tests.
pub fn select_landmarks<R: Rng + ?Sized>(
    prober: &Prober<'_>,
    selector: LandmarkSelector,
    l: usize,
    m: usize,
    rng: &mut R,
) -> Result<LandmarkSelection, LandmarkError> {
    if l < 2 {
        return Err(LandmarkError::TooFewLandmarks { requested: l });
    }
    if m < 1 {
        return Err(LandmarkError::BadMultiplier);
    }
    let caches = prober.node_count() - 1;
    if caches < l - 1 {
        return Err(LandmarkError::TooFewCaches {
            caches,
            landmarks: l,
        });
    }

    if selector == LandmarkSelector::Random {
        // Uniform L-1 caches plus the origin; no measurement phase.
        let mut indices: Vec<usize> = (1..=caches).collect();
        for i in 0..(l - 1) {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        let mut landmarks = vec![0usize];
        landmarks.extend_from_slice(&indices[..l - 1]);
        return Ok(LandmarkSelection {
            landmarks,
            plset: Vec::new(),
            min_dist_ms: None,
        });
    }

    // Phase 1: draw the PLSet — M·(L-1) distinct caches (capped at N).
    let plset_size = (m * (l - 1)).min(caches);
    let mut indices: Vec<usize> = (1..=caches).collect();
    for i in 0..plset_size {
        let j = rng.gen_range(i..indices.len());
        indices.swap(i, j);
    }
    let plset: Vec<usize> = indices[..plset_size].to_vec();

    // The potential landmarks measure their distances to each other and
    // to the origin.
    let mut measured: HashMap<(usize, usize), f64> = HashMap::new();
    let mut nodes = vec![0usize];
    nodes.extend_from_slice(&plset);
    for (a_pos, &a) in nodes.iter().enumerate() {
        for &b in nodes.iter().skip(a_pos + 1) {
            let d = prober.measure(a, b, rng);
            measured.insert((a.min(b), a.max(b)), d);
        }
    }
    let dist = |a: usize, b: usize| -> f64 { measured[&(a.min(b), a.max(b))] };

    // Phase 2: greedy max–min (SL) or min (Min-Dist baseline).
    let maximize = selector == LandmarkSelector::GreedyMaxMin;
    let mut lm_set = vec![0usize];
    let mut remaining = plset.clone();
    while lm_set.len() < l {
        let (best_pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &cand)| {
                // MinDist(LmSet ∪ {cand}) is limited by the candidate's
                // distance to the current set (the set's own MinDist is
                // fixed), so comparing candidates by their min distance
                // to the set is equivalent.
                let to_set = lm_set
                    .iter()
                    .map(|&s| dist(s, cand))
                    .fold(f64::INFINITY, f64::min);
                (pos, to_set)
            })
            .max_by(|a, b| {
                let ord = a.1.partial_cmp(&b.1).expect("distances are not NaN");
                if maximize { ord } else { ord.reverse() }
                    // Stable preference for the earliest PLSet entry on ties
                    // comes from max_by keeping the *last* max; reverse the
                    // index to prefer the first.
                    .then_with(|| b.0.cmp(&a.0))
            })
            .expect("PLSet has candidates");
        lm_set.push(remaining.swap_remove(best_pos));
    }

    let mut min_dist = f64::INFINITY;
    for (a_pos, &a) in lm_set.iter().enumerate() {
        for &b in lm_set.iter().skip(a_pos + 1) {
            min_dist = min_dist.min(dist(a, b));
        }
    }
    Ok(LandmarkSelection {
        landmarks: lm_set,
        plset,
        min_dist_ms: Some(min_dist),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_coords::ProbeConfig;
    use ecg_topology::fixtures::paper_figure1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A prober over the Figure 1 matrix with exact measurements.
    fn prober(m: &ecg_topology::RttMatrix) -> Prober<'_> {
        Prober::new(m, ProbeConfig::noiseless())
    }

    /// Reproduces the paper's worked example with a forced PLSet. Since
    /// the PLSet draw is random, we search seeds until the PLSet matches
    /// the figure's `{Ec0, Ec1, Ec3, Ec4}` (matrix indices 1, 2, 4, 5).
    #[test]
    fn figure1_worked_example() {
        let m = paper_figure1();
        for seed in 0..5_000u64 {
            let p = prober(&m);
            let mut rng = StdRng::seed_from_u64(seed);
            let sel = select_landmarks(&p, LandmarkSelector::GreedyMaxMin, 3, 2, &mut rng).unwrap();
            let mut plset_sorted = sel.plset.clone();
            plset_sorted.sort_unstable();
            if plset_sorted == vec![1, 2, 4, 5] {
                // Greedy picks Ec0 or Ec4 first (both 12.0 from Os) and
                // the other second: final set {Os, Ec0, Ec4}.
                let mut lms = sel.landmarks.clone();
                lms.sort_unstable();
                assert_eq!(lms, vec![0, 1, 5], "seed {seed}: {:?}", sel.landmarks);
                assert_eq!(sel.min_dist_ms, Some(12.0));
                return;
            }
        }
        panic!("no seed produced the figure's PLSet");
    }

    #[test]
    fn origin_is_always_a_landmark() {
        let m = paper_figure1();
        for selector in [
            LandmarkSelector::GreedyMaxMin,
            LandmarkSelector::Random,
            LandmarkSelector::MinDist,
        ] {
            let p = prober(&m);
            let mut rng = StdRng::seed_from_u64(3);
            let sel = select_landmarks(&p, selector, 3, 2, &mut rng).unwrap();
            assert_eq!(sel.landmarks[0], 0, "{selector}");
            assert_eq!(sel.landmarks.len(), 3);
            // All distinct.
            let mut sorted = sel.landmarks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3);
        }
    }

    #[test]
    fn greedy_beats_mindist_on_dispersal() {
        let m = paper_figure1();
        let mut greedy_total = 0.0;
        let mut mindist_total = 0.0;
        for seed in 0..20 {
            let p = prober(&m);
            let mut rng = StdRng::seed_from_u64(seed);
            greedy_total += select_landmarks(&p, LandmarkSelector::GreedyMaxMin, 3, 3, &mut rng)
                .unwrap()
                .min_dist_ms
                .unwrap();
            let p = prober(&m);
            let mut rng = StdRng::seed_from_u64(seed);
            mindist_total += select_landmarks(&p, LandmarkSelector::MinDist, 3, 3, &mut rng)
                .unwrap()
                .min_dist_ms
                .unwrap();
        }
        assert!(
            greedy_total > mindist_total,
            "greedy {greedy_total} vs mindist {mindist_total}"
        );
    }

    #[test]
    fn random_selector_probes_nothing() {
        let m = paper_figure1();
        let p = prober(&m);
        let mut rng = StdRng::seed_from_u64(1);
        let sel = select_landmarks(&p, LandmarkSelector::Random, 4, 2, &mut rng).unwrap();
        assert_eq!(p.probes_sent(), 0);
        assert!(sel.plset.is_empty());
        assert_eq!(sel.min_dist_ms, None);
    }

    #[test]
    fn greedy_probing_is_bounded_by_plset() {
        let m = paper_figure1();
        let p = prober(&m);
        let mut rng = StdRng::seed_from_u64(1);
        let l = 3usize;
        let mm = 2usize;
        let _ = select_landmarks(&p, LandmarkSelector::GreedyMaxMin, l, mm, &mut rng).unwrap();
        // PLSet ∪ {Os} has M(L-1)+1 = 5 nodes → 10 pairs, 1 probe each
        // under the noiseless config.
        assert_eq!(p.probes_sent(), 10);
    }

    #[test]
    fn plset_is_capped_at_cache_count() {
        let m = paper_figure1();
        let p = prober(&m);
        let mut rng = StdRng::seed_from_u64(1);
        // M(L-1) = 5*6 = 30 > 6 caches: PLSet covers all caches.
        let sel = select_landmarks(&p, LandmarkSelector::GreedyMaxMin, 7, 5, &mut rng).unwrap();
        assert_eq!(sel.plset.len(), 6);
        assert_eq!(sel.landmarks.len(), 7);
    }

    #[test]
    fn errors_are_reported() {
        let m = paper_figure1();
        let p = prober(&m);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            select_landmarks(&p, LandmarkSelector::GreedyMaxMin, 1, 2, &mut rng),
            Err(LandmarkError::TooFewLandmarks { requested: 1 })
        );
        assert_eq!(
            select_landmarks(&p, LandmarkSelector::GreedyMaxMin, 3, 0, &mut rng),
            Err(LandmarkError::BadMultiplier)
        );
        assert_eq!(
            select_landmarks(&p, LandmarkSelector::GreedyMaxMin, 8, 2, &mut rng),
            Err(LandmarkError::TooFewCaches {
                caches: 6,
                landmarks: 8
            })
        );
        assert!(LandmarkError::BadMultiplier.to_string().contains('M'));
    }

    #[test]
    fn selector_display_names() {
        assert_eq!(LandmarkSelector::GreedyMaxMin.to_string(), "greedy (SL)");
        assert_eq!(LandmarkSelector::Random.to_string(), "random");
        assert_eq!(LandmarkSelector::MinDist.to_string(), "min-dist");
    }
}
