//! Property-based tests for the group formation schemes.

use ecg_coords::ProbeConfig;
use ecg_core::{GfCoordinator, LandmarkSelector, SchemeConfig};
use ecg_topology::{EdgeNetwork, RttMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random metric-ish edge network built from random 2-D positions, so
/// RTTs satisfy the triangle inequality.
fn arb_edge_network() -> impl Strategy<Value = EdgeNetwork> {
    (4usize..30, any::<u64>()).prop_map(|(caches, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> = (0..=caches)
            .map(|_| (rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let m = RttMatrix::from_fn(caches + 1, |i, j| {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            (dx * dx + dy * dy).sqrt().max(0.1)
        });
        EdgeNetwork::from_rtt_matrix(m)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sl_output_is_always_a_partition(
        net in arb_edge_network(),
        k_frac in 0.05f64..1.0,
        seed in any::<u64>(),
    ) {
        let n = net.cache_count();
        let k = ((n as f64 * k_frac).ceil() as usize).clamp(1, n);
        let coord = GfCoordinator::new(
            SchemeConfig::sl(k).landmarks(5).plset_multiplier(2),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = coord.form_groups(&net, &mut rng).unwrap();
        prop_assert_eq!(outcome.groups().len(), k);
        let mut all: Vec<usize> = outcome
            .groups()
            .iter()
            .flatten()
            .map(|c| c.index())
            .collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        prop_assert!(outcome.groups().iter().all(|g| !g.is_empty()));
    }

    #[test]
    fn sdsl_output_is_always_a_partition(
        net in arb_edge_network(),
        theta in 0.0f64..4.0,
        seed in any::<u64>(),
    ) {
        let n = net.cache_count();
        let k = (n / 3).max(1);
        let coord = GfCoordinator::new(
            SchemeConfig::sdsl(k, theta).landmarks(5).plset_multiplier(2),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = coord.form_groups(&net, &mut rng).unwrap();
        let total: usize = outcome.groups().iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
        prop_assert_eq!(outcome.groups().len(), k);
    }

    #[test]
    fn noiseless_server_distances_are_exact(
        net in arb_edge_network(),
        seed in any::<u64>(),
    ) {
        let coord = GfCoordinator::new(
            SchemeConfig::sl(2)
                .landmarks(4)
                .plset_multiplier(2)
                .probe(ProbeConfig::noiseless()),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = coord.form_groups(&net, &mut rng).unwrap();
        for (i, &d) in outcome.server_distances_ms().iter().enumerate() {
            prop_assert_eq!(d, net.cache_to_origin(ecg_topology::CacheId(i)));
        }
    }

    #[test]
    fn all_selectors_produce_valid_landmark_sets(
        net in arb_edge_network(),
        seed in any::<u64>(),
    ) {
        for selector in [
            LandmarkSelector::GreedyMaxMin,
            LandmarkSelector::Random,
            LandmarkSelector::MinDist,
        ] {
            let coord = GfCoordinator::new(
                SchemeConfig::sl(2)
                    .landmarks(4)
                    .plset_multiplier(3)
                    .selector(selector),
            );
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = coord.form_groups(&net, &mut rng).unwrap();
            let lms = &outcome.landmarks().landmarks;
            prop_assert_eq!(lms.len(), 4);
            prop_assert_eq!(lms[0], 0, "origin must lead the landmark set");
            let mut sorted = lms.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), 4, "landmarks must be distinct");
            prop_assert!(sorted.iter().all(|&i| i <= net.cache_count()));
        }
    }

    #[test]
    fn determinism_per_seed(net in arb_edge_network(), seed in any::<u64>()) {
        let coord = GfCoordinator::new(
            SchemeConfig::sdsl(3.min(net.cache_count()), 1.0)
                .landmarks(4)
                .plset_multiplier(2),
        );
        let run = |s: u64| {
            let mut rng = StdRng::seed_from_u64(s);
            coord.form_groups(&net, &mut rng).unwrap()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
