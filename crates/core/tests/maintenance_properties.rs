//! Property test: `GroupMaintainer` never loses track of a cache.
//!
//! Any interleaving of admissions, retirements, and readmissions must
//! keep the maintainer's three views — `group_of`, `groups()`, and
//! `active_caches()` / `retired()` — mutually consistent: every cache
//! id is either in exactly one group or on the retired list, never
//! both, never neither.

use ecg_coords::ProbeConfig;
use ecg_core::{GfCoordinator, GroupMaintainer, MaintenanceError, SchemeConfig};
use ecg_topology::{CacheId, EdgeNetwork, RttMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random metric-ish edge network built from random 2-D positions.
fn network(caches: usize, seed: u64) -> EdgeNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..=caches)
        .map(|_| (rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
        .collect();
    let m = RttMatrix::from_fn(caches + 1, |i, j| {
        let dx = pts[i].0 - pts[j].0;
        let dy = pts[i].1 - pts[j].1;
        (dx * dx + dy * dy).sqrt().max(0.1)
    });
    EdgeNetwork::from_rtt_matrix(m)
}

/// Checks every cross-view invariant of the maintainer.
fn assert_consistent(m: &GroupMaintainer) {
    let n = m.cache_count();
    let mut seen = vec![0usize; n];
    for (g, members) in m.groups().iter().enumerate() {
        for &c in members {
            prop_assert!(c.index() < n, "member {c} out of id space");
            seen[c.index()] += 1;
            prop_assert_eq!(
                m.group_of(c),
                Some(g),
                "group_of disagrees with groups() for {}",
                c
            );
        }
    }
    for (i, &count) in seen.iter().enumerate() {
        prop_assert!(count <= 1, "cache {i} appears in {count} groups");
        let retired = m.retired().contains(&CacheId(i));
        // Exactly one of: in a group, or on the retired list.
        prop_assert!(
            (count == 1) ^ retired,
            "cache {i} is orphaned (in {count} groups, retired={retired})"
        );
        prop_assert_eq!(m.group_of(CacheId(i)).is_some(), count == 1);
    }
    let members_total: usize = m.groups().iter().map(Vec::len).sum();
    prop_assert_eq!(m.active_caches(), members_total);
    prop_assert_eq!(m.active_caches() + m.retired().len(), n);
    prop_assert!(m.groups().iter().any(|g| !g.is_empty()), "all groups empty");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn maintenance_interleavings_never_orphan_a_cache(
        caches in 6usize..20,
        k in 2usize..5,
        net_seed in any::<u64>(),
        op_seed in any::<u64>(),
        ops in proptest::collection::vec((any::<u8>(), any::<u16>()), 1..60),
    ) {
        let mut network = network(caches, net_seed);
        let k = k.min(caches / 2);
        let mut rng = StdRng::seed_from_u64(op_seed);
        let outcome = GfCoordinator::new(
            SchemeConfig::sl(k).landmarks(4).plset_multiplier(2),
        )
        .form_groups(&network, &mut rng)
        .unwrap();
        let mut m = GroupMaintainer::new(&network, outcome, ProbeConfig::default());
        assert_consistent(&m);

        for (kind, pick) in ops {
            let n = m.cache_count();
            let cache = CacheId(pick as usize % n);
            match kind % 4 {
                // Retire an arbitrary cache; refusals (unknown ids,
                // would-empty-group) must leave the maintainer intact.
                0 | 1 => match m.retire(cache) {
                    Ok(_)
                    | Err(MaintenanceError::UnknownCache(_))
                    | Err(MaintenanceError::WouldEmptyGroup { .. }) => {}
                    Err(e) => prop_assert!(false, "unexpected retire error {e}"),
                },
                // Readmit an arbitrary cache (usually a retired one).
                2 => match m.readmit(&network, cache, &mut rng) {
                    Ok(_) | Err(MaintenanceError::AlreadyActive(_)) => {}
                    Err(e) => prop_assert!(false, "unexpected readmit error {e}"),
                },
                // Admit a brand-new cache appended to the network.
                _ => {
                    let rtts: Vec<f64> =
                        (0..n).map(|_| rng.gen_range(1.0..50.0)).collect();
                    let origin = rng.gen_range(1.0..50.0);
                    network = network.with_added_cache(origin, &rtts);
                    m.admit(&network, &mut rng).unwrap();
                }
            }
            assert_consistent(&m);
        }

        // The drift ratio stays well-defined whatever happened above.
        let drift = m.drift(&network).unwrap();
        prop_assert!(drift.is_finite() || drift == f64::INFINITY);
    }
}
