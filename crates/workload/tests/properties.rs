//! Property-based tests for the workload crate.

use ecg_workload::{
    generate_updates, merge_streams, read_trace, write_trace, CatalogConfig, RequestConfig,
    TraceEvent, ZipfSampler,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn zipf_probabilities_are_a_distribution(n in 1usize..200, s in 0.0f64..2.5) {
        let z = ZipfSampler::new(n, s);
        let total: f64 = (0..n).map(|r| z.probability(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Monotone non-increasing in rank.
        for r in 1..n {
            prop_assert!(z.probability(r - 1) >= z.probability(r) - 1e-12);
        }
    }

    #[test]
    fn zipf_samples_in_range(n in 1usize..100, s in 0.0f64..2.0, seed in any::<u64>()) {
        let z = ZipfSampler::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn catalog_generation_is_valid(
        n in 1usize..300,
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let cat = CatalogConfig::default()
            .documents(n)
            .dynamic_fraction(frac)
            .generate(&mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(cat.len(), n);
        for (i, d) in cat.iter().enumerate() {
            prop_assert_eq!(d.id.index(), i);
            prop_assert!(d.size_bytes >= 128);
            prop_assert!(d.update_rate_per_sec >= 0.0);
        }
    }

    #[test]
    fn request_stream_is_sorted_valid_and_bounded(
        seed in any::<u64>(),
        caches in 1usize..8,
        duration in 1_000.0f64..30_000.0,
        similarity in 0.0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cat = CatalogConfig::default().documents(50).generate(&mut rng);
        let reqs = RequestConfig::default()
            .similarity(similarity)
            .generate(&cat, caches, duration, &mut rng);
        for pair in reqs.windows(2) {
            prop_assert!(pair[0].time_ms <= pair[1].time_ms);
        }
        for r in &reqs {
            prop_assert!(r.cache < caches);
            prop_assert!(r.doc.index() < 50);
            prop_assert!(r.time_ms >= 0.0 && r.time_ms < duration);
        }
    }

    #[test]
    fn update_stream_is_sorted_and_bounded(
        seed in any::<u64>(),
        duration in 0.0f64..60_000.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cat = CatalogConfig::default()
            .documents(40)
            .dynamic_fraction(0.5)
            .generate(&mut rng);
        let ups = generate_updates(&cat, duration, &mut rng);
        for pair in ups.windows(2) {
            prop_assert!(pair[0].time_ms <= pair[1].time_ms);
        }
        for u in &ups {
            prop_assert!(u.doc.index() < 40);
            prop_assert!(u.time_ms >= 0.0 && u.time_ms < duration);
        }
    }

    #[test]
    fn trace_round_trips_through_text(
        seed in any::<u64>(),
        duration in 500.0f64..5_000.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cat = CatalogConfig::default()
            .documents(30)
            .dynamic_fraction(0.3)
            .dynamic_update_rate_per_sec(0.5)
            .generate(&mut rng);
        let reqs = RequestConfig::default().generate(&cat, 3, duration, &mut rng);
        let ups = generate_updates(&cat, duration, &mut rng);
        let merged = merge_streams(&reqs, &ups);

        let mut buf = Vec::new();
        write_trace(&mut buf, &merged).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        prop_assert_eq!(back, merged);
    }

    #[test]
    fn merge_preserves_every_event(
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cat = CatalogConfig::default()
            .documents(20)
            .dynamic_fraction(0.5)
            .dynamic_update_rate_per_sec(1.0)
            .generate(&mut rng);
        let reqs = RequestConfig::default().generate(&cat, 2, 5_000.0, &mut rng);
        let ups = generate_updates(&cat, 5_000.0, &mut rng);
        let merged = merge_streams(&reqs, &ups);
        prop_assert_eq!(merged.len(), reqs.len() + ups.len());
        let reqs_back: Vec<_> = merged
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Request(r) => Some(*r),
                _ => None,
            })
            .collect();
        prop_assert_eq!(reqs_back, reqs);
        for pair in merged.windows(2) {
            prop_assert!(pair[0].time_ms() <= pair[1].time_ms());
        }
    }
}
