//! Document catalogs.
//!
//! The origin server in the paper serves *dynamic* web content: documents
//! have sizes, popularity ranks, and — crucially — update rates (the
//! origin "reads continuously from an update log file"). A
//! [`DocumentCatalog`] captures those static properties; request and
//! update streams are generated against it by
//! [`crate::requests`] and [`crate::updates`].

use rand::Rng;
use std::fmt;

/// Identifier of a document, dense in `0..document_count`.
///
/// Documents are ordered by popularity: `DocId(0)` is the most popular.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DocId(pub usize);

impl DocId {
    /// Returns the id as a dense vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc{}", self.0)
    }
}

impl From<usize> for DocId {
    fn from(index: usize) -> Self {
        DocId(index)
    }
}

/// Static properties of one document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Document {
    /// The document's id (== its popularity rank).
    pub id: DocId,
    /// Body size in bytes.
    pub size_bytes: u64,
    /// Mean updates per second at the origin (Poisson rate). Zero for
    /// fully static documents.
    pub update_rate_per_sec: f64,
}

/// Configuration for generating a document catalog.
///
/// Defaults model a sporting-event site: 10 000 documents, log-normal
/// sizes with an ~8 KiB median, and 10% of documents *dynamic* (live
/// scoreboards, news tickers) updating every 30 s on average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogConfig {
    documents: usize,
    size_log_mean: f64,
    size_log_sigma: f64,
    min_size_bytes: u64,
    dynamic_fraction: f64,
    dynamic_update_rate_per_sec: f64,
    static_update_rate_per_sec: f64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            documents: 10_000,
            size_log_mean: (8.0 * 1024.0f64).ln(),
            size_log_sigma: 1.0,
            min_size_bytes: 128,
            dynamic_fraction: 0.1,
            dynamic_update_rate_per_sec: 1.0 / 30.0,
            static_update_rate_per_sec: 1.0 / 86_400.0,
        }
    }
}

impl CatalogConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of documents.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn documents(mut self, n: usize) -> Self {
        assert!(n > 0, "catalog needs at least one document");
        self.documents = n;
        self
    }

    /// Sets the median document size in bytes (log-normal location).
    pub fn median_size_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "median size must be positive");
        self.size_log_mean = (bytes as f64).ln();
        self
    }

    /// Sets the log-normal shape parameter for sizes.
    pub fn size_log_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be >= 0");
        self.size_log_sigma = sigma;
        self
    }

    /// Sets the fraction of documents that are dynamic, in `[0, 1]`.
    pub fn dynamic_fraction(mut self, frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "fraction must be in [0, 1]");
        self.dynamic_fraction = frac;
        self
    }

    /// Sets the mean update rate (per second) of dynamic documents.
    pub fn dynamic_update_rate_per_sec(mut self, rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be >= 0");
        self.dynamic_update_rate_per_sec = rate;
        self
    }

    /// Sets the mean update rate (per second) of static documents.
    pub fn static_update_rate_per_sec(mut self, rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be >= 0");
        self.static_update_rate_per_sec = rate;
        self
    }

    /// Generates a catalog.
    ///
    /// Dynamic documents are drawn from the *popular* end of the catalog
    /// — on a sporting-event site the hot pages (scores, medal tables)
    /// are exactly the ones that change — matching the workload property
    /// that makes freshness maintenance expensive.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> DocumentCatalog {
        let n = self.documents;
        let dynamic_count = ((n as f64) * self.dynamic_fraction).round() as usize;
        let docs: Vec<Document> = (0..n)
            .map(|i| {
                let z = standard_normal(rng);
                let size = (self.size_log_mean + self.size_log_sigma * z).exp().round() as u64;
                let update_rate = if i < dynamic_count {
                    // Jitter per-document rates ±50% around the mean.
                    self.dynamic_update_rate_per_sec * rng.gen_range(0.5..1.5)
                } else {
                    self.static_update_rate_per_sec
                };
                Document {
                    id: DocId(i),
                    size_bytes: size.max(self.min_size_bytes),
                    update_rate_per_sec: update_rate,
                }
            })
            .collect();
        DocumentCatalog { docs }
    }
}

/// Samples a standard normal variate via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// An immutable collection of documents, indexed by [`DocId`].
#[derive(Debug, Clone, PartialEq)]
pub struct DocumentCatalog {
    docs: Vec<Document>,
}

impl DocumentCatalog {
    /// Builds a catalog from explicit documents.
    ///
    /// # Panics
    ///
    /// Panics if the documents' ids are not dense `0..n` in order.
    pub fn from_documents(docs: Vec<Document>) -> Self {
        for (i, d) in docs.iter().enumerate() {
            assert_eq!(d.id.index(), i, "document ids must be dense and ordered");
        }
        DocumentCatalog { docs }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Returns `true` if the catalog has no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Looks up a document.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn document(&self, id: DocId) -> &Document {
        &self.docs[id.index()]
    }

    /// Iterates over all documents in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Document> + '_ {
        self.docs.iter()
    }

    /// Mean document size in bytes — the "average sized document" the
    /// paper's interaction cost is defined over.
    pub fn mean_size_bytes(&self) -> f64 {
        if self.docs.is_empty() {
            return 0.0;
        }
        self.docs.iter().map(|d| d.size_bytes as f64).sum::<f64>() / self.docs.len() as f64
    }

    /// Total origin update rate (updates per second across all docs).
    pub fn total_update_rate_per_sec(&self) -> f64 {
        self.docs.iter().map(|d| d.update_rate_per_sec).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_count_with_dense_ids() {
        let mut rng = StdRng::seed_from_u64(1);
        let cat = CatalogConfig::default().documents(500).generate(&mut rng);
        assert_eq!(cat.len(), 500);
        for (i, d) in cat.iter().enumerate() {
            assert_eq!(d.id, DocId(i));
        }
    }

    #[test]
    fn sizes_respect_floor_and_vary() {
        let mut rng = StdRng::seed_from_u64(2);
        let cat = CatalogConfig::default().documents(1000).generate(&mut rng);
        assert!(cat.iter().all(|d| d.size_bytes >= 128));
        let first = cat.document(DocId(0)).size_bytes;
        assert!(cat.iter().any(|d| d.size_bytes != first));
    }

    #[test]
    fn median_size_is_roughly_requested() {
        let mut rng = StdRng::seed_from_u64(3);
        let cat = CatalogConfig::default()
            .documents(4000)
            .median_size_bytes(8192)
            .generate(&mut rng);
        let mut sizes: Vec<u64> = cat.iter().map(|d| d.size_bytes).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2] as f64;
        assert!(
            (median / 8192.0) > 0.8 && (median / 8192.0) < 1.25,
            "median {median}"
        );
    }

    #[test]
    fn dynamic_fraction_applies_to_popular_documents() {
        let mut rng = StdRng::seed_from_u64(4);
        let cat = CatalogConfig::default()
            .documents(100)
            .dynamic_fraction(0.2)
            .dynamic_update_rate_per_sec(0.1)
            .static_update_rate_per_sec(0.0)
            .generate(&mut rng);
        let dynamic: Vec<usize> = cat
            .iter()
            .filter(|d| d.update_rate_per_sec > 0.0)
            .map(|d| d.id.index())
            .collect();
        assert_eq!(dynamic.len(), 20);
        // Dynamic docs are the top-popularity ones.
        assert!(dynamic.iter().all(|&i| i < 20));
    }

    #[test]
    fn mean_size_and_update_rate_aggregate() {
        let docs = vec![
            Document {
                id: DocId(0),
                size_bytes: 100,
                update_rate_per_sec: 0.5,
            },
            Document {
                id: DocId(1),
                size_bytes: 300,
                update_rate_per_sec: 0.25,
            },
        ];
        let cat = DocumentCatalog::from_documents(docs);
        assert_eq!(cat.mean_size_bytes(), 200.0);
        assert_eq!(cat.total_update_rate_per_sec(), 0.75);
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            CatalogConfig::default()
                .documents(50)
                .generate(&mut StdRng::seed_from_u64(seed))
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn from_documents_validates_ids() {
        let _ = DocumentCatalog::from_documents(vec![Document {
            id: DocId(5),
            size_bytes: 1,
            update_rate_per_sec: 0.0,
        }]);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        let _ = CatalogConfig::default().dynamic_fraction(1.5);
    }

    #[test]
    fn doc_id_display() {
        assert_eq!(DocId(3).to_string(), "doc3");
    }
}
