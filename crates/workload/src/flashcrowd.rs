//! Correlated regional flash-crowd workload preset.
//!
//! The sporting-event preset's flash crowd ([`RateModulation::FlashCrowd`])
//! multiplies *every* cache's request rate uniformly. Real flash crowds
//! are lumpier: a regional event (a local final, a breaking story) sends
//! a **subset of regions** into surge, and within the surge everyone
//! hammers the **same few documents** — exactly the situation where
//! in-group replica placement matters, because the affected groups' hot
//! set no longer fits behind a single holder.
//!
//! This preset models that shape:
//!
//! * caches are split into `regions` contiguous blocks (cache `c`
//!   belongs to region `c · regions / caches`, matching how the
//!   topology generator lays transit-stub domains out in id order);
//! * the first `affected_regions` blocks surge: their request rate
//!   multiplies by `surge_multiplier` inside the surge window;
//! * during the surge, an affected cache redirects each request with
//!   probability `hot_share` onto a small shared **hot set** (the top
//!   `hot_docs` catalog ranks, Zipf-weighted, *without* the per-cache
//!   rotation) — so the surge is correlated across the whole region;
//! * outside the window — and at unaffected caches always — requests
//!   follow the usual Zipf-plus-similarity rule of
//!   [`RequestConfig::generate`](crate::requests::RequestConfig::generate).
//!
//! Generation threads a single caller-supplied RNG through the caches in
//! id order, so a fixed seed reproduces the trace bit for bit.

use crate::documents::{CatalogConfig, DocId, DocumentCatalog};
use crate::requests::{RateModulation, Request};
use crate::trace::{merge_streams, TraceEvent};
use crate::updates::{generate_updates, Update};
use crate::zipf::ZipfSampler;
use rand::Rng;

/// A complete regional flash-crowd workload: catalog plus generated
/// request and update streams.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionalFlashCrowdWorkload {
    /// The document catalog (the hot set is its head: ranks
    /// `0..hot_docs`).
    pub catalog: DocumentCatalog,
    /// Time-sorted client requests.
    pub requests: Vec<Request>,
    /// Time-sorted origin updates.
    pub updates: Vec<Update>,
}

impl RegionalFlashCrowdWorkload {
    /// Merges the request and update streams into a single trace.
    pub fn merged_trace(&self) -> Vec<TraceEvent> {
        merge_streams(&self.requests, &self.updates)
    }
}

/// Builder for the regional flash-crowd preset.
///
/// # Examples
///
/// ```
/// use ecg_workload::RegionalFlashCrowdConfig;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let config = RegionalFlashCrowdConfig::default()
///     .caches(12)
///     .regions(4)
///     .affected_regions(1)
///     .duration_ms(60_000.0);
/// let workload = config.generate(&mut rng);
/// assert!(!workload.requests.is_empty());
/// assert!(config.is_affected(0) && !config.is_affected(11));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionalFlashCrowdConfig {
    documents: usize,
    caches: usize,
    regions: usize,
    affected_regions: usize,
    duration_ms: f64,
    rate_per_sec_per_cache: f64,
    surge_multiplier: f64,
    surge_start_frac: f64,
    surge_end_frac: f64,
    hot_docs: usize,
    hot_share: f64,
    similarity: f64,
    zipf_exponent: f64,
}

impl Default for RegionalFlashCrowdConfig {
    /// 2 000 documents, 60 caches in 6 regions with 2 affected, a
    /// 10-minute window surging 6× over its middle fifth, a 24-document
    /// hot set drawing 75% of surge traffic, 85% baseline similarity.
    fn default() -> Self {
        RegionalFlashCrowdConfig {
            documents: 2_000,
            caches: 60,
            regions: 6,
            affected_regions: 2,
            duration_ms: 600_000.0,
            rate_per_sec_per_cache: 2.0,
            surge_multiplier: 6.0,
            surge_start_frac: 0.4,
            surge_end_frac: 0.6,
            hot_docs: 24,
            hot_share: 0.75,
            similarity: 0.85,
            zipf_exponent: 1.1,
        }
    }
}

impl RegionalFlashCrowdConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the catalog size.
    pub fn documents(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one document");
        self.documents = n;
        self
    }

    /// Sets the number of edge caches receiving requests.
    pub fn caches(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one cache");
        self.caches = n;
        self
    }

    /// Sets the number of contiguous cache regions.
    pub fn regions(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one region");
        self.regions = n;
        self
    }

    /// Sets how many regions (the first blocks) surge.
    pub fn affected_regions(mut self, n: usize) -> Self {
        self.affected_regions = n;
        self
    }

    /// Sets the trace duration in milliseconds.
    pub fn duration_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms > 0.0, "duration must be positive");
        self.duration_ms = ms;
        self
    }

    /// Sets the baseline per-cache request rate in requests/second.
    pub fn rate_per_sec_per_cache(mut self, rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        self.rate_per_sec_per_cache = rate;
        self
    }

    /// Sets the surge rate multiplier (≥ 1) for affected regions.
    pub fn surge_multiplier(mut self, m: f64) -> Self {
        assert!(m.is_finite() && m >= 1.0, "multiplier must be >= 1");
        self.surge_multiplier = m;
        self
    }

    /// Sets the surge window as fractions of the duration.
    pub fn surge_window(mut self, start_frac: f64, end_frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&start_frac)
                && (0.0..=1.0).contains(&end_frac)
                && start_frac < end_frac,
            "need 0 <= start < end <= 1"
        );
        self.surge_start_frac = start_frac;
        self.surge_end_frac = end_frac;
        self
    }

    /// Sets the hot-set size (top catalog ranks) and the probability a
    /// surge request targets it.
    pub fn hot_set(mut self, docs: usize, share: f64) -> Self {
        assert!(docs > 0, "need at least one hot document");
        assert!((0.0..=1.0).contains(&share), "share must be in [0, 1]");
        self.hot_docs = docs;
        self.hot_share = share;
        self
    }

    /// Sets the baseline cross-cache request similarity in `[0, 1]`.
    pub fn similarity(mut self, similarity: f64) -> Self {
        assert!((0.0..=1.0).contains(&similarity), "similarity in [0, 1]");
        self.similarity = similarity;
        self
    }

    /// The region of cache `c`: contiguous id blocks, matching the
    /// transit-stub generator's domain layout.
    pub fn region_of(&self, cache: usize) -> usize {
        assert!(cache < self.caches, "cache {cache} out of range");
        cache * self.regions / self.caches
    }

    /// Whether cache `c` belongs to a surging region.
    pub fn is_affected(&self, cache: usize) -> bool {
        self.region_of(cache) < self.affected_regions
    }

    /// The surge window in milliseconds.
    pub fn surge_window_ms(&self) -> (f64, f64) {
        (
            self.duration_ms * self.surge_start_frac,
            self.duration_ms * self.surge_end_frac,
        )
    }

    /// The catalog configuration this preset uses: news-flash sizes with
    /// a 20% dynamic fraction updating every ~30 s (live coverage of the
    /// event driving the crowd).
    pub fn catalog_config(&self) -> CatalogConfig {
        CatalogConfig::default()
            .documents(self.documents)
            .median_size_bytes(8 * 1024)
            .dynamic_fraction(0.2)
            .dynamic_update_rate_per_sec(1.0 / 30.0)
            .static_update_rate_per_sec(1.0 / 86_400.0)
    }

    /// Generates the full workload: catalog, requests, updates.
    ///
    /// # Panics
    ///
    /// Panics if `affected_regions > regions` or `hot_docs > documents`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> RegionalFlashCrowdWorkload {
        assert!(
            self.affected_regions <= self.regions,
            "affected regions exceed region count"
        );
        assert!(
            self.hot_docs <= self.documents,
            "hot set exceeds the catalog"
        );
        let catalog = self.catalog_config().generate(rng);
        let requests = self.generate_requests(rng);
        let updates = generate_updates(&catalog, self.duration_ms, rng);
        RegionalFlashCrowdWorkload {
            catalog,
            requests,
            updates,
        }
    }

    /// Generates just the request stream (time-sorted).
    fn generate_requests<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Request> {
        let n_docs = self.documents;
        let zipf = ZipfSampler::new(n_docs, self.zipf_exponent);
        let hot_zipf = ZipfSampler::new(self.hot_docs, self.zipf_exponent);
        let (surge_start, surge_end) = self.surge_window_ms();
        let surge = RateModulation::FlashCrowd {
            start_ms: surge_start,
            end_ms: surge_end,
            multiplier: self.surge_multiplier,
        };

        // Per-cache rotation offsets, exactly as RequestConfig::generate.
        let offsets: Vec<usize> = (0..self.caches).map(|_| rng.gen_range(0..n_docs)).collect();

        let mut requests = Vec::new();
        for (cache, &offset) in offsets.iter().enumerate() {
            let affected = self.is_affected(cache);
            let max_factor = if affected { surge.max_factor() } else { 1.0 };
            let max_rate_per_ms = self.rate_per_sec_per_cache * max_factor / 1_000.0;
            let mut t = 0.0f64;
            loop {
                // Exponential gap at the envelope rate, then thinning —
                // the same non-homogeneous Poisson realization as
                // RequestConfig::generate, but with a per-cache envelope.
                let u: f64 = 1.0 - rng.gen::<f64>();
                t += -u.ln() / max_rate_per_ms;
                if t >= self.duration_ms {
                    break;
                }
                let factor = if affected { surge.factor(t) } else { 1.0 };
                if rng.gen::<f64>() >= factor / max_factor {
                    continue;
                }
                let surging = affected && t >= surge_start && t < surge_end;
                let doc = if surging && rng.gen::<f64>() < self.hot_share {
                    // Correlated: every affected cache draws from the
                    // same hot ranks, no rotation.
                    hot_zipf.sample(rng)
                } else {
                    let rank = zipf.sample(rng);
                    if rng.gen::<f64>() < self.similarity {
                        rank
                    } else {
                        (rank + offset) % n_docs
                    }
                };
                requests.push(Request {
                    time_ms: t,
                    cache,
                    doc: DocId(doc),
                });
            }
        }
        requests.sort_by(|a, b| {
            a.time_ms
                .partial_cmp(&b.time_ms)
                .expect("times are not NaN")
        });
        requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> RegionalFlashCrowdConfig {
        RegionalFlashCrowdConfig::default()
            .documents(300)
            .caches(12)
            .regions(4)
            .affected_regions(1)
            .duration_ms(120_000.0)
            .rate_per_sec_per_cache(4.0)
    }

    #[test]
    fn generates_consistent_sorted_workload() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = small().generate(&mut rng);
        assert_eq!(w.catalog.len(), 300);
        assert!(!w.requests.is_empty());
        assert!(!w.updates.is_empty());
        assert!(w.requests.iter().all(|r| r.cache < 12));
        assert!(w.requests.iter().all(|r| r.doc.index() < 300));
        let trace = w.merged_trace();
        for pair in trace.windows(2) {
            assert!(pair[0].time_ms() <= pair[1].time_ms());
        }
    }

    #[test]
    fn regions_are_contiguous_blocks() {
        let cfg = small();
        assert_eq!(cfg.region_of(0), 0);
        assert_eq!(cfg.region_of(2), 0);
        assert_eq!(cfg.region_of(3), 1);
        assert_eq!(cfg.region_of(11), 3);
        assert!(cfg.is_affected(2));
        assert!(!cfg.is_affected(3));
    }

    #[test]
    fn surge_hits_only_affected_regions() {
        let cfg = small();
        let mut rng = StdRng::seed_from_u64(2);
        let w = cfg.generate(&mut rng);
        let (start, end) = cfg.surge_window_ms();
        let window = end - start;
        // Requests per cache inside vs outside the window, normalized by
        // window length.
        let in_rate = |caches: &dyn Fn(usize) -> bool| {
            let inside = w
                .requests
                .iter()
                .filter(|r| caches(r.cache) && r.time_ms >= start && r.time_ms < end)
                .count() as f64
                / window;
            let outside = w
                .requests
                .iter()
                .filter(|r| caches(r.cache) && (r.time_ms < start || r.time_ms >= end))
                .count() as f64
                / (cfg.duration_ms - window);
            inside / outside
        };
        let affected_ratio = in_rate(&|c| cfg.is_affected(c));
        let calm_ratio = in_rate(&|c| !cfg.is_affected(c));
        assert!(affected_ratio > 4.0, "affected ratio {affected_ratio}");
        assert!((0.7..1.3).contains(&calm_ratio), "calm ratio {calm_ratio}");
    }

    #[test]
    fn surge_concentrates_on_the_shared_hot_set() {
        let cfg = small().hot_set(10, 0.8);
        let mut rng = StdRng::seed_from_u64(3);
        let w = cfg.generate(&mut rng);
        let (start, end) = cfg.surge_window_ms();
        let surge_reqs: Vec<_> = w
            .requests
            .iter()
            .filter(|r| cfg.is_affected(r.cache) && r.time_ms >= start && r.time_ms < end)
            .collect();
        let hot = surge_reqs.iter().filter(|r| r.doc.index() < 10).count();
        let share = hot as f64 / surge_reqs.len() as f64;
        // hot_share 0.8 directly, plus whatever the baseline Zipf head
        // contributes on the remaining 20%.
        assert!(share > 0.8, "hot share {share}");
        // Every affected cache individually leans on the same set.
        for cache in 0..3 {
            let mine: Vec<_> = surge_reqs.iter().filter(|r| r.cache == cache).collect();
            let hot = mine.iter().filter(|r| r.doc.index() < 10).count();
            assert!(
                hot as f64 / mine.len() as f64 > 0.6,
                "cache {cache}: {hot}/{}",
                mine.len()
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| small().generate(&mut StdRng::seed_from_u64(seed));
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    #[should_panic(expected = "affected regions")]
    fn too_many_affected_regions_rejected() {
        let _ = small()
            .affected_regions(9)
            .generate(&mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "start < end")]
    fn inverted_surge_window_rejected() {
        let _ = small().surge_window(0.6, 0.4);
    }
}
