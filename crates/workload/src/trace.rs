//! Trace serialization.
//!
//! The paper's simulator is file-driven: caches replay request logs, the
//! origin replays an update log. This module provides the merged trace
//! representation plus a line-oriented text format so generated workloads
//! can be persisted, inspected, and replayed byte-identically:
//!
//! ```text
//! R <time_ms> <cache> <doc>     # client request
//! U <time_ms> <doc>             # origin update
//! ```

use crate::documents::DocId;
use crate::requests::Request;
use crate::updates::Update;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

/// One event of a merged workload trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A client request arriving at a cache.
    Request(Request),
    /// A document update at the origin.
    Update(Update),
}

impl TraceEvent {
    /// Event timestamp in milliseconds.
    pub fn time_ms(&self) -> f64 {
        match self {
            TraceEvent::Request(r) => r.time_ms,
            TraceEvent::Update(u) => u.time_ms,
        }
    }
}

/// Merges a request stream and an update log into one time-sorted trace.
///
/// Both inputs must already be sorted by time (as produced by the
/// generators); ties order updates before requests so a request at the
/// same instant sees the fresh document.
pub fn merge_streams(requests: &[Request], updates: &[Update]) -> Vec<TraceEvent> {
    let mut events = Vec::with_capacity(requests.len() + updates.len());
    let (mut ri, mut ui) = (0usize, 0usize);
    while ri < requests.len() || ui < updates.len() {
        let take_update = match (requests.get(ri), updates.get(ui)) {
            (Some(r), Some(u)) => u.time_ms <= r.time_ms,
            (None, Some(_)) => true,
            _ => false,
        };
        if take_update {
            events.push(TraceEvent::Update(updates[ui]));
            ui += 1;
        } else {
            events.push(TraceEvent::Request(requests[ri]));
            ri += 1;
        }
    }
    events
}

/// Error from [`read_trace`].
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line did not parse; carries the line number (1-based) and text.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line.
        text: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, text } => {
                write!(f, "malformed trace line {line}: {text:?}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Writes a trace in the line format above.
///
/// Pass `&mut writer` to keep ownership of the writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut writer: W, events: &[TraceEvent]) -> io::Result<()> {
    for e in events {
        match e {
            TraceEvent::Request(r) => {
                writeln!(writer, "R {} {} {}", r.time_ms, r.cache, r.doc.index())?
            }
            TraceEvent::Update(u) => writeln!(writer, "U {} {}", u.time_ms, u.doc.index())?,
        }
    }
    Ok(())
}

/// Reads a trace written by [`write_trace`].
///
/// Blank lines and lines starting with `#` are skipped, so traces can be
/// annotated by hand.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] on any malformed line and
/// [`TraceError::Io`] on reader failure.
pub fn read_trace<R: Read>(reader: R) -> Result<Vec<TraceEvent>, TraceError> {
    let buf = BufReader::new(reader);
    let mut events = Vec::new();
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_ascii_whitespace();
        let parse = || TraceError::Parse {
            line: lineno + 1,
            text: line.clone(),
        };
        let kind = parts.next().ok_or_else(parse)?;
        let time_ms: f64 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(parse)?;
        let event = match kind {
            "R" => {
                let cache: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(parse)?;
                let doc: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(parse)?;
                TraceEvent::Request(Request {
                    time_ms,
                    cache,
                    doc: DocId(doc),
                })
            }
            "U" => {
                let doc: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(parse)?;
                TraceEvent::Update(Update {
                    time_ms,
                    doc: DocId(doc),
                })
            }
            _ => return Err(parse()),
        };
        if parts.next().is_some() {
            return Err(parse());
        }
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Update(Update {
                time_ms: 1.5,
                doc: DocId(7),
            }),
            TraceEvent::Request(Request {
                time_ms: 2.0,
                cache: 3,
                doc: DocId(7),
            }),
            TraceEvent::Request(Request {
                time_ms: 10.25,
                cache: 0,
                doc: DocId(1),
            }),
        ]
    }

    #[test]
    fn round_trip_preserves_events() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\nR 1.0 0 5\n  \nU 2.0 3\n";
        let events = read_trace(text.as_bytes()).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].time_ms(), 1.0);
    }

    #[test]
    fn malformed_lines_report_position() {
        let text = "R 1.0 0 5\nX 2.0\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        match err {
            TraceError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let text = "R 1.0 0 5 extra\n";
        assert!(read_trace(text.as_bytes()).is_err());
    }

    #[test]
    fn missing_fields_are_rejected() {
        for bad in ["R 1.0 0", "U 1.0", "R", "U abc 3"] {
            assert!(read_trace(bad.as_bytes()).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn merge_orders_by_time_with_updates_first_on_ties() {
        let requests = vec![
            Request {
                time_ms: 1.0,
                cache: 0,
                doc: DocId(0),
            },
            Request {
                time_ms: 5.0,
                cache: 1,
                doc: DocId(1),
            },
        ];
        let updates = vec![
            Update {
                time_ms: 1.0,
                doc: DocId(0),
            },
            Update {
                time_ms: 9.0,
                doc: DocId(2),
            },
        ];
        let merged = merge_streams(&requests, &updates);
        assert_eq!(merged.len(), 4);
        // Tie at t=1.0: update first.
        assert!(matches!(merged[0], TraceEvent::Update(_)));
        assert!(matches!(merged[1], TraceEvent::Request(_)));
        for pair in merged.windows(2) {
            assert!(pair[0].time_ms() <= pair[1].time_ms());
        }
    }

    #[test]
    fn merge_handles_empty_sides() {
        let requests = vec![Request {
            time_ms: 1.0,
            cache: 0,
            doc: DocId(0),
        }];
        let updates = vec![Update {
            time_ms: 2.0,
            doc: DocId(1),
        }];
        assert_eq!(merge_streams(&requests, &[]).len(), 1);
        assert_eq!(merge_streams(&[], &updates).len(), 1);
        assert!(merge_streams(&[], &[]).is_empty());
    }

    #[test]
    fn error_display_is_informative() {
        let err = TraceError::Parse {
            line: 3,
            text: "bogus".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains('3') && msg.contains("bogus"));
    }
}
