//! Trace statistics.
//!
//! Summarizes a merged trace: volume, per-cache load spread, measured
//! popularity skew, and update share. Used by `trace_explorer`-style
//! tooling and for validating that generated workloads have the shape
//! they were configured for.

use crate::trace::TraceEvent;

/// Summary statistics of a merged trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total request events.
    pub requests: u64,
    /// Total update events.
    pub updates: u64,
    /// Trace span in milliseconds (last event time; 0 for empty).
    pub span_ms: f64,
    /// Number of distinct caches that received at least one request.
    pub active_caches: usize,
    /// Number of distinct documents requested at least once.
    pub distinct_docs: usize,
    /// Requests at the busiest cache.
    pub max_cache_load: u64,
    /// Requests at the quietest *active* cache.
    pub min_cache_load: u64,
    /// Fraction of requests going to the most-requested document — a
    /// cheap skew indicator.
    pub top_doc_share: f64,
    /// Fraction of requests covered by the 10 most-requested documents.
    pub top10_share: f64,
}

impl TraceStats {
    /// Computes statistics over a trace (any order; events need not be
    /// sorted).
    pub fn compute(trace: &[TraceEvent]) -> TraceStats {
        use std::collections::HashMap;
        let mut requests = 0u64;
        let mut updates = 0u64;
        let mut span_ms = 0.0f64;
        let mut per_cache: HashMap<usize, u64> = HashMap::new();
        let mut per_doc: HashMap<usize, u64> = HashMap::new();
        for event in trace {
            span_ms = span_ms.max(event.time_ms());
            match event {
                TraceEvent::Request(r) => {
                    requests += 1;
                    *per_cache.entry(r.cache).or_default() += 1;
                    *per_doc.entry(r.doc.index()).or_default() += 1;
                }
                TraceEvent::Update(_) => updates += 1,
            }
        }
        let mut doc_counts: Vec<u64> = per_doc.values().copied().collect();
        doc_counts.sort_unstable_by(|a, b| b.cmp(a));
        let share = |top: usize| -> f64 {
            if requests == 0 {
                0.0
            } else {
                doc_counts.iter().take(top).sum::<u64>() as f64 / requests as f64
            }
        };
        TraceStats {
            requests,
            updates,
            span_ms,
            active_caches: per_cache.len(),
            distinct_docs: per_doc.len(),
            max_cache_load: per_cache.values().copied().max().unwrap_or(0),
            min_cache_load: per_cache.values().copied().min().unwrap_or(0),
            top_doc_share: share(1),
            top10_share: share(10),
        }
    }

    /// Ratio of busiest to quietest active cache load, or `None` if no
    /// cache received requests.
    pub fn load_imbalance(&self) -> Option<f64> {
        if self.min_cache_load == 0 {
            None
        } else {
            Some(self.max_cache_load as f64 / self.min_cache_load as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::documents::DocId;
    use crate::requests::Request;
    use crate::updates::Update;
    use crate::{CatalogConfig, RequestConfig, SportingEventConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn req(time_ms: f64, cache: usize, doc: usize) -> TraceEvent {
        TraceEvent::Request(Request {
            time_ms,
            cache,
            doc: DocId(doc),
        })
    }

    #[test]
    fn empty_trace_stats() {
        let s = TraceStats::compute(&[]);
        assert_eq!(s.requests, 0);
        assert_eq!(s.updates, 0);
        assert_eq!(s.span_ms, 0.0);
        assert_eq!(s.load_imbalance(), None);
        assert_eq!(s.top_doc_share, 0.0);
    }

    #[test]
    fn hand_built_trace_counts() {
        let trace = vec![
            req(1.0, 0, 5),
            req(2.0, 0, 5),
            req(3.0, 1, 7),
            TraceEvent::Update(Update {
                time_ms: 9.0,
                doc: DocId(5),
            }),
        ];
        let s = TraceStats::compute(&trace);
        assert_eq!(s.requests, 3);
        assert_eq!(s.updates, 1);
        assert_eq!(s.span_ms, 9.0);
        assert_eq!(s.active_caches, 2);
        assert_eq!(s.distinct_docs, 2);
        assert_eq!(s.max_cache_load, 2);
        assert_eq!(s.min_cache_load, 1);
        assert_eq!(s.load_imbalance(), Some(2.0));
        assert!((s.top_doc_share - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.top10_share, 1.0);
    }

    #[test]
    fn skew_indicator_tracks_zipf_exponent() {
        let mut rng = StdRng::seed_from_u64(1);
        let cat = CatalogConfig::default().documents(500).generate(&mut rng);
        let stats_for = |s_exp: f64, rng: &mut StdRng| -> TraceStats {
            let reqs = RequestConfig::default()
                .zipf_exponent(s_exp)
                .similarity(1.0)
                .rate_per_sec_per_cache(10.0)
                .generate(&cat, 5, 60_000.0, rng);
            let trace: Vec<TraceEvent> = reqs.into_iter().map(TraceEvent::Request).collect();
            TraceStats::compute(&trace)
        };
        let flat = stats_for(0.3, &mut rng);
        let steep = stats_for(1.3, &mut rng);
        assert!(
            steep.top10_share > flat.top10_share,
            "steep {} vs flat {}",
            steep.top10_share,
            flat.top10_share
        );
    }

    #[test]
    fn preset_workload_stats_are_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = SportingEventConfig::default()
            .caches(10)
            .documents(300)
            .duration_ms(60_000.0)
            .generate(&mut rng);
        let s = TraceStats::compute(&w.merged_trace());
        assert_eq!(s.requests, w.requests.len() as u64);
        assert_eq!(s.updates, w.updates.len() as u64);
        assert_eq!(s.active_caches, 10);
        assert!(s.span_ms <= 60_000.0);
        assert!(s.top10_share > 0.2, "sporting preset should be skewed");
    }
}
