//! Zipf-distributed popularity sampling.
//!
//! Web object popularity is famously Zipf-like, and the Sydney Olympics
//! trace the paper's datasets were derived from is no exception. This
//! sampler draws ranks from `P(rank = r) ∝ 1 / r^s` exactly, via a
//! precomputed CDF and binary search — no externally sourced
//! distribution crate needed.

use rand::Rng;

/// An exact Zipf sampler over ranks `0..n` (rank 0 is most popular).
///
/// # Examples
///
/// ```
/// use ecg_workload::ZipfSampler;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = ZipfSampler::new(1000, 0.9);
/// let mut rng = StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    exponent: f64,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// `s = 0` degenerates to the uniform distribution; web workloads
    /// typically sit between `0.6` and `1.2`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point round-off at the tail.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf, exponent: s }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler covers no ranks (never happens for a
    /// constructed sampler; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent `s` the sampler was built with.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of drawing `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn probability(&self, rank: usize) -> f64 {
        let hi = self.cdf[rank];
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        hi - lo
    }

    /// Draws a rank in `0..len()`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index with cdf >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(100, 0.8);
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = ZipfSampler::new(50, 1.0);
        for r in 1..50 {
            assert!(z.probability(0) >= z.probability(r));
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empirical_frequencies_match_probabilities() {
        let z = ZipfSampler::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 100_000;
        let mut counts = [0usize; 20];
        for _ in 0..trials {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let expected = z.probability(r);
            let observed = count as f64 / trials as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {r}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn higher_exponent_concentrates_mass() {
        let flat = ZipfSampler::new(100, 0.5);
        let steep = ZipfSampler::new(100, 1.5);
        assert!(steep.probability(0) > flat.probability(0));
        assert!(steep.probability(99) < flat.probability(99));
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(7, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn negative_exponent_panics() {
        let _ = ZipfSampler::new(5, -1.0);
    }
}
