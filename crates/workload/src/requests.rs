//! Client request stream generation.
//!
//! The caches in the paper's simulator "are driven by request-log files"
//! derived from the 2000 Sydney Olympics IBM site. That trace is
//! proprietary, so this module generates the synthetic equivalent: each
//! edge cache receives a Poisson stream of requests over a Zipf document
//! popularity distribution, with a **similarity** knob controlling how
//! much the caches' request patterns overlap (the paper assumes "the
//! request patterns of the edge caches exhibit considerable degree of
//! similarity") and optional non-stationary rate modulation (diurnal
//! cycles, flash crowds).

use crate::documents::{DocId, DocumentCatalog};
use crate::zipf::ZipfSampler;
use rand::Rng;

/// One client request arriving at an edge cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Arrival time in milliseconds since the start of the run.
    pub time_ms: f64,
    /// Index of the edge cache the request arrives at.
    pub cache: usize,
    /// The requested document.
    pub doc: DocId,
}

/// Time-varying request rate envelope.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RateModulation {
    /// Stationary arrivals. The default.
    #[default]
    Constant,
    /// Sinusoidal day/night cycle: the factor swings between
    /// `1 - amplitude` and `1 + amplitude` over each period.
    Diurnal {
        /// Cycle length in milliseconds.
        period_ms: f64,
        /// Swing amplitude in `[0, 1)`.
        amplitude: f64,
    },
    /// A flash crowd: rate multiplies by `multiplier` between `start_ms`
    /// and `end_ms` — the gold-medal-final moment of a sporting-event
    /// site.
    FlashCrowd {
        /// Surge start, ms.
        start_ms: f64,
        /// Surge end, ms.
        end_ms: f64,
        /// Rate multiplier during the surge (≥ 1).
        multiplier: f64,
    },
}

impl RateModulation {
    /// Rate multiplier at time `t_ms` (always ≥ 0).
    pub fn factor(&self, t_ms: f64) -> f64 {
        match *self {
            RateModulation::Constant => 1.0,
            RateModulation::Diurnal {
                period_ms,
                amplitude,
            } => 1.0 + amplitude * (std::f64::consts::TAU * t_ms / period_ms).sin(),
            RateModulation::FlashCrowd {
                start_ms,
                end_ms,
                multiplier,
            } => {
                if t_ms >= start_ms && t_ms < end_ms {
                    multiplier
                } else {
                    1.0
                }
            }
        }
    }

    /// Upper bound of the factor over all times (used for thinning).
    pub fn max_factor(&self) -> f64 {
        match *self {
            RateModulation::Constant => 1.0,
            RateModulation::Diurnal { amplitude, .. } => 1.0 + amplitude,
            RateModulation::FlashCrowd { multiplier, .. } => multiplier.max(1.0),
        }
    }
}

/// Configuration of per-cache request streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestConfig {
    rate_per_sec_per_cache: f64,
    zipf_exponent: f64,
    similarity: f64,
    modulation: RateModulation,
}

impl Default for RequestConfig {
    /// Two requests/second per cache, Zipf exponent 0.9, 80% pattern
    /// similarity, stationary arrivals.
    fn default() -> Self {
        RequestConfig {
            rate_per_sec_per_cache: 2.0,
            zipf_exponent: 0.9,
            similarity: 0.8,
            modulation: RateModulation::Constant,
        }
    }
}

impl RequestConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the Poisson arrival rate per cache, in requests/second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn rate_per_sec_per_cache(mut self, rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        self.rate_per_sec_per_cache = rate;
        self
    }

    /// Sets the Zipf popularity exponent.
    pub fn zipf_exponent(mut self, s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "exponent must be >= 0");
        self.zipf_exponent = s;
        self
    }

    /// Sets the request pattern similarity across caches, in `[0, 1]`.
    ///
    /// With probability `similarity` a request draws from the shared
    /// global popularity ranking; otherwise it draws from a cache-local
    /// rotation of the catalog, so different caches favour different
    /// documents.
    pub fn similarity(mut self, similarity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&similarity),
            "similarity must be in [0, 1]"
        );
        self.similarity = similarity;
        self
    }

    /// Sets the time-varying rate envelope.
    pub fn modulation(mut self, modulation: RateModulation) -> Self {
        self.modulation = modulation;
        self
    }

    /// The configured similarity.
    pub fn similarity_value(&self) -> f64 {
        self.similarity
    }

    /// The configured Zipf popularity exponent. Consumers that share one
    /// [`ZipfSampler`] across shards (see
    /// [`RequestConfig::stream_cache`]) build it with this value.
    pub fn zipf_exponent_value(&self) -> f64 {
        self.zipf_exponent
    }

    /// Expected number of requests over `caches` caches and
    /// `duration_ms` milliseconds (ignoring modulation).
    pub fn expected_requests(&self, caches: usize, duration_ms: f64) -> f64 {
        self.rate_per_sec_per_cache * caches as f64 * duration_ms / 1_000.0
    }

    /// Generates the merged, time-sorted request stream for `caches`
    /// edge caches over `duration_ms` milliseconds.
    ///
    /// Arrivals are a non-homogeneous Poisson process realized by
    /// thinning; document choice is Zipf over the catalog with the
    /// similarity rule above.
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty or `caches == 0`.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        catalog: &DocumentCatalog,
        caches: usize,
        duration_ms: f64,
        rng: &mut R,
    ) -> Vec<Request> {
        assert!(!catalog.is_empty(), "catalog must contain documents");
        assert!(caches > 0, "need at least one cache");
        let zipf = ZipfSampler::new(catalog.len(), self.zipf_exponent);
        let n_docs = catalog.len();

        // Per-cache rotation offsets implement dissimilarity cheaply: a
        // cache's "local" popularity ranking is the global one rotated by
        // a random offset, so local hot sets differ but stay Zipf-shaped.
        let offsets: Vec<usize> = (0..caches).map(|_| rng.gen_range(0..n_docs)).collect();

        let max_rate_per_ms = self.rate_per_sec_per_cache * self.modulation.max_factor() / 1_000.0;
        let mut requests = Vec::new();
        for (cache, &offset) in offsets.iter().enumerate() {
            let mut t = 0.0f64;
            loop {
                // Exponential gap at the envelope rate.
                let u: f64 = 1.0 - rng.gen::<f64>();
                t += -u.ln() / max_rate_per_ms;
                if t >= duration_ms {
                    break;
                }
                // Thinning: accept with probability factor(t)/max_factor.
                let accept = self.modulation.factor(t) / self.modulation.max_factor();
                if rng.gen::<f64>() >= accept {
                    continue;
                }
                let rank = zipf.sample(rng);
                let doc = if rng.gen::<f64>() < self.similarity {
                    rank
                } else {
                    (rank + offset) % n_docs
                };
                requests.push(Request {
                    time_ms: t,
                    cache,
                    doc: DocId(doc),
                });
            }
        }
        requests.sort_by(|a, b| {
            a.time_ms
                .partial_cmp(&b.time_ms)
                .expect("times are not NaN")
        });
        requests
    }

    /// Eager, thread-count-invariant request generation from an explicit
    /// master seed: every cache's stream is realized by
    /// [`RequestConfig::stream_cache`] on an [`ecg_par`] worker, then
    /// the streams are concatenated in cache order and stably sorted by
    /// time (so simultaneous arrivals order by ascending cache id —
    /// exactly the order `ecg-replay`'s streaming shard merge
    /// reproduces without ever materializing this vector).
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty or `caches == 0`.
    pub fn generate_with_master(
        &self,
        catalog: &DocumentCatalog,
        caches: usize,
        duration_ms: f64,
        master: u64,
    ) -> Vec<Request> {
        assert!(!catalog.is_empty(), "catalog must contain documents");
        assert!(caches > 0, "need at least one cache");
        let zipf = ZipfSampler::new(catalog.len(), self.zipf_exponent);

        let per_cache: Vec<Vec<Request>> = ecg_par::par_map((0..caches).collect(), |cache| {
            self.stream_cache(&zipf, cache, master, duration_ms)
                .collect()
        });
        let mut requests: Vec<Request> = per_cache.into_iter().flatten().collect();
        // Stable sort: simultaneous arrivals keep cache order, exactly
        // like the sequential generator's concatenation-then-sort.
        requests.sort_by(|a, b| {
            a.time_ms
                .partial_cmp(&b.time_ms)
                .expect("times are not NaN")
        });
        requests
    }

    /// One cache's request stream as a lazy iterator — the derived-seed
    /// streaming primitive behind [`RequestConfig::generate_with_master`].
    ///
    /// The stream is a pure function of `(master, cache, config,
    /// catalog size)`: it seeds an [`rand::rngs::StdRng`] with
    /// [`ecg_par::derive_seed`]`(master, cache)`, draws the cache's
    /// rotation offset, then yields thinned non-homogeneous Poisson
    /// arrivals until `duration_ms`. Any shard can therefore (re)build
    /// exactly its own caches' arrivals from the master seed alone —
    /// no shared generator state, no materialized global trace — which
    /// is what lets `ecg-replay` run 50k-cache, million-request replays
    /// in bounded memory.
    ///
    /// `zipf` must be built over the catalog's document count with this
    /// config's exponent (it is shared read-only across shards; see
    /// [`ZipfSampler`]).
    ///
    /// # Panics
    ///
    /// Panics if `zipf` is empty.
    pub fn stream_cache<'a>(
        &self,
        zipf: &'a ZipfSampler,
        cache: usize,
        master: u64,
        duration_ms: f64,
    ) -> RequestStream<'a> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        assert!(!zipf.is_empty(), "catalog must contain documents");
        let mut rng = StdRng::seed_from_u64(ecg_par::derive_seed(master, cache as u64));
        let offset = rng.gen_range(0..zipf.len());
        RequestStream {
            config: *self,
            zipf,
            cache,
            offset,
            duration_ms,
            max_rate_per_ms: self.rate_per_sec_per_cache * self.modulation.max_factor() / 1_000.0,
            t: 0.0,
            rng,
            done: false,
        }
    }
}

/// Lazy per-cache request stream created by
/// [`RequestConfig::stream_cache`].
///
/// Yields one cache's arrivals in time order and stops (fused) once the
/// next arrival would land at or past the configured horizon. Dropping
/// and re-creating the stream from the same `(master, cache)` pair
/// replays it identically — resumability comes from derived seeding,
/// not from checkpointing generator state.
#[derive(Debug, Clone)]
pub struct RequestStream<'a> {
    config: RequestConfig,
    zipf: &'a ZipfSampler,
    cache: usize,
    offset: usize,
    duration_ms: f64,
    max_rate_per_ms: f64,
    t: f64,
    rng: rand::rngs::StdRng,
    done: bool,
}

impl RequestStream<'_> {
    /// The cache whose arrivals this stream yields.
    pub fn cache(&self) -> usize {
        self.cache
    }
}

impl Iterator for RequestStream<'_> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.done {
            return None;
        }
        let n_docs = self.zipf.len();
        loop {
            // Exponential gap at the envelope rate.
            let u: f64 = 1.0 - self.rng.gen::<f64>();
            self.t += -u.ln() / self.max_rate_per_ms;
            if self.t >= self.duration_ms {
                self.done = true;
                return None;
            }
            // Thinning: accept with probability factor(t)/max_factor.
            let accept =
                self.config.modulation.factor(self.t) / self.config.modulation.max_factor();
            if self.rng.gen::<f64>() >= accept {
                continue;
            }
            let rank = self.zipf.sample(&mut self.rng);
            let doc = if self.rng.gen::<f64>() < self.config.similarity {
                rank
            } else {
                (rank + self.offset) % n_docs
            };
            return Some(Request {
                time_ms: self.t,
                cache: self.cache,
                doc: DocId(doc),
            });
        }
    }
}

impl std::iter::FusedIterator for RequestStream<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::documents::CatalogConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog(n: usize, seed: u64) -> DocumentCatalog {
        CatalogConfig::default()
            .documents(n)
            .generate(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn stream_is_sorted_and_in_range() {
        let cat = catalog(100, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let reqs = RequestConfig::default().generate(&cat, 5, 60_000.0, &mut rng);
        assert!(!reqs.is_empty());
        for pair in reqs.windows(2) {
            assert!(pair[0].time_ms <= pair[1].time_ms);
        }
        assert!(reqs.iter().all(|r| r.cache < 5));
        assert!(reqs.iter().all(|r| r.doc.index() < 100));
        assert!(reqs
            .iter()
            .all(|r| r.time_ms >= 0.0 && r.time_ms < 60_000.0));
    }

    #[test]
    fn volume_matches_rate() {
        let cat = catalog(50, 0);
        let cfg = RequestConfig::default().rate_per_sec_per_cache(5.0);
        let mut rng = StdRng::seed_from_u64(2);
        let reqs = cfg.generate(&cat, 4, 100_000.0, &mut rng);
        let expected = cfg.expected_requests(4, 100_000.0);
        let actual = reqs.len() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.1,
            "expected ~{expected}, got {actual}"
        );
    }

    #[test]
    fn full_similarity_gives_identical_popularity() {
        // With similarity 1.0 every cache's most-requested doc should be
        // the global rank-0 document.
        let cat = catalog(200, 0);
        let cfg = RequestConfig::default()
            .similarity(1.0)
            .zipf_exponent(1.2)
            .rate_per_sec_per_cache(20.0);
        let mut rng = StdRng::seed_from_u64(3);
        let reqs = cfg.generate(&cat, 3, 200_000.0, &mut rng);
        for cache in 0..3 {
            let mut counts = vec![0usize; 200];
            for r in reqs.iter().filter(|r| r.cache == cache) {
                counts[r.doc.index()] += 1;
            }
            let top = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .expect("non-empty");
            assert_eq!(top, 0, "cache {cache} top doc {top}");
        }
    }

    #[test]
    fn zero_similarity_decorrelates_hot_sets() {
        // With similarity 0 and distinct rotations, at least one pair of
        // caches should disagree on the hottest doc.
        let cat = catalog(500, 0);
        let cfg = RequestConfig::default()
            .similarity(0.0)
            .zipf_exponent(1.2)
            .rate_per_sec_per_cache(20.0);
        let mut rng = StdRng::seed_from_u64(5);
        let reqs = cfg.generate(&cat, 4, 100_000.0, &mut rng);
        let tops: Vec<usize> = (0..4)
            .map(|cache| {
                let mut counts = vec![0usize; 500];
                for r in reqs.iter().filter(|r| r.cache == cache) {
                    counts[r.doc.index()] += 1;
                }
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(i, _)| i)
                    .expect("non-empty")
            })
            .collect();
        let all_same = tops.iter().all(|&t| t == tops[0]);
        assert!(!all_same, "tops {tops:?}");
    }

    #[test]
    fn flash_crowd_concentrates_requests() {
        let cat = catalog(50, 0);
        let cfg = RequestConfig::default()
            .rate_per_sec_per_cache(2.0)
            .modulation(RateModulation::FlashCrowd {
                start_ms: 40_000.0,
                end_ms: 60_000.0,
                multiplier: 10.0,
            });
        let mut rng = StdRng::seed_from_u64(6);
        let reqs = cfg.generate(&cat, 2, 100_000.0, &mut rng);
        let surge = reqs
            .iter()
            .filter(|r| r.time_ms >= 40_000.0 && r.time_ms < 60_000.0)
            .count() as f64;
        let calm = reqs.iter().filter(|r| r.time_ms < 20_000.0).count() as f64;
        // The surge window is the same length as the calm window but at
        // 10x the rate.
        assert!(surge > 5.0 * calm, "surge {surge} vs calm {calm}");
    }

    #[test]
    fn diurnal_factor_is_bounded() {
        let m = RateModulation::Diurnal {
            period_ms: 1_000.0,
            amplitude: 0.5,
        };
        for i in 0..100 {
            let f = m.factor(i as f64 * 37.0);
            assert!((0.5..=1.5).contains(&f));
        }
        assert_eq!(m.max_factor(), 1.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let cat = catalog(50, 0);
        let gen = |seed| {
            RequestConfig::default().generate(&cat, 3, 10_000.0, &mut StdRng::seed_from_u64(seed))
        };
        assert_eq!(gen(4), gen(4));
    }

    #[test]
    fn par_stream_is_thread_count_invariant() {
        let cat = catalog(80, 0);
        let cfg = RequestConfig::default().rate_per_sec_per_cache(5.0);
        let gen = |threads| {
            ecg_par::set_max_threads(Some(threads));
            let reqs = cfg.generate_with_master(&cat, 6, 20_000.0, 21);
            ecg_par::set_max_threads(None);
            reqs
        };
        let one = gen(1);
        let four = gen(4);
        assert!(!one.is_empty());
        assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.time_ms.to_bits(), b.time_ms.to_bits());
            assert_eq!((a.cache, a.doc), (b.cache, b.doc));
        }
    }

    #[test]
    fn stream_cache_realizes_generate_with_master_per_cache() {
        let cat = catalog(60, 0);
        let cfg = RequestConfig::default()
            .rate_per_sec_per_cache(4.0)
            .modulation(RateModulation::FlashCrowd {
                start_ms: 2_000.0,
                end_ms: 6_000.0,
                multiplier: 5.0,
            });
        let master = 0xBEEF_CAFE;
        let eager = cfg.generate_with_master(&cat, 4, 15_000.0, master);
        let zipf = ZipfSampler::new(cat.len(), 0.9);
        for cache in 0..4 {
            let streamed: Vec<Request> = cfg.stream_cache(&zipf, cache, master, 15_000.0).collect();
            let expected: Vec<Request> =
                eager.iter().filter(|r| r.cache == cache).copied().collect();
            assert_eq!(streamed, expected, "cache {cache} stream diverged");
        }
    }

    #[test]
    fn stream_cache_is_resumable_and_fused() {
        let cat = catalog(40, 0);
        let cfg = RequestConfig::default().rate_per_sec_per_cache(6.0);
        let zipf = ZipfSampler::new(cat.len(), 0.9);
        // Re-creating the stream from the same (master, cache) replays it.
        let a: Vec<Request> = cfg.stream_cache(&zipf, 2, 9, 10_000.0).collect();
        let b: Vec<Request> = cfg.stream_cache(&zipf, 2, 9, 10_000.0).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert_eq!(cfg.stream_cache(&zipf, 2, 9, 10_000.0).cache(), 2);
        // Fused: keeps returning None after exhaustion.
        let mut s = cfg.stream_cache(&zipf, 0, 9, 500.0);
        while s.next().is_some() {}
        assert!(s.next().is_none());
        assert!(s.next().is_none());
    }

    #[test]
    fn par_stream_is_sorted_valid_and_rate_matched() {
        let cat = catalog(100, 0);
        let cfg = RequestConfig::default().rate_per_sec_per_cache(5.0);
        let reqs = cfg.generate_with_master(&cat, 4, 100_000.0, 8);
        for pair in reqs.windows(2) {
            assert!(pair[0].time_ms <= pair[1].time_ms);
        }
        assert!(reqs.iter().all(|r| r.cache < 4 && r.doc.index() < 100));
        let expected = cfg.expected_requests(4, 100_000.0);
        let actual = reqs.len() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.1,
            "expected ~{expected}, got {actual}"
        );
    }

    #[test]
    #[should_panic(expected = "similarity")]
    fn bad_similarity_panics() {
        let _ = RequestConfig::default().similarity(2.0);
    }
}
