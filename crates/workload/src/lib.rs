//! Synthetic dynamic-content workloads for edge cache simulations.
//!
//! The paper's simulator is trace-driven: "the caches in the simulated
//! edge cache network are driven by request-log files, while the origin
//! server reads continuously from an update log file", with data derived
//! from the IBM 2000 Sydney Olympics site. The real trace is proprietary;
//! this crate generates the synthetic equivalent:
//!
//! * [`ZipfSampler`] — exact Zipf popularity sampling (implemented
//!   in-crate, no external distribution dependency).
//! * [`CatalogConfig`] / [`DocumentCatalog`] — documents with log-normal
//!   sizes and per-document update rates (dynamic scoreboard pages vs.
//!   static content).
//! * [`RequestConfig`] — per-cache Poisson request streams with a
//!   cross-cache *similarity* knob and non-stationary modulation
//!   (diurnal, flash crowd).
//! * [`generate_updates`] — the origin's update log.
//! * [`trace`] — merged trace representation plus a line-oriented text
//!   format for persistence and replay.
//! * [`SportingEventConfig`] — one-call preset reproducing the Olympics
//!   workload shape.
//!
//! # Examples
//!
//! ```
//! use ecg_workload::SportingEventConfig;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let workload = SportingEventConfig::default()
//!     .documents(500)
//!     .caches(20)
//!     .duration_ms(60_000.0)
//!     .generate(&mut rng);
//! println!(
//!     "{} requests, {} updates over {} documents",
//!     workload.requests.len(),
//!     workload.updates.len(),
//!     workload.catalog.len(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod documents;
pub mod flashcrowd;
pub mod news;
pub mod requests;
pub mod sporting;
pub mod stats;
pub mod trace;
pub mod updates;
pub mod zipf;

pub use documents::{CatalogConfig, DocId, Document, DocumentCatalog};
pub use flashcrowd::{RegionalFlashCrowdConfig, RegionalFlashCrowdWorkload};
pub use news::{NewsSiteConfig, NewsSiteWorkload};
pub use requests::{RateModulation, Request, RequestConfig, RequestStream};
pub use sporting::{SportingEventConfig, SportingEventWorkload};
pub use stats::TraceStats;
pub use trace::{merge_streams, read_trace, write_trace, TraceError, TraceEvent};
pub use updates::{generate_updates, Update};
pub use zipf::ZipfSampler;
