//! Sporting-event workload preset.
//!
//! The paper's datasets "were derived from a real trace logged at a major
//! IBM sporting and event web site" — the 2000 Sydney Olympic Games site.
//! That trace is proprietary, so this preset reproduces its published
//! characteristics synthetically (the substitution is documented in
//! DESIGN.md):
//!
//! * highly skewed popularity (medal tables and finals dominate),
//! * a meaningful fraction of *dynamic* documents — scoreboards and
//!   result pages that update continually,
//! * flash crowds around marquee events,
//! * strong cross-region similarity of interest (everyone watches the
//!   same finals), which is exactly the paper's standing assumption
//!   about request patterns.

use crate::documents::{CatalogConfig, DocumentCatalog};
use crate::requests::{RateModulation, Request, RequestConfig};
use crate::trace::{merge_streams, TraceEvent};
use crate::updates::{generate_updates, Update};
use rand::Rng;

/// A complete synthetic sporting-event workload: catalog plus generated
/// request and update streams.
#[derive(Debug, Clone, PartialEq)]
pub struct SportingEventWorkload {
    /// The document catalog (scoreboards first: they are both the most
    /// popular and the most frequently updated documents).
    pub catalog: DocumentCatalog,
    /// Time-sorted client requests.
    pub requests: Vec<Request>,
    /// Time-sorted origin updates.
    pub updates: Vec<Update>,
}

impl SportingEventWorkload {
    /// Merges the request and update streams into a single trace.
    pub fn merged_trace(&self) -> Vec<TraceEvent> {
        merge_streams(&self.requests, &self.updates)
    }
}

/// Builder for the sporting-event preset.
///
/// # Examples
///
/// ```
/// use ecg_workload::SportingEventConfig;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let workload = SportingEventConfig::default()
///     .caches(10)
///     .duration_ms(30_000.0)
///     .generate(&mut rng);
/// assert!(!workload.requests.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SportingEventConfig {
    documents: usize,
    caches: usize,
    duration_ms: f64,
    rate_per_sec_per_cache: f64,
    similarity: f64,
    flash_crowd: bool,
}

impl Default for SportingEventConfig {
    /// 2 000 documents, 50 caches, a 10-minute window, 2 req/s per cache,
    /// 85% similarity, flash crowd enabled in the middle fifth of the
    /// window.
    fn default() -> Self {
        SportingEventConfig {
            documents: 2_000,
            caches: 50,
            duration_ms: 600_000.0,
            rate_per_sec_per_cache: 2.0,
            similarity: 0.85,
            flash_crowd: true,
        }
    }
}

impl SportingEventConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the catalog size.
    pub fn documents(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one document");
        self.documents = n;
        self
    }

    /// Sets the number of edge caches receiving requests.
    pub fn caches(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one cache");
        self.caches = n;
        self
    }

    /// Sets the trace duration in milliseconds.
    pub fn duration_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms > 0.0, "duration must be positive");
        self.duration_ms = ms;
        self
    }

    /// Sets the per-cache request rate in requests/second.
    pub fn rate_per_sec_per_cache(mut self, rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        self.rate_per_sec_per_cache = rate;
        self
    }

    /// Sets the cross-cache request similarity in `[0, 1]`.
    pub fn similarity(mut self, similarity: f64) -> Self {
        assert!((0.0..=1.0).contains(&similarity), "similarity in [0, 1]");
        self.similarity = similarity;
        self
    }

    /// Enables or disables the mid-trace flash crowd.
    pub fn flash_crowd(mut self, enabled: bool) -> Self {
        self.flash_crowd = enabled;
        self
    }

    /// The catalog configuration this preset uses: Olympics-like sizes
    /// and a 15% dynamic (scoreboard) fraction updating every ~20 s.
    pub fn catalog_config(&self) -> CatalogConfig {
        CatalogConfig::default()
            .documents(self.documents)
            .median_size_bytes(6 * 1024)
            .dynamic_fraction(0.15)
            .dynamic_update_rate_per_sec(1.0 / 20.0)
            .static_update_rate_per_sec(1.0 / 86_400.0)
    }

    /// The request configuration this preset uses.
    pub fn request_config(&self) -> RequestConfig {
        let mut cfg = RequestConfig::default()
            .rate_per_sec_per_cache(self.rate_per_sec_per_cache)
            .zipf_exponent(1.1)
            .similarity(self.similarity);
        if self.flash_crowd {
            cfg = cfg.modulation(RateModulation::FlashCrowd {
                start_ms: self.duration_ms * 0.4,
                end_ms: self.duration_ms * 0.6,
                multiplier: 4.0,
            });
        }
        cfg
    }

    /// Generates the full workload: catalog, requests, updates.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> SportingEventWorkload {
        let catalog = self.catalog_config().generate(rng);
        let requests = self
            .request_config()
            .generate(&catalog, self.caches, self.duration_ms, rng);
        let updates = generate_updates(&catalog, self.duration_ms, rng);
        SportingEventWorkload {
            catalog,
            requests,
            updates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> SportingEventConfig {
        SportingEventConfig::default()
            .documents(200)
            .caches(5)
            .duration_ms(60_000.0)
    }

    #[test]
    fn generates_consistent_workload() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = small().generate(&mut rng);
        assert_eq!(w.catalog.len(), 200);
        assert!(!w.requests.is_empty());
        assert!(!w.updates.is_empty());
        assert!(w.requests.iter().all(|r| r.doc.index() < 200));
        assert!(w.updates.iter().all(|u| u.doc.index() < 200));
    }

    #[test]
    fn merged_trace_is_sorted() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = small().generate(&mut rng);
        let trace = w.merged_trace();
        assert_eq!(trace.len(), w.requests.len() + w.updates.len());
        for pair in trace.windows(2) {
            assert!(pair[0].time_ms() <= pair[1].time_ms());
        }
    }

    #[test]
    fn updates_hit_the_scoreboard_fraction() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = small().generate(&mut rng);
        // Dynamic fraction is 15%: (nearly) all updates land in the top
        // 15% of the catalog; static docs update ~once/day so a 1-minute
        // window should see none.
        let cutoff = 200 * 15 / 100;
        let hot = w.updates.iter().filter(|u| u.doc.index() < cutoff).count();
        assert!(
            hot as f64 / w.updates.len() as f64 > 0.95,
            "{hot}/{}",
            w.updates.len()
        );
    }

    #[test]
    fn flash_crowd_toggle_changes_volume_shape() {
        let volume_mid = |flash: bool| {
            let mut rng = StdRng::seed_from_u64(4);
            let w = small().flash_crowd(flash).generate(&mut rng);
            w.requests
                .iter()
                .filter(|r| r.time_ms >= 24_000.0 && r.time_ms < 36_000.0)
                .count()
        };
        assert!(volume_mid(true) as f64 > 2.0 * volume_mid(false) as f64);
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| small().generate(&mut StdRng::seed_from_u64(seed));
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_rejected() {
        let _ = SportingEventConfig::default().duration_ms(0.0);
    }
}
