//! Origin update streams.
//!
//! In the paper's simulator "the origin server reads continuously from an
//! update log file": documents change over time, and a cached copy of an
//! updated document is stale. This module generates that update log as
//! the superposition of independent per-document Poisson processes with
//! the rates recorded in the [`DocumentCatalog`].

use crate::documents::{DocId, DocumentCatalog};
use rand::Rng;

/// One document update at the origin server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Update {
    /// Update time in milliseconds since the start of the run.
    pub time_ms: f64,
    /// The updated document.
    pub doc: DocId,
}

/// Generates the time-sorted update log for `duration_ms` milliseconds.
///
/// Uses the superposition property: inter-update gaps are exponential at
/// the catalog's total rate, and each update picks a document with
/// probability proportional to its individual rate (CDF + binary
/// search), which is exactly equivalent to running one Poisson process
/// per document.
///
/// Returns an empty log if no document has a positive update rate.
///
/// # Panics
///
/// Panics if the catalog is empty or `duration_ms` is negative/not
/// finite.
///
/// # Examples
///
/// ```
/// use ecg_workload::{generate_updates, CatalogConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let catalog = CatalogConfig::default().documents(100).generate(&mut rng);
/// let updates = generate_updates(&catalog, 60_000.0, &mut rng);
/// for pair in updates.windows(2) {
///     assert!(pair[0].time_ms <= pair[1].time_ms);
/// }
/// ```
pub fn generate_updates<R: Rng + ?Sized>(
    catalog: &DocumentCatalog,
    duration_ms: f64,
    rng: &mut R,
) -> Vec<Update> {
    assert!(!catalog.is_empty(), "catalog must contain documents");
    assert!(
        duration_ms.is_finite() && duration_ms >= 0.0,
        "duration must be finite and non-negative"
    );
    let total_rate_per_ms = catalog.total_update_rate_per_sec() / 1_000.0;
    if total_rate_per_ms <= 0.0 {
        return Vec::new();
    }

    // CDF over documents weighted by update rate.
    let mut cdf = Vec::with_capacity(catalog.len());
    let mut acc = 0.0;
    for d in catalog.iter() {
        acc += d.update_rate_per_sec;
        cdf.push(acc);
    }
    let total = acc;

    let mut updates = Vec::new();
    let mut t = 0.0f64;
    loop {
        let u: f64 = 1.0 - rng.gen::<f64>();
        t += -u.ln() / total_rate_per_ms;
        if t >= duration_ms {
            break;
        }
        let target = rng.gen::<f64>() * total;
        let idx = match cdf.binary_search_by(|c| c.partial_cmp(&target).expect("cdf has no NaN")) {
            Ok(i) => i,
            Err(i) => i.min(cdf.len() - 1),
        };
        updates.push(Update {
            time_ms: t,
            doc: DocId(idx),
        });
    }
    updates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::documents::{CatalogConfig, Document, DocumentCatalog};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_doc_catalog(rate0: f64, rate1: f64) -> DocumentCatalog {
        DocumentCatalog::from_documents(vec![
            Document {
                id: DocId(0),
                size_bytes: 1_000,
                update_rate_per_sec: rate0,
            },
            Document {
                id: DocId(1),
                size_bytes: 1_000,
                update_rate_per_sec: rate1,
            },
        ])
    }

    #[test]
    fn updates_are_sorted_and_bounded() {
        let cat = two_doc_catalog(1.0, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let ups = generate_updates(&cat, 30_000.0, &mut rng);
        assert!(!ups.is_empty());
        for pair in ups.windows(2) {
            assert!(pair[0].time_ms <= pair[1].time_ms);
        }
        assert!(ups.iter().all(|u| u.time_ms < 30_000.0));
    }

    #[test]
    fn volume_matches_total_rate() {
        let cat = two_doc_catalog(2.0, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let ups = generate_updates(&cat, 100_000.0, &mut rng);
        // Expected 3 updates/sec * 100 sec = 300.
        let n = ups.len() as f64;
        assert!((n - 300.0).abs() < 60.0, "got {n}");
    }

    #[test]
    fn updates_split_proportionally_to_rates() {
        let cat = two_doc_catalog(3.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let ups = generate_updates(&cat, 200_000.0, &mut rng);
        let doc0 = ups.iter().filter(|u| u.doc == DocId(0)).count() as f64;
        let frac = doc0 / ups.len() as f64;
        assert!((frac - 0.75).abs() < 0.05, "doc0 fraction {frac}");
    }

    #[test]
    fn all_static_catalog_produces_no_updates() {
        let cat = two_doc_catalog(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(generate_updates(&cat, 60_000.0, &mut rng).is_empty());
    }

    #[test]
    fn zero_duration_produces_no_updates() {
        let cat = two_doc_catalog(10.0, 10.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(generate_updates(&cat, 0.0, &mut rng).is_empty());
    }

    #[test]
    fn generated_catalog_updates_target_dynamic_docs() {
        let mut rng = StdRng::seed_from_u64(6);
        let cat = CatalogConfig::default()
            .documents(100)
            .dynamic_fraction(0.1)
            .static_update_rate_per_sec(0.0)
            .generate(&mut rng);
        let ups = generate_updates(&cat, 600_000.0, &mut rng);
        assert!(ups.iter().all(|u| u.doc.index() < 10));
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn negative_duration_panics() {
        let cat = two_doc_catalog(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = generate_updates(&cat, -1.0, &mut rng);
    }
}
