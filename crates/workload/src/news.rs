//! News-site workload preset.
//!
//! A second dynamic-content profile alongside the sporting-event
//! preset, for checking that scheme comparisons are not artifacts of
//! one workload shape:
//!
//! * larger catalog with *milder* popularity skew (long-tail article
//!   archive),
//! * diurnal request modulation instead of a flash crowd,
//! * a small, intensely updated hot set (front page, tickers) — 3% of
//!   documents updating every ~60 s,
//! * lower cross-region similarity (regional editions differ more than
//!   Olympics interest did).

use crate::documents::{CatalogConfig, DocumentCatalog};
use crate::requests::{RateModulation, Request, RequestConfig};
use crate::trace::{merge_streams, TraceEvent};
use crate::updates::{generate_updates, Update};
use rand::Rng;

/// A generated news-site workload.
#[derive(Debug, Clone, PartialEq)]
pub struct NewsSiteWorkload {
    /// The document catalog (front-page/ticker documents first).
    pub catalog: DocumentCatalog,
    /// Time-sorted client requests.
    pub requests: Vec<Request>,
    /// Time-sorted origin updates.
    pub updates: Vec<Update>,
}

impl NewsSiteWorkload {
    /// Merges requests and updates into one time-sorted trace.
    pub fn merged_trace(&self) -> Vec<TraceEvent> {
        merge_streams(&self.requests, &self.updates)
    }
}

/// Builder for the news-site preset.
///
/// # Examples
///
/// ```
/// use ecg_workload::NewsSiteConfig;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let workload = NewsSiteConfig::default()
///     .caches(8)
///     .duration_ms(20_000.0)
///     .generate(&mut rng);
/// assert!(!workload.requests.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewsSiteConfig {
    documents: usize,
    caches: usize,
    duration_ms: f64,
    rate_per_sec_per_cache: f64,
    similarity: f64,
}

impl Default for NewsSiteConfig {
    /// 5 000 documents, 50 caches, a 10-minute window, 2 req/s per
    /// cache, 70% similarity.
    fn default() -> Self {
        NewsSiteConfig {
            documents: 5_000,
            caches: 50,
            duration_ms: 600_000.0,
            rate_per_sec_per_cache: 2.0,
            similarity: 0.7,
        }
    }
}

impl NewsSiteConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the catalog size.
    pub fn documents(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one document");
        self.documents = n;
        self
    }

    /// Sets the number of edge caches.
    pub fn caches(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one cache");
        self.caches = n;
        self
    }

    /// Sets the trace duration in milliseconds.
    pub fn duration_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms > 0.0, "duration must be positive");
        self.duration_ms = ms;
        self
    }

    /// Sets the per-cache request rate in requests/second.
    pub fn rate_per_sec_per_cache(mut self, rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        self.rate_per_sec_per_cache = rate;
        self
    }

    /// Sets the cross-cache similarity in `[0, 1]`.
    pub fn similarity(mut self, similarity: f64) -> Self {
        assert!((0.0..=1.0).contains(&similarity), "similarity in [0, 1]");
        self.similarity = similarity;
        self
    }

    /// The catalog configuration: long-tail archive, small hot dynamic
    /// set (front page and tickers) updating every ~60 s.
    pub fn catalog_config(&self) -> CatalogConfig {
        CatalogConfig::default()
            .documents(self.documents)
            .median_size_bytes(12 * 1024)
            .dynamic_fraction(0.03)
            .dynamic_update_rate_per_sec(1.0 / 60.0)
            .static_update_rate_per_sec(1.0 / (7.0 * 86_400.0))
    }

    /// The request configuration: mild skew, diurnal cycle.
    pub fn request_config(&self) -> RequestConfig {
        RequestConfig::default()
            .rate_per_sec_per_cache(self.rate_per_sec_per_cache)
            .zipf_exponent(0.75)
            .similarity(self.similarity)
            .modulation(RateModulation::Diurnal {
                // One "day" per trace window so the cycle is visible in
                // short runs.
                period_ms: self.duration_ms,
                amplitude: 0.5,
            })
    }

    /// Generates the full workload.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> NewsSiteWorkload {
        let catalog = self.catalog_config().generate(rng);
        let requests = self
            .request_config()
            .generate(&catalog, self.caches, self.duration_ms, rng);
        let updates = generate_updates(&catalog, self.duration_ms, rng);
        NewsSiteWorkload {
            catalog,
            requests,
            updates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> NewsSiteConfig {
        NewsSiteConfig::default()
            .documents(500)
            .caches(6)
            .duration_ms(120_000.0)
    }

    #[test]
    fn generates_consistent_workload() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = small().generate(&mut rng);
        assert_eq!(w.catalog.len(), 500);
        assert!(!w.requests.is_empty());
        assert!(w.requests.iter().all(|r| r.cache < 6));
        let trace = w.merged_trace();
        for pair in trace.windows(2) {
            assert!(pair[0].time_ms() <= pair[1].time_ms());
        }
    }

    #[test]
    fn hot_set_is_small_and_updated() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = small().generate(&mut rng);
        let cutoff = 500 * 3 / 100; // 3% dynamic
        let hot_updates = w.updates.iter().filter(|u| u.doc.index() < cutoff).count();
        assert!(
            hot_updates as f64 / w.updates.len().max(1) as f64 > 0.9,
            "{hot_updates}/{}",
            w.updates.len()
        );
    }

    #[test]
    fn popularity_is_milder_than_sporting_preset() {
        // Compare top-document request share between presets at matched
        // volume: news must be flatter.
        let mut rng = StdRng::seed_from_u64(3);
        let news = small().similarity(1.0).generate(&mut rng);
        let sport = crate::sporting::SportingEventConfig::default()
            .documents(500)
            .caches(6)
            .duration_ms(120_000.0)
            .similarity(1.0)
            .flash_crowd(false)
            .generate(&mut rng);
        let top_share = |reqs: &[crate::requests::Request]| -> f64 {
            let top = reqs.iter().filter(|r| r.doc.index() == 0).count();
            top as f64 / reqs.len() as f64
        };
        assert!(
            top_share(&news.requests) < top_share(&sport.requests),
            "news {} vs sport {}",
            top_share(&news.requests),
            top_share(&sport.requests)
        );
    }

    #[test]
    fn diurnal_cycle_shapes_volume() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = small().generate(&mut rng);
        // The diurnal peak is in the first half (sin > 0), the trough
        // in the second.
        let first: usize = w.requests.iter().filter(|r| r.time_ms < 60_000.0).count();
        let second = w.requests.len() - first;
        assert!(first as f64 > 1.2 * second as f64, "{first} vs {second}");
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| small().generate(&mut StdRng::seed_from_u64(seed));
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }
}
