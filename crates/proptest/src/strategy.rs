//! Value-generation strategies.
//!
//! A [`Strategy`] here is simply "something that can draw a value from a
//! seeded RNG": ranges, [`Just`], tuples of strategies, mapped
//! strategies, and the [`OneOf`] union built by `prop_oneof!`.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// A source of random test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms every sampled value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from every sampled value — e.g. draw
    /// a dimension first, then matrices of that dimension.
    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    U: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A type with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// A boxed sampling function — one arm of a [`OneOf`] union.
type Arm<T> = Box<dyn Fn(&mut StdRng) -> T>;

/// Uniform choice among several strategies with a common value type;
/// built by the `prop_oneof!` macro.
pub struct OneOf<T> {
    arms: Vec<Arm<T>>,
}

impl<T> Default for OneOf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OneOf<T> {
    /// An empty union; add arms with [`OneOf::or`].
    pub fn new() -> Self {
        OneOf { arms: Vec::new() }
    }

    /// Adds one strategy arm.
    pub fn or<S>(mut self, strategy: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        self.arms.push(Box::new(move |rng| strategy.sample(rng)));
        self
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    /// # Panics
    ///
    /// Panics if the union has no arms.
    fn sample(&self, rng: &mut StdRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.gen_range(0..self.arms.len());
        (self.arms[i])(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn map_and_tuple_compose() {
        let s = (0usize..5, 10u64..20).prop_map(|(a, b)| a as u64 + b);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((10..25).contains(&v));
        }
    }

    #[test]
    fn flat_map_builds_dependent_strategies() {
        // The inner strategy's shape depends on the outer draw.
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, n..n + 1));
        let mut rng = StdRng::seed_from_u64(2);
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
            lens.insert(v.len());
        }
        assert!(lens.len() > 1, "outer draw never varied");
    }

    #[test]
    fn just_clones_value() {
        let s = Just(vec![1, 2, 3]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.sample(&mut rng), vec![1, 2, 3]);
        assert_eq!(s.sample(&mut rng), vec![1, 2, 3]);
    }

    #[test]
    fn any_bool_produces_both_values() {
        let s = any::<bool>();
        let mut rng = StdRng::seed_from_u64(1);
        let draws: Vec<bool> = (0..100).map(|_| s.sample(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }
}
