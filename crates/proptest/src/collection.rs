//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification accepted by [`vec`].
pub trait SizeRange {
    /// Draws a length.
    fn sample_len(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy producing vectors whose elements come from `element` and
/// whose length is drawn from `len`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_follow_the_spec() {
        let mut rng = StdRng::seed_from_u64(0);
        let fixed = vec(0u64..5, 4usize);
        assert_eq!(fixed.sample(&mut rng).len(), 4);
        let ranged = vec(0u64..5, 2usize..6);
        for _ in 0..50 {
            let v = ranged.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
