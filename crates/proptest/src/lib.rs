//! Offline drop-in subset of the `proptest` API.
//!
//! Like the bundled `rand` shim, this exists because the workspace must
//! build with no crates.io access. It keeps the property tests compiling
//! and *running* unchanged: the [`proptest!`] macro samples each
//! strategy from a fixed-seed [`rand::rngs::StdRng`] and executes the
//! body once per case.
//!
//! Differences from upstream proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with the sampled inputs
//!   left to the assertion message rather than a minimized example;
//! * **fixed seeding** — every test function uses the same seed, so
//!   failures reproduce exactly across runs and machines;
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `Err`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256, keeping the suite quick
    /// while still exercising each property broadly.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    0x9E3779B97F4A7C15 ^ config.cases as u64,
                );
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    // Upstream proptest bodies may `return Ok(())` early, so
                    // run the body in a closure with a Result return type.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("property case failed: {msg}");
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a property body; panics with the message
/// on failure (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Picks one of several same-valued strategies uniformly per sample.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new()$(.or($s))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Get(usize),
        Put(usize, u64),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0usize..10).prop_map(Op::Get),
            (0usize..10, 1u64..5).prop_map(|(k, v)| Op::Put(k, v)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0.25f64..0.75, z in any::<u64>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert_eq!(z, z);
        }

        #[test]
        fn vec_strategy_respects_length(ops in crate::collection::vec(arb_op(), 1..20)) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            for op in &ops {
                match *op {
                    Op::Get(k) => prop_assert!(k < 10),
                    Op::Put(k, v) => prop_assert!(k < 10 && (1..5).contains(&v)),
                }
            }
        }

        #[test]
        fn just_and_bool(policy in Just(7u8), flag in any::<bool>()) {
            prop_assert_eq!(policy, 7);
            prop_assert!(flag == (flag as u8 == 1));
        }
    }

    #[test]
    fn oneof_eventually_picks_every_arm() {
        use rand::SeedableRng;
        let s = arb_op();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut saw_get = false;
        let mut saw_put = false;
        for _ in 0..200 {
            match s.sample(&mut rng) {
                Op::Get(_) => saw_get = true,
                Op::Put(..) => saw_put = true,
            }
        }
        assert!(saw_get && saw_put);
    }
}
