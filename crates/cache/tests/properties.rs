//! Property-based tests for the document cache.

use ecg_cache::{DocumentCache, LookupOutcome, PolicyKind};
use ecg_workload::DocId;
use proptest::prelude::*;

/// A random cache operation for sequence testing.
#[derive(Debug, Clone)]
enum Op {
    Lookup { doc: usize, version: u64 },
    Insert { doc: usize, version: u64, size: u64 },
    Remove { doc: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..20, 1u64..5).prop_map(|(doc, version)| Op::Lookup { doc, version }),
        (0usize..20, 1u64..5, 1u64..600).prop_map(|(doc, version, size)| Op::Insert {
            doc,
            version,
            size
        }),
        (0usize..20).prop_map(|doc| Op::Remove { doc }),
    ]
}

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Lru),
        Just(PolicyKind::Lfu),
        Just(PolicyKind::Utility),
        Just(PolicyKind::Gdsf),
    ]
}

proptest! {
    #[test]
    fn capacity_is_never_exceeded(
        ops in proptest::collection::vec(arb_op(), 1..200),
        policy in arb_policy(),
    ) {
        let mut cache = DocumentCache::new(1_000, policy);
        for (t, op) in ops.iter().enumerate() {
            let now = t as f64;
            match *op {
                Op::Lookup { doc, version } => {
                    let _ = cache.lookup(DocId(doc), version, now);
                }
                Op::Insert { doc, version, size } => {
                    cache.insert(DocId(doc), version, size, 10.0, 0.1, now);
                }
                Op::Remove { doc } => {
                    let _ = cache.remove(DocId(doc));
                }
            }
            prop_assert!(cache.used_bytes() <= cache.capacity_bytes());
            // used_bytes is consistent with the entry set.
            let sum: u64 = cache.iter().map(|(_, e)| e.size_bytes).sum();
            prop_assert_eq!(sum, cache.used_bytes());
        }
    }

    #[test]
    fn stats_counters_are_consistent(
        ops in proptest::collection::vec(arb_op(), 1..200),
        policy in arb_policy(),
    ) {
        let mut cache = DocumentCache::new(2_000, policy);
        for (t, op) in ops.iter().enumerate() {
            match *op {
                Op::Lookup { doc, version } => {
                    let _ = cache.lookup(DocId(doc), version, t as f64);
                }
                Op::Insert { doc, version, size } => {
                    cache.insert(DocId(doc), version, size, 10.0, 0.1, t as f64);
                }
                Op::Remove { doc } => {
                    let _ = cache.remove(DocId(doc));
                }
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.lookups, s.fresh_hits + s.stale_hits + s.misses);
        prop_assert!(s.insertions >= cache.len() as u64);
        prop_assert!(s.evictions <= s.insertions);
    }

    #[test]
    fn lookup_after_insert_is_hit_at_same_version(
        doc in 0usize..50,
        version in 1u64..100,
        size in 1u64..900,
        policy in arb_policy(),
    ) {
        let mut cache = DocumentCache::new(1_000, policy);
        cache.insert(DocId(doc), version, size, 5.0, 0.0, 0.0);
        prop_assert_eq!(cache.lookup(DocId(doc), version, 1.0), LookupOutcome::Hit);
        // Any newer origin version makes it stale.
        prop_assert_eq!(
            cache.lookup(DocId(doc), version + 1, 2.0),
            LookupOutcome::Stale
        );
    }

    #[test]
    fn eviction_preserves_newly_inserted_doc(
        fill in proptest::collection::vec((1u64..400u64, 1u64..3), 2..20),
        policy in arb_policy(),
    ) {
        let mut cache = DocumentCache::new(1_000, policy);
        for (i, &(size, version)) in fill.iter().enumerate() {
            cache.insert(DocId(i), version, size, 10.0, 0.0, i as f64);
            // The just-inserted document must survive its own insertion.
            prop_assert!(cache.holds_fresh(DocId(i), version), "doc {i} evicted itself");
        }
    }
}
