//! Property-based tests for the document cache.

use ecg_cache::{DocumentCache, Entry, LookupOutcome, PolicyKind};
use ecg_workload::DocId;
use proptest::prelude::*;
use std::collections::HashMap;

/// A random cache operation for sequence testing.
#[derive(Debug, Clone)]
enum Op {
    Lookup { doc: usize, version: u64 },
    Insert { doc: usize, version: u64, size: u64 },
    Remove { doc: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..20, 1u64..5).prop_map(|(doc, version)| Op::Lookup { doc, version }),
        (0usize..20, 1u64..5, 1u64..600).prop_map(|(doc, version, size)| Op::Insert {
            doc,
            version,
            size
        }),
        (0usize..20).prop_map(|doc| Op::Remove { doc }),
    ]
}

/// An operation against a cache whose documents have a versioned origin.
#[derive(Debug, Clone)]
enum OriginOp {
    /// Insert the document at the origin's *current* version.
    Insert { doc: usize, size: u64 },
    /// The origin publishes a new version of the document.
    Bump { doc: usize },
    /// A client asks for the document at the origin's current version.
    Lookup { doc: usize },
}

fn arb_origin_op() -> impl Strategy<Value = OriginOp> {
    prop_oneof![
        (0usize..20, 1u64..600).prop_map(|(doc, size)| OriginOp::Insert { doc, size }),
        (0usize..20).prop_map(|doc| OriginOp::Bump { doc }),
        (0usize..20).prop_map(|doc| OriginOp::Lookup { doc }),
    ]
}

/// The documented eviction key of `entry` under `policy` (smallest score
/// is evicted first), reimplemented from the policy docs so the test is
/// independent of the crate's internal scoring code.
fn documented_score(policy: PolicyKind, entry: &Entry, now_ms: f64, watermark: f64) -> f64 {
    match policy {
        // LRU: least-recently used.
        PolicyKind::Lru => entry.last_access_ms,
        // LFU: least-frequently used, ties broken by recency (a bounded
        // sub-unit recency term folded into the score).
        PolicyKind::Lfu => {
            entry.access_count as f64 + 0.5 / (1.0 + (now_ms - entry.last_access_ms).max(0.0))
        }
        // Cache Clouds utility: (access_rate × fetch_cost) /
        // (size × (1 + update_rate)), with a 1 s floor on the rate window.
        PolicyKind::Utility => {
            let window_sec = ((now_ms - entry.inserted_ms) / 1_000.0).max(1.0);
            let rate = entry.access_count as f64 / window_sec;
            rate * entry.fetch_cost_ms
                / (entry.size_bytes.max(1) as f64 * (1.0 + entry.update_rate_per_sec))
        }
        // GDSF: H = L + frequency × fetch_cost / size, with the
        // watermark L inflated to the victim's H on each eviction.
        PolicyKind::Gdsf => {
            watermark
                + entry.access_count as f64 * entry.fetch_cost_ms / entry.size_bytes.max(1) as f64
        }
    }
}

/// Predicts the exact victim sequence of inserting `doc` at `size`
/// bytes, from the documented keys alone. Returns the victims in
/// eviction order plus the GDSF watermark after the insert.
fn predict_victims(
    cache: &DocumentCache,
    policy: PolicyKind,
    doc: DocId,
    size: u64,
    now_ms: f64,
    mut watermark: f64,
) -> (Vec<DocId>, f64) {
    if size > cache.capacity_bytes() {
        return (Vec::new(), watermark); // oversized: insert is a no-op
    }
    // Replacing an existing copy frees its bytes before any eviction.
    let mut entries: Vec<(DocId, Entry)> = cache
        .iter()
        .filter(|(d, _)| *d != doc)
        .map(|(d, e)| (d, *e))
        .collect();
    let mut used: u64 = entries.iter().map(|(_, e)| e.size_bytes).sum();
    let mut victims = Vec::new();
    while used + size > cache.capacity_bytes() && !entries.is_empty() {
        let mut best = 0;
        let mut best_score = f64::INFINITY;
        for (i, (d, e)) in entries.iter().enumerate() {
            let score = documented_score(policy, e, now_ms, watermark);
            // Deterministic tie-break on the smaller document id.
            if score < best_score || (score == best_score && *d < entries[best].0) {
                best = i;
                best_score = score;
            }
        }
        if policy == PolicyKind::Gdsf {
            watermark = best_score;
        }
        let (victim, entry) = entries.remove(best);
        used -= entry.size_bytes;
        victims.push(victim);
    }
    (victims, watermark)
}

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Lru),
        Just(PolicyKind::Lfu),
        Just(PolicyKind::Utility),
        Just(PolicyKind::Gdsf),
    ]
}

proptest! {
    #[test]
    fn capacity_is_never_exceeded(
        ops in proptest::collection::vec(arb_op(), 1..200),
        policy in arb_policy(),
    ) {
        let mut cache = DocumentCache::new(1_000, policy);
        for (t, op) in ops.iter().enumerate() {
            let now = t as f64;
            match *op {
                Op::Lookup { doc, version } => {
                    let _ = cache.lookup(DocId(doc), version, now);
                }
                Op::Insert { doc, version, size } => {
                    cache.insert(DocId(doc), version, size, 10.0, 0.1, now);
                }
                Op::Remove { doc } => {
                    let _ = cache.remove(DocId(doc));
                }
            }
            prop_assert!(cache.used_bytes() <= cache.capacity_bytes());
            // used_bytes is consistent with the entry set.
            let sum: u64 = cache.iter().map(|(_, e)| e.size_bytes).sum();
            prop_assert_eq!(sum, cache.used_bytes());
        }
    }

    #[test]
    fn stats_counters_are_consistent(
        ops in proptest::collection::vec(arb_op(), 1..200),
        policy in arb_policy(),
    ) {
        let mut cache = DocumentCache::new(2_000, policy);
        for (t, op) in ops.iter().enumerate() {
            match *op {
                Op::Lookup { doc, version } => {
                    let _ = cache.lookup(DocId(doc), version, t as f64);
                }
                Op::Insert { doc, version, size } => {
                    cache.insert(DocId(doc), version, size, 10.0, 0.1, t as f64);
                }
                Op::Remove { doc } => {
                    let _ = cache.remove(DocId(doc));
                }
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.lookups, s.fresh_hits + s.stale_hits + s.misses);
        prop_assert!(s.insertions >= cache.len() as u64);
        prop_assert!(s.evictions <= s.insertions);
    }

    #[test]
    fn lookup_after_insert_is_hit_at_same_version(
        doc in 0usize..50,
        version in 1u64..100,
        size in 1u64..900,
        policy in arb_policy(),
    ) {
        let mut cache = DocumentCache::new(1_000, policy);
        cache.insert(DocId(doc), version, size, 5.0, 0.0, 0.0);
        prop_assert_eq!(cache.lookup(DocId(doc), version, 1.0), LookupOutcome::Hit);
        // Any newer origin version makes it stale.
        prop_assert_eq!(
            cache.lookup(DocId(doc), version + 1, 2.0),
            LookupOutcome::Stale
        );
    }

    #[test]
    fn stale_versions_are_never_served(
        ops in proptest::collection::vec(arb_origin_op(), 1..200),
        policy in arb_policy(),
    ) {
        // Model an origin whose per-document version only moves forward;
        // inserts always carry the version current at insert time. A
        // copy inserted before a bump is stale and must never be
        // reported fresh (or served as a hit) at the new version.
        let mut cache = DocumentCache::new(1_500, policy);
        let mut origin: [u64; 20] = [1; 20];
        let mut inserted: HashMap<usize, u64> = HashMap::new();
        for (t, op) in ops.iter().enumerate() {
            let now = t as f64;
            match *op {
                OriginOp::Insert { doc, size } => {
                    cache.insert(DocId(doc), origin[doc], size, 10.0, 0.1, now);
                    if size <= cache.capacity_bytes() {
                        inserted.insert(doc, origin[doc]);
                    }
                }
                OriginOp::Bump { doc } => origin[doc] += 1,
                OriginOp::Lookup { doc } => {
                    let outcome = cache.lookup(DocId(doc), origin[doc], now);
                    if outcome == LookupOutcome::Hit {
                        prop_assert_eq!(inserted.get(&doc), Some(&origin[doc]));
                    }
                }
            }
            for (doc, &v) in origin.iter().enumerate() {
                if cache.holds_fresh(DocId(doc), v) {
                    // Fresh implies the copy is the origin's current
                    // version — never an older one.
                    prop_assert_eq!(inserted.get(&doc), Some(&v));
                }
            }
        }
    }

    #[test]
    fn eviction_order_matches_documented_keys(
        ops in proptest::collection::vec(arb_op(), 1..200),
        policy in arb_policy(),
    ) {
        // Replays the op sequence, predicting every insert's eviction
        // victims from the policies' *documented* scoring keys computed
        // independently of the implementation (including a shadow GDSF
        // watermark, which the cache keeps private).
        let mut cache = DocumentCache::new(1_000, policy);
        let mut watermark = 0.0_f64;
        let mut evicted = Vec::new();
        for (t, op) in ops.iter().enumerate() {
            let now = t as f64;
            match *op {
                Op::Lookup { doc, version } => {
                    let _ = cache.lookup(DocId(doc), version, now);
                }
                Op::Insert { doc, version, size } => {
                    let (expected, next_watermark) =
                        predict_victims(&cache, policy, DocId(doc), size, now, watermark);
                    cache.insert_with_evicted(
                        DocId(doc), version, size, 10.0, 0.1, now, &mut evicted,
                    );
                    prop_assert_eq!(&evicted, &expected);
                    watermark = next_watermark;
                }
                Op::Remove { doc } => {
                    let _ = cache.remove(DocId(doc));
                }
            }
        }
    }

    #[test]
    fn eviction_preserves_newly_inserted_doc(
        fill in proptest::collection::vec((1u64..400u64, 1u64..3), 2..20),
        policy in arb_policy(),
    ) {
        let mut cache = DocumentCache::new(1_000, policy);
        for (i, &(size, version)) in fill.iter().enumerate() {
            cache.insert(DocId(i), version, size, 10.0, 0.0, i as f64);
            // The just-inserted document must survive its own insertion.
            prop_assert!(cache.holds_fresh(DocId(i), version), "doc {i} evicted itself");
        }
    }
}
