//! Replacement policies.
//!
//! The paper's caches "implement utility-based document placement and
//! replacement schemes" from the authors' Cache Clouds work (ICDCS '05).
//! [`PolicyKind::Utility`] reproduces that scheme's rationale: a
//! document is worth keeping in proportion to how often it is accessed
//! and how expensive it is to re-fetch, and worth less the bigger it is
//! and the more often the origin updates it. LRU, LFU and GDSF are
//! provided as standard baselines.

use crate::entry::Entry;
use ecg_workload::DocId;

/// Which replacement policy a [`DocumentCache`](crate::DocumentCache)
/// uses to choose eviction victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// Evict the least-recently used document.
    #[default]
    Lru,
    /// Evict the least-frequently used document (ties broken by
    /// recency).
    Lfu,
    /// Cache Clouds utility-based replacement: evict the document with
    /// the smallest `utility = (access_rate × fetch_cost) /
    /// (size × (1 + update_rate))`.
    Utility,
    /// Greedy-Dual-Size-Frequency: evict the smallest
    /// `H = L + frequency × fetch_cost / size`, inflating the watermark
    /// `L` to the victim's `H` on each eviction.
    Gdsf,
}

impl PolicyKind {
    /// Human-readable policy name, for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Lfu => "lfu",
            PolicyKind::Utility => "utility",
            PolicyKind::Gdsf => "gdsf",
        }
    }
}

/// The eviction score of an entry under a policy: the entry with the
/// *smallest* score is evicted first.
///
/// `now_ms` is the current simulation time; `watermark` is the GDSF `L`
/// value (ignored by the other policies).
pub(crate) fn eviction_score(
    policy: PolicyKind,
    entry: &Entry,
    now_ms: f64,
    watermark: f64,
) -> f64 {
    match policy {
        PolicyKind::Lru => entry.last_access_ms,
        PolicyKind::Lfu => {
            // Primary key: frequency; tie-break on recency by folding a
            // bounded recency term into the fraction below 1.
            let recency = 1.0 / (1.0 + (now_ms - entry.last_access_ms).max(0.0));
            entry.access_count as f64 + recency * 0.5
        }
        PolicyKind::Utility => entry.utility(now_ms),
        PolicyKind::Gdsf => {
            watermark
                + entry.access_count as f64 * entry.fetch_cost_ms / entry.size_bytes.max(1) as f64
        }
    }
}

/// Selects the eviction victim: the entry with the minimum score.
///
/// Returns `None` for an empty entry set.
pub(crate) fn select_victim<'a>(
    policy: PolicyKind,
    entries: impl Iterator<Item = (&'a DocId, &'a Entry)>,
    now_ms: f64,
    watermark: f64,
) -> Option<(DocId, f64)> {
    let mut best: Option<(DocId, f64)> = None;
    for (&doc, entry) in entries {
        let score = eviction_score(policy, entry, now_ms, watermark);
        let better = match best {
            None => true,
            // Deterministic tie-break on DocId keeps runs reproducible.
            Some((bdoc, bscore)) => score < bscore || (score == bscore && doc < bdoc),
        };
        if better {
            best = Some((doc, score));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;
    use std::collections::BTreeMap;

    fn entry(size: u64, cost: f64, accesses: u64, last_ms: f64, update_rate: f64) -> Entry {
        let mut e = Entry::new(1, size, cost, update_rate, 0.0);
        e.access_count = accesses;
        e.last_access_ms = last_ms;
        e
    }

    fn victim(policy: PolicyKind, entries: &BTreeMap<DocId, Entry>, now: f64) -> DocId {
        select_victim(policy, entries.iter(), now, 0.0)
            .expect("non-empty")
            .0
    }

    #[test]
    fn lru_evicts_oldest_access() {
        let mut m = BTreeMap::new();
        m.insert(DocId(0), entry(100, 10.0, 5, 50.0, 0.0));
        m.insert(DocId(1), entry(100, 10.0, 5, 10.0, 0.0));
        m.insert(DocId(2), entry(100, 10.0, 5, 90.0, 0.0));
        assert_eq!(victim(PolicyKind::Lru, &m, 100.0), DocId(1));
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut m = BTreeMap::new();
        m.insert(DocId(0), entry(100, 10.0, 9, 50.0, 0.0));
        m.insert(DocId(1), entry(100, 10.0, 2, 99.0, 0.0));
        m.insert(DocId(2), entry(100, 10.0, 5, 10.0, 0.0));
        assert_eq!(victim(PolicyKind::Lfu, &m, 100.0), DocId(1));
    }

    #[test]
    fn lfu_breaks_ties_by_recency() {
        let mut m = BTreeMap::new();
        m.insert(DocId(0), entry(100, 10.0, 3, 90.0, 0.0));
        m.insert(DocId(1), entry(100, 10.0, 3, 10.0, 0.0));
        assert_eq!(victim(PolicyKind::Lfu, &m, 100.0), DocId(1));
    }

    #[test]
    fn utility_prefers_evicting_large_cheap_updated_docs() {
        let mut m = BTreeMap::new();
        // Small, expensive-to-fetch, static, hot: keep.
        m.insert(DocId(0), entry(1_000, 100.0, 20, 90.0, 0.0));
        // Huge, cheap, frequently updated, cold: evict.
        m.insert(DocId(1), entry(1_000_000, 1.0, 1, 90.0, 1.0));
        assert_eq!(victim(PolicyKind::Utility, &m, 100.0), DocId(1));
    }

    #[test]
    fn utility_penalizes_update_rate() {
        let mut m = BTreeMap::new();
        // Identical except update rate.
        m.insert(DocId(0), entry(1_000, 10.0, 5, 50.0, 0.0));
        m.insert(DocId(1), entry(1_000, 10.0, 5, 50.0, 2.0));
        assert_eq!(victim(PolicyKind::Utility, &m, 100.0), DocId(1));
    }

    #[test]
    fn gdsf_prefers_evicting_big_cheap_docs() {
        let mut m = BTreeMap::new();
        m.insert(DocId(0), entry(10, 50.0, 3, 0.0, 0.0)); // tiny, pricey
        m.insert(DocId(1), entry(100_000, 50.0, 3, 0.0, 0.0)); // huge
        assert_eq!(victim(PolicyKind::Gdsf, &m, 100.0), DocId(1));
    }

    #[test]
    fn gdsf_watermark_shifts_scores() {
        let e = entry(100, 10.0, 2, 0.0, 0.0);
        let low = eviction_score(PolicyKind::Gdsf, &e, 0.0, 0.0);
        let high = eviction_score(PolicyKind::Gdsf, &e, 0.0, 5.0);
        assert!((high - low - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_entry_set_has_no_victim() {
        let m: BTreeMap<DocId, Entry> = BTreeMap::new();
        assert!(select_victim(PolicyKind::Lru, m.iter(), 0.0, 0.0).is_none());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PolicyKind::Lru.name(), "lru");
        assert_eq!(PolicyKind::Utility.name(), "utility");
        assert_eq!(PolicyKind::Lfu.name(), "lfu");
        assert_eq!(PolicyKind::Gdsf.name(), "gdsf");
    }
}
