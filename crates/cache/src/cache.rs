//! The document cache itself.

use crate::entry::Entry;
use crate::policy::{select_victim, PolicyKind};
use crate::stats::CacheStats;
use ecg_workload::DocId;
use std::collections::BTreeMap;

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// A fresh copy was found and served.
    Hit,
    /// A copy was found but its version is behind the origin: it was
    /// dropped, and the caller must fetch. Counted separately from
    /// `Miss` so experiments can attribute miss traffic to updates.
    Stale,
    /// No copy was cached.
    Miss,
}

impl LookupOutcome {
    /// Returns `true` only for a fresh hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, LookupOutcome::Hit)
    }
}

/// A byte-capacity-bounded document cache with a pluggable replacement
/// policy.
///
/// Freshness follows an invalidation-on-access model: every lookup and
/// peer probe carries the origin's *current* version of the document, and
/// a cached copy with an older version is discarded as stale. This stands
/// in for the cooperative freshness machinery of the authors' Cache
/// Clouds system while exercising the same update-driven miss path.
///
/// # Examples
///
/// ```
/// use ecg_cache::{DocumentCache, LookupOutcome, PolicyKind};
/// use ecg_workload::DocId;
///
/// let mut cache = DocumentCache::new(10_000, PolicyKind::Lru);
/// assert_eq!(cache.lookup(DocId(1), 1, 0.0), LookupOutcome::Miss);
/// cache.insert(DocId(1), 1, 2_000, 30.0, 0.0, 0.0);
/// assert_eq!(cache.lookup(DocId(1), 1, 1.0), LookupOutcome::Hit);
/// // Origin bumped the version: the copy is stale.
/// assert_eq!(cache.lookup(DocId(1), 2, 2.0), LookupOutcome::Stale);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DocumentCache {
    capacity_bytes: u64,
    used_bytes: u64,
    policy: PolicyKind,
    entries: BTreeMap<DocId, Entry>,
    stats: CacheStats,
    /// GDSF aging watermark `L`.
    watermark: f64,
}

impl DocumentCache {
    /// Creates an empty cache holding at most `capacity_bytes` of
    /// document bodies.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes == 0`.
    pub fn new(capacity_bytes: u64, policy: PolicyKind) -> Self {
        assert!(capacity_bytes > 0, "cache capacity must be positive");
        DocumentCache {
            capacity_bytes,
            used_bytes: 0,
            policy,
            entries: BTreeMap::new(),
            stats: CacheStats::default(),
            watermark: 0.0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently occupied.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of cached documents.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The replacement policy in use.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Serves a client lookup for `doc`, whose current origin version is
    /// `current_version`, at time `now_ms`.
    ///
    /// A fresh copy is touched (recency/frequency bookkeeping) and
    /// served; a stale copy is dropped and reported as
    /// [`LookupOutcome::Stale`].
    pub fn lookup(&mut self, doc: DocId, current_version: u64, now_ms: f64) -> LookupOutcome {
        self.stats.lookups += 1;
        match self.entries.get_mut(&doc) {
            Some(entry) if entry.version >= current_version => {
                entry.touch(now_ms);
                self.stats.fresh_hits += 1;
                LookupOutcome::Hit
            }
            Some(_) => {
                self.remove(doc);
                self.stats.stale_hits += 1;
                LookupOutcome::Stale
            }
            None => {
                self.stats.misses += 1;
                LookupOutcome::Miss
            }
        }
    }

    /// Peer probe: does this cache hold a fresh copy of `doc` at
    /// `current_version`? No statistics or recency are touched — this is
    /// the cooperative-lookup path, not a client request.
    pub fn holds_fresh(&self, doc: DocId, current_version: u64) -> bool {
        self.entries
            .get(&doc)
            .is_some_and(|e| e.version >= current_version)
    }

    /// Pure presence probe: does this cache hold *any* copy of `doc`,
    /// fresh or stale? No statistics or recency are touched — this is
    /// what the simulator's holder index tracks, so placement policies
    /// see identical replica counts under both peer-lookup strategies.
    pub fn contains(&self, doc: DocId) -> bool {
        self.entries.contains_key(&doc)
    }

    /// Serves a lookup under a TTL lease: a cached copy is valid for
    /// `ttl_ms` after insertion *regardless of origin version* (the
    /// lease model — clients may be served stale data within the
    /// lease). Expired copies are dropped and counted as stale.
    ///
    /// Returns the version served on a hit.
    pub fn lookup_ttl(&mut self, doc: DocId, now_ms: f64, ttl_ms: f64) -> Option<u64> {
        self.stats.lookups += 1;
        match self.entries.get_mut(&doc) {
            Some(entry) if now_ms - entry.inserted_ms <= ttl_ms => {
                entry.touch(now_ms);
                self.stats.fresh_hits += 1;
                Some(entry.version)
            }
            Some(_) => {
                self.remove(doc);
                self.stats.stale_hits += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peer probe under the TTL lease model: returns the version of an
    /// unexpired copy of `doc`, if any. No statistics are touched.
    pub fn holds_unexpired(&self, doc: DocId, now_ms: f64, ttl_ms: f64) -> Option<u64> {
        self.entries
            .get(&doc)
            .filter(|e| now_ms - e.inserted_ms <= ttl_ms)
            .map(|e| e.version)
    }

    /// Records that this cache served `doc` to a *peer* (cooperative
    /// miss handling): recency/frequency are touched so replacement
    /// policies value documents the group relies on, but client-facing
    /// hit/miss statistics are untouched.
    ///
    /// Returns `true` if a fresh copy was present and touched.
    pub fn note_peer_serve(&mut self, doc: DocId, current_version: u64, now_ms: f64) -> bool {
        match self.entries.get_mut(&doc) {
            Some(entry) if entry.version >= current_version => {
                entry.touch(now_ms);
                true
            }
            _ => false,
        }
    }

    /// Inserts (or replaces) a document copy fetched at cost
    /// `fetch_cost_ms`, evicting as needed.
    ///
    /// A document larger than the whole cache is not cached at all (the
    /// standard web-cache rule) — the insert is a no-op.
    pub fn insert(
        &mut self,
        doc: DocId,
        version: u64,
        size_bytes: u64,
        fetch_cost_ms: f64,
        update_rate_per_sec: f64,
        now_ms: f64,
    ) {
        self.insert_impl(
            doc,
            version,
            size_bytes,
            fetch_cost_ms,
            update_rate_per_sec,
            now_ms,
            None,
        );
    }

    /// Like [`insert`](Self::insert), but records every eviction victim's
    /// id into the caller-owned `evicted` buffer (cleared first, so it
    /// can be reused across calls without allocating) and reports whether
    /// `doc` actually ended up cached (`false` only for the oversized
    /// no-op case). Callers that mirror cache contents elsewhere — e.g. a
    /// document→holder index — use this to stay in sync.
    #[allow(clippy::too_many_arguments)] // `insert`'s signature + the eviction buffer
    pub fn insert_with_evicted(
        &mut self,
        doc: DocId,
        version: u64,
        size_bytes: u64,
        fetch_cost_ms: f64,
        update_rate_per_sec: f64,
        now_ms: f64,
        evicted: &mut Vec<DocId>,
    ) -> bool {
        evicted.clear();
        self.insert_impl(
            doc,
            version,
            size_bytes,
            fetch_cost_ms,
            update_rate_per_sec,
            now_ms,
            Some(evicted),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_impl(
        &mut self,
        doc: DocId,
        version: u64,
        size_bytes: u64,
        fetch_cost_ms: f64,
        update_rate_per_sec: f64,
        now_ms: f64,
        mut evicted_out: Option<&mut Vec<DocId>>,
    ) -> bool {
        if size_bytes > self.capacity_bytes {
            return false;
        }
        // Replacing an existing copy frees its bytes first.
        self.remove(doc);
        while self.used_bytes + size_bytes > self.capacity_bytes {
            let Some((victim, score)) =
                select_victim(self.policy, self.entries.iter(), now_ms, self.watermark)
            else {
                break;
            };
            if self.policy == PolicyKind::Gdsf {
                self.watermark = score;
            }
            let evicted = self.remove(victim).expect("victim exists");
            self.stats.evictions += 1;
            self.stats.bytes_evicted += evicted.size_bytes;
            if let Some(out) = evicted_out.as_deref_mut() {
                out.push(victim);
            }
        }
        self.entries.insert(
            doc,
            Entry::new(
                version,
                size_bytes,
                fetch_cost_ms,
                update_rate_per_sec,
                now_ms,
            ),
        );
        self.used_bytes += size_bytes;
        self.stats.insertions += 1;
        true
    }

    /// Drops the cached copy of `doc` (if any), returning its entry.
    ///
    /// Used for explicit invalidation when an origin update notification
    /// is pushed to the cache.
    pub fn remove(&mut self, doc: DocId) -> Option<Entry> {
        let entry = self.entries.remove(&doc)?;
        self.used_bytes -= entry.size_bytes;
        Some(entry)
    }

    /// Iterates over the cached documents and entries in id order.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &Entry)> + '_ {
        self.entries.iter().map(|(&d, e)| (d, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(policy: PolicyKind) -> DocumentCache {
        let mut c = DocumentCache::new(1_000, policy);
        c.insert(DocId(0), 1, 400, 10.0, 0.0, 0.0);
        c.insert(DocId(1), 1, 400, 10.0, 0.0, 1.0);
        c
    }

    #[test]
    fn miss_then_hit_then_stale() {
        let mut c = DocumentCache::new(1_000, PolicyKind::Lru);
        assert_eq!(c.lookup(DocId(5), 3, 0.0), LookupOutcome::Miss);
        c.insert(DocId(5), 3, 100, 20.0, 0.0, 0.0);
        assert_eq!(c.lookup(DocId(5), 3, 1.0), LookupOutcome::Hit);
        assert!(c.lookup(DocId(5), 3, 1.5).is_hit());
        assert_eq!(c.lookup(DocId(5), 4, 2.0), LookupOutcome::Stale);
        // The stale copy was dropped.
        assert_eq!(c.lookup(DocId(5), 4, 3.0), LookupOutcome::Miss);
        let s = c.stats();
        assert_eq!(s.lookups, 5);
        assert_eq!(s.fresh_hits, 2);
        assert_eq!(s.stale_hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn capacity_is_enforced_by_eviction() {
        let mut c = filled(PolicyKind::Lru);
        assert_eq!(c.used_bytes(), 800);
        c.insert(DocId(2), 1, 400, 10.0, 0.0, 2.0);
        assert!(c.used_bytes() <= 1_000);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().bytes_evicted, 400);
    }

    #[test]
    fn lru_evicts_the_oldest() {
        let mut c = filled(PolicyKind::Lru);
        // Touch doc 0 so doc 1 becomes the LRU victim.
        assert!(c.lookup(DocId(0), 1, 5.0).is_hit());
        c.insert(DocId(2), 1, 400, 10.0, 0.0, 6.0);
        assert!(c.holds_fresh(DocId(0), 1));
        assert!(!c.holds_fresh(DocId(1), 1));
        assert!(c.holds_fresh(DocId(2), 1));
    }

    #[test]
    fn oversized_document_is_not_cached() {
        let mut c = DocumentCache::new(100, PolicyKind::Lru);
        c.insert(DocId(0), 1, 200, 10.0, 0.0, 0.0);
        assert!(c.is_empty());
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn replacing_a_copy_does_not_leak_bytes() {
        let mut c = DocumentCache::new(1_000, PolicyKind::Lru);
        c.insert(DocId(0), 1, 400, 10.0, 0.0, 0.0);
        c.insert(DocId(0), 2, 300, 10.0, 0.0, 1.0);
        assert_eq!(c.used_bytes(), 300);
        assert_eq!(c.len(), 1);
        assert!(c.holds_fresh(DocId(0), 2));
    }

    #[test]
    fn holds_fresh_does_not_mutate_stats() {
        let c = filled(PolicyKind::Lru);
        let before = c.stats();
        assert!(c.holds_fresh(DocId(0), 1));
        assert!(!c.holds_fresh(DocId(0), 9));
        assert!(!c.holds_fresh(DocId(7), 1));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn remove_returns_entry_and_frees_space() {
        let mut c = filled(PolicyKind::Lru);
        let e = c.remove(DocId(0)).expect("present");
        assert_eq!(e.size_bytes, 400);
        assert_eq!(c.used_bytes(), 400);
        assert!(c.remove(DocId(0)).is_none());
    }

    #[test]
    fn utility_policy_keeps_expensive_hot_docs() {
        let mut c = DocumentCache::new(1_000, PolicyKind::Utility);
        // Expensive, hot document.
        c.insert(DocId(0), 1, 400, 200.0, 0.0, 0.0);
        for t in 1..20 {
            assert!(c.lookup(DocId(0), 1, t as f64 * 100.0).is_hit());
        }
        // Cheap cold document.
        c.insert(DocId(1), 1, 400, 1.0, 0.0, 2_000.0);
        // Force an eviction.
        c.insert(DocId(2), 1, 400, 1.0, 0.0, 2_100.0);
        assert!(c.holds_fresh(DocId(0), 1), "hot doc was evicted");
        assert!(!c.holds_fresh(DocId(1), 1));
    }

    #[test]
    fn gdsf_watermark_rises_across_evictions() {
        let mut c = DocumentCache::new(800, PolicyKind::Gdsf);
        c.insert(DocId(0), 1, 400, 10.0, 0.0, 0.0);
        c.insert(DocId(1), 1, 400, 10.0, 0.0, 1.0);
        let w0 = c.watermark;
        c.insert(DocId(2), 1, 400, 10.0, 0.0, 2.0);
        assert!(c.watermark >= w0);
        c.insert(DocId(3), 1, 400, 10.0, 0.0, 3.0);
        assert!(c.watermark > 0.0);
    }

    #[test]
    fn iter_is_id_ordered() {
        let c = filled(PolicyKind::Lru);
        let ids: Vec<DocId> = c.iter().map(|(d, _)| d).collect();
        assert_eq!(ids, vec![DocId(0), DocId(1)]);
    }

    #[test]
    fn ttl_lookup_serves_within_lease_and_expires_after() {
        let mut c = DocumentCache::new(1_000, PolicyKind::Lru);
        c.insert(DocId(0), 3, 100, 10.0, 0.0, 1_000.0);
        // Within the lease: served even though the "origin" moved on.
        assert_eq!(c.lookup_ttl(DocId(0), 1_500.0, 1_000.0), Some(3));
        // Past the lease: dropped as stale.
        assert_eq!(c.lookup_ttl(DocId(0), 2_500.0, 1_000.0), None);
        assert_eq!(c.lookup_ttl(DocId(0), 2_600.0, 1_000.0), None); // now a miss
        let s = c.stats();
        assert_eq!(s.fresh_hits, 1);
        assert_eq!(s.stale_hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn holds_unexpired_respects_ttl_without_stats() {
        let mut c = DocumentCache::new(1_000, PolicyKind::Lru);
        c.insert(DocId(0), 2, 100, 10.0, 0.0, 0.0);
        let before = c.stats();
        assert_eq!(c.holds_unexpired(DocId(0), 500.0, 1_000.0), Some(2));
        assert_eq!(c.holds_unexpired(DocId(0), 1_500.0, 1_000.0), None);
        assert_eq!(c.holds_unexpired(DocId(9), 0.0, 1_000.0), None);
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn note_peer_serve_touches_without_stats() {
        let mut c = filled(PolicyKind::Lru);
        let before = c.stats();
        assert!(c.note_peer_serve(DocId(0), 1, 42.0));
        assert!(!c.note_peer_serve(DocId(0), 2, 43.0)); // stale
        assert!(!c.note_peer_serve(DocId(9), 1, 44.0)); // absent
        assert_eq!(c.stats(), before);
        let entry = c.iter().find(|(d, _)| *d == DocId(0)).expect("present").1;
        assert_eq!(entry.last_access_ms, 42.0);
        assert_eq!(entry.access_count, 2);
    }

    #[test]
    fn insert_with_evicted_reports_victims_and_outcome() {
        let mut c = DocumentCache::new(1_000, PolicyKind::Lru);
        let mut evicted = Vec::new();
        assert!(c.insert_with_evicted(DocId(0), 1, 400, 10.0, 0.0, 0.0, &mut evicted));
        assert!(evicted.is_empty());
        assert!(c.insert_with_evicted(DocId(1), 1, 400, 10.0, 0.0, 1.0, &mut evicted));
        assert!(evicted.is_empty());
        // Needs both residents gone to fit.
        assert!(c.insert_with_evicted(DocId(2), 1, 900, 10.0, 0.0, 2.0, &mut evicted));
        assert_eq!(evicted, vec![DocId(0), DocId(1)]);
        // Oversized: no-op, reported as not cached, buffer cleared.
        assert!(!c.insert_with_evicted(DocId(3), 1, 2_000, 10.0, 0.0, 3.0, &mut evicted));
        assert!(evicted.is_empty());
        assert!(c.holds_fresh(DocId(2), 1));
    }

    #[test]
    fn insert_with_evicted_matches_plain_insert() {
        let mut a = DocumentCache::new(1_000, PolicyKind::Gdsf);
        let mut b = DocumentCache::new(1_000, PolicyKind::Gdsf);
        let mut scratch = Vec::new();
        for i in 0..20u64 {
            let size = 150 + (i % 5) * 90;
            let doc = DocId(i as usize);
            a.insert(doc, 1, size, 5.0, 0.1, i as f64);
            b.insert_with_evicted(doc, 1, size, 5.0, 0.1, i as f64, &mut scratch);
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = DocumentCache::new(0, PolicyKind::Lru);
    }

    #[test]
    fn eviction_loop_always_makes_room() {
        // Many small docs then one that needs several evictions.
        let mut c = DocumentCache::new(1_000, PolicyKind::Lfu);
        for i in 0..10 {
            c.insert(DocId(i), 1, 100, 5.0, 0.0, i as f64);
        }
        c.insert(DocId(99), 1, 900, 5.0, 0.0, 50.0);
        assert!(c.used_bytes() <= 1_000);
        assert!(c.holds_fresh(DocId(99), 1));
    }
}
