//! Cached document entries and their bookkeeping metadata.

/// Metadata for one cached document.
///
/// Fields are public in the C-struct spirit: the entry is passive data
/// whose invariants are maintained by
/// [`DocumentCache`](crate::DocumentCache).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Version of the document body this copy holds (compared against
    /// the origin's current version to detect staleness).
    pub version: u64,
    /// Body size in bytes.
    pub size_bytes: u64,
    /// Estimated cost of re-fetching this document on a miss, in
    /// milliseconds. Fed by the caller from the network model.
    pub fetch_cost_ms: f64,
    /// The document's origin update rate (per second), used by the
    /// utility policy.
    pub update_rate_per_sec: f64,
    /// When the entry was inserted, ms.
    pub inserted_ms: f64,
    /// Last access time, ms.
    pub last_access_ms: f64,
    /// Number of accesses since insertion (including the insert itself).
    pub access_count: u64,
}

impl Entry {
    /// Creates a fresh entry at time `now_ms` with a single access.
    pub fn new(
        version: u64,
        size_bytes: u64,
        fetch_cost_ms: f64,
        update_rate_per_sec: f64,
        now_ms: f64,
    ) -> Self {
        Entry {
            version,
            size_bytes,
            fetch_cost_ms,
            update_rate_per_sec,
            inserted_ms: now_ms,
            last_access_ms: now_ms,
            access_count: 1,
        }
    }

    /// Records an access at `now_ms`.
    pub fn touch(&mut self, now_ms: f64) {
        self.last_access_ms = now_ms;
        self.access_count += 1;
    }

    /// Observed access rate in accesses/second since insertion.
    ///
    /// Uses a one-second floor on the observation window so brand-new
    /// entries do not report absurd rates.
    pub fn access_rate_per_sec(&self, now_ms: f64) -> f64 {
        let window_sec = ((now_ms - self.inserted_ms) / 1_000.0).max(1.0);
        self.access_count as f64 / window_sec
    }

    /// The Cache Clouds utility of the entry at `now_ms`:
    /// `(access_rate × fetch_cost) / (size × (1 + update_rate))`.
    ///
    /// Hot, expensive-to-fetch documents score high; large documents that
    /// the origin rewrites constantly score low.
    pub fn utility(&self, now_ms: f64) -> f64 {
        let benefit = self.access_rate_per_sec(now_ms) * self.fetch_cost_ms;
        let cost = self.size_bytes.max(1) as f64 * (1.0 + self.update_rate_per_sec);
        benefit / cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_entry_counts_initial_access() {
        let e = Entry::new(1, 100, 10.0, 0.0, 5_000.0);
        assert_eq!(e.access_count, 1);
        assert_eq!(e.last_access_ms, 5_000.0);
        assert_eq!(e.inserted_ms, 5_000.0);
    }

    #[test]
    fn touch_updates_recency_and_frequency() {
        let mut e = Entry::new(1, 100, 10.0, 0.0, 0.0);
        e.touch(1_000.0);
        e.touch(2_000.0);
        assert_eq!(e.access_count, 3);
        assert_eq!(e.last_access_ms, 2_000.0);
    }

    #[test]
    fn access_rate_uses_floor_window() {
        let e = Entry::new(1, 100, 10.0, 0.0, 0.0);
        // Immediately after insertion the window is floored to 1s.
        assert_eq!(e.access_rate_per_sec(0.0), 1.0);
        // After 10 seconds with one access: 0.1/s.
        assert!((e.access_rate_per_sec(10_000.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn utility_increases_with_cost_and_rate() {
        let mut hot = Entry::new(1, 1_000, 100.0, 0.0, 0.0);
        for i in 0..9 {
            hot.touch(i as f64 * 100.0);
        }
        let cold = Entry::new(1, 1_000, 100.0, 0.0, 0.0);
        assert!(hot.utility(1_000.0) > cold.utility(1_000.0));

        let cheap = Entry::new(1, 1_000, 1.0, 0.0, 0.0);
        assert!(cold.utility(1_000.0) > cheap.utility(1_000.0));
    }

    #[test]
    fn utility_decreases_with_size_and_updates() {
        let small = Entry::new(1, 100, 10.0, 0.0, 0.0);
        let big = Entry::new(1, 10_000, 10.0, 0.0, 0.0);
        assert!(small.utility(1_000.0) > big.utility(1_000.0));

        let stable = Entry::new(1, 100, 10.0, 0.0, 0.0);
        let churny = Entry::new(1, 100, 10.0, 5.0, 0.0);
        assert!(stable.utility(1_000.0) > churny.utility(1_000.0));
    }

    #[test]
    fn zero_size_does_not_divide_by_zero() {
        let e = Entry::new(1, 0, 10.0, 0.0, 0.0);
        assert!(e.utility(0.0).is_finite());
    }
}
