//! Cache hit/miss accounting.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Counters kept by a [`DocumentCache`](crate::DocumentCache).
///
/// Stale hits — a cached copy whose version is behind the origin — are
/// counted separately from clean misses; both require a fetch, but the
/// split shows how much of the miss traffic the update stream causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total lookups served.
    pub lookups: u64,
    /// Lookups answered from a fresh cached copy.
    pub fresh_hits: u64,
    /// Lookups that found a copy that had been invalidated by an origin
    /// update (counted as misses for hit-rate purposes).
    pub stale_hits: u64,
    /// Lookups that found no copy at all.
    pub misses: u64,
    /// Documents inserted.
    pub insertions: u64,
    /// Documents evicted to make room.
    pub evictions: u64,
    /// Total bytes evicted.
    pub bytes_evicted: u64,
}

impl CacheStats {
    /// Fresh-hit rate over all lookups, or `None` before the first
    /// lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        if self.lookups == 0 {
            None
        } else {
            Some(self.fresh_hits as f64 / self.lookups as f64)
        }
    }

    /// Fraction of lookups lost to staleness, or `None` before the first
    /// lookup.
    pub fn stale_rate(&self) -> Option<f64> {
        if self.lookups == 0 {
            None
        } else {
            Some(self.stale_hits as f64 / self.lookups as f64)
        }
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(mut self, rhs: CacheStats) -> CacheStats {
        self += rhs;
        self
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.lookups += rhs.lookups;
        self.fresh_hits += rhs.fresh_hits;
        self.stale_hits += rhs.stale_hits;
        self.misses += rhs.misses;
        self.insertions += rhs.insertions;
        self.evictions += rhs.evictions;
        self.bytes_evicted += rhs.bytes_evicted;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lookups={} fresh={} stale={} miss={} hit_rate={:.3}",
            self.lookups,
            self.fresh_hits,
            self.stale_hits,
            self.misses,
            self.hit_rate().unwrap_or(0.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_undefined_before_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), None);
        assert_eq!(CacheStats::default().stale_rate(), None);
    }

    #[test]
    fn rates_computed() {
        let s = CacheStats {
            lookups: 10,
            fresh_hits: 6,
            stale_hits: 1,
            misses: 3,
            ..Default::default()
        };
        assert_eq!(s.hit_rate(), Some(0.6));
        assert_eq!(s.stale_rate(), Some(0.1));
    }

    #[test]
    fn addition_accumulates() {
        let a = CacheStats {
            lookups: 5,
            fresh_hits: 2,
            misses: 3,
            insertions: 3,
            ..Default::default()
        };
        let b = CacheStats {
            lookups: 5,
            fresh_hits: 5,
            evictions: 1,
            bytes_evicted: 100,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.lookups, 10);
        assert_eq!(c.fresh_hits, 7);
        assert_eq!(c.evictions, 1);
        assert_eq!(c.bytes_evicted, 100);
    }

    #[test]
    fn display_contains_key_fields() {
        let s = CacheStats {
            lookups: 4,
            fresh_hits: 2,
            stale_hits: 1,
            misses: 1,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("lookups=4"));
        assert!(text.contains("0.500"));
    }
}
