//! Document caches for edge cache networks.
//!
//! The paper's edge caches "implement utility-based document placement
//! and replacement schemes" from the authors' Cache Clouds work
//! (ICDCS '05, the paper's reference \[7\]). This crate provides that cache:
//! byte-capacity-bounded, version-aware (origin updates invalidate cached
//! copies), with the Cache Clouds utility policy plus LRU, LFU and GDSF
//! baselines for the replacement-policy ablation.
//!
//! # Examples
//!
//! ```
//! use ecg_cache::{DocumentCache, PolicyKind};
//! use ecg_workload::DocId;
//!
//! let mut cache = DocumentCache::new(1 << 20, PolicyKind::Utility);
//! cache.insert(DocId(0), 1, 8_192, 45.0, 0.05, 0.0);
//! assert!(cache.holds_fresh(DocId(0), 1));
//! assert!(!cache.holds_fresh(DocId(0), 2)); // origin moved on
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must attach context to failures (`expect`/`Result`), not
// panic opaquely; tests may still unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod cache;
pub mod entry;
pub mod policy;
pub mod stats;

pub use cache::{DocumentCache, LookupOutcome};
pub use entry::Entry;
pub use policy::PolicyKind;
pub use stats::CacheStats;
