//! In-group document placement and replication policies.
//!
//! The paper's cooperative groups run *single-holder* demand caching: a
//! miss is resolved from the nearest group member holding a fresh copy
//! (or the origin), and copies simply follow requests. That leaves two
//! modern levers on the table, both named in PAPERS.md:
//!
//! * **Adaptive replication** (Leconte et al., *Adaptive Replication in
//!   Distributed Content Delivery Networks*): the number of in-group
//!   replicas of a document should track its request rate — hot
//!   documents deserve copies on many members, cold documents deserve
//!   exactly one so the group's aggregate capacity holds more distinct
//!   documents.
//! * **Proximity-aware power-of-d-choices placement** (Pourmiri et al.,
//!   *Proximity-Aware Balanced Allocations in Cache Networks*): when a
//!   new copy enters the group, sample `d` candidate members biased
//!   toward the requester's network vicinity and place the copy on the
//!   least-loaded of them, balancing occupancy across members.
//!
//! This crate defines the [`PlacementPolicy`] trait the simulator
//! consults on every group-internal hit and miss, plus the three
//! implementations ([`SingleHolder`], [`AdaptiveReplication`],
//! [`ProximityDChoices`]) and the [`PlacementKind`] configuration enum
//! that `ecg-sim` carries in its `SimConfig`.
//!
//! Everything is deterministic: [`AdaptiveReplication`] draws no
//! randomness at all (its request-rate estimator is a pure function of
//! event timestamps), and [`ProximityDChoices`] seeds one derived RNG
//! stream per decision from `(policy seed, decision counter)` via
//! [`ecg_par::derive_seed`], so replays are bit-identical regardless of
//! thread count or environment.
//!
//! # Examples
//!
//! ```
//! use ecg_place::{Candidate, PeerHitAction, PlacementKind, PlacementPolicy};
//! use ecg_topology::CacheId;
//! use ecg_workload::DocId;
//!
//! let mut policy = PlacementKind::adaptive().build(8, 100);
//! let candidates = vec![
//!     Candidate { cache: CacheId(0), rtt_ms: 0.0, used_bytes: 10, holds: false },
//!     Candidate { cache: CacheId(1), rtt_ms: 5.0, used_bytes: 900, holds: true },
//! ];
//! // A cold document is served remotely, not replicated.
//! let action = policy.on_peer_hit(DocId(3), 0.0, &candidates, CacheId(1));
//! assert_eq!(action, PeerHitAction::ServeRemote);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must attach context to failures (`expect`/`Result`), not
// panic opaquely; tests may still unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod adaptive;
pub mod dchoices;
pub mod policy;

pub use adaptive::{AdaptiveConfig, AdaptiveReplication};
pub use dchoices::{DChoicesConfig, ProximityDChoices};
pub use policy::{Candidate, PeerHitAction, PlacementKind, PlacementPolicy, SingleHolder};
