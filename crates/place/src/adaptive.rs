//! Leconte-style adaptive in-group replication.
//!
//! *Adaptive Replication in Distributed Content Delivery Networks*
//! (Leconte, Lelarge & Massoulié) argues the replica count of a
//! document should track its request rate: popular documents earn
//! copies on many servers, unpopular ones keep a single copy so the
//! aggregate capacity stores more distinct documents. This module
//! implements the group-local version of that idea on top of the
//! simulator's demand-driven copy flow:
//!
//! * every request (local hit, peer hit, origin fetch) feeds a
//!   per-document **exponentially decayed rate score**
//!   `score ← score · e^(−Δt/τ) + 1`, a pure function of event
//!   timestamps — no RNG, no wall clock;
//! * a document is **promoted** to replicating when its score reaches
//!   `promote`, and **demoted** when it decays below `demote`
//!   (hysteresis keeps borderline documents from flapping);
//! * on a peer hit, the requester keeps a replica only if the document
//!   is promoted *and* the group currently holds fewer than
//!   `max_replicas` copies; otherwise the body is served remotely and
//!   dropped, leaving the single(ish)-copy footprint intact;
//! * demotion is passive: excess replicas of a cooled-down document are
//!   not evicted eagerly, they simply stop being refreshed and age out
//!   under the cache's own replacement policy.

use crate::policy::{holder_count, Candidate, PeerHitAction, PlacementPolicy};
use ecg_topology::CacheId;
use ecg_workload::DocId;

/// Parameters of [`AdaptiveReplication`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Decay time constant of the rate score, ms.
    pub tau_ms: f64,
    /// Score at or above which a document starts replicating.
    pub promote: f64,
    /// Score at or below which a promoted document stops replicating.
    pub demote: f64,
    /// Hard cap on in-group replicas of one document.
    pub max_replicas: usize,
}

impl Default for AdaptiveConfig {
    /// τ = 30 s, promote at score 3, demote at score 1.5 (roughly: a
    /// document requested a few times per τ within the group starts
    /// replicating; hysteresis at half that), at most 4 replicas.
    fn default() -> Self {
        AdaptiveConfig {
            tau_ms: 30_000.0,
            promote: 3.0,
            demote: 1.5,
            max_replicas: 4,
        }
    }
}

impl AdaptiveConfig {
    /// Sets the decay time constant in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics unless positive and finite.
    pub fn tau_ms(mut self, tau_ms: f64) -> Self {
        assert!(tau_ms.is_finite() && tau_ms > 0.0, "tau must be positive");
        self.tau_ms = tau_ms;
        self
    }

    /// Sets the promote/demote score thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= demote <= promote` and both are finite.
    pub fn thresholds(mut self, promote: f64, demote: f64) -> Self {
        assert!(
            promote.is_finite() && demote.is_finite() && 0.0 <= demote && demote <= promote,
            "need 0 <= demote <= promote"
        );
        self.promote = promote;
        self.demote = demote;
        self
    }

    /// Sets the in-group replica cap.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn max_replicas(mut self, max: usize) -> Self {
        assert!(max > 0, "need at least one replica");
        self.max_replicas = max;
        self
    }
}

/// Per-document estimator state.
#[derive(Debug, Clone, Copy, Default)]
struct DocState {
    score: f64,
    last_ms: f64,
    promoted: bool,
}

/// Adaptive replication driven by per-document request-rate estimates
/// with deterministic promote/demote thresholds.
///
/// # Examples
///
/// ```
/// use ecg_place::{AdaptiveConfig, AdaptiveReplication, Candidate, PeerHitAction, PlacementPolicy};
/// use ecg_topology::CacheId;
/// use ecg_workload::DocId;
///
/// let mut policy = AdaptiveReplication::new(AdaptiveConfig::default(), 10);
/// let candidates = vec![
///     Candidate { cache: CacheId(0), rtt_ms: 0.0, used_bytes: 0, holds: false },
///     Candidate { cache: CacheId(1), rtt_ms: 4.0, used_bytes: 0, holds: true },
/// ];
/// // Cold: first peer hit is served remotely.
/// assert_eq!(
///     policy.on_peer_hit(DocId(0), 0.0, &candidates, CacheId(1)),
///     PeerHitAction::ServeRemote
/// );
/// // A burst of requests promotes the document...
/// for i in 1..5 {
///     policy.on_local_hit(DocId(0), i as f64 * 100.0);
/// }
/// // ...and now a peer hit leaves a replica behind.
/// assert_eq!(
///     policy.on_peer_hit(DocId(0), 600.0, &candidates, CacheId(1)),
///     PeerHitAction::Replicate
/// );
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveReplication {
    config: AdaptiveConfig,
    docs: Vec<DocState>,
}

impl AdaptiveReplication {
    /// Creates the policy for a catalog of `docs` documents.
    pub fn new(config: AdaptiveConfig, docs: usize) -> Self {
        AdaptiveReplication {
            config,
            docs: vec![DocState::default(); docs],
        }
    }

    /// Decays and bumps `doc`'s score for a request at `now_ms`, then
    /// applies the promote/demote hysteresis. Returns the promoted
    /// flag after the update.
    fn observe(&mut self, doc: DocId, now_ms: f64) -> bool {
        let state = &mut self.docs[doc.index()];
        let dt = (now_ms - state.last_ms).max(0.0);
        state.score = state.score * (-dt / self.config.tau_ms).exp() + 1.0;
        state.last_ms = now_ms;
        if state.score >= self.config.promote {
            state.promoted = true;
        } else if state.score <= self.config.demote {
            state.promoted = false;
        }
        state.promoted
    }

    /// The current rate score of `doc` (undecayed since its last
    /// observation) — exposed for tests and instrumentation.
    pub fn score(&self, doc: DocId) -> f64 {
        self.docs[doc.index()].score
    }

    /// Whether `doc` is currently promoted to replicating.
    pub fn is_promoted(&self, doc: DocId) -> bool {
        self.docs[doc.index()].promoted
    }
}

impl PlacementPolicy for AdaptiveReplication {
    fn on_local_hit(&mut self, doc: DocId, now_ms: f64) {
        self.observe(doc, now_ms);
    }

    fn on_peer_hit(
        &mut self,
        doc: DocId,
        now_ms: f64,
        candidates: &[Candidate],
        _holder: CacheId,
    ) -> PeerHitAction {
        let promoted = self.observe(doc, now_ms);
        if promoted && holder_count(candidates) < self.config.max_replicas {
            PeerHitAction::Replicate
        } else {
            PeerHitAction::ServeRemote
        }
    }

    fn on_origin_fetch(&mut self, doc: DocId, now_ms: f64, candidates: &[Candidate]) -> CacheId {
        self.observe(doc, now_ms);
        // The group's first copy always lands on the requester.
        candidates[0].cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(holders: usize) -> Vec<Candidate> {
        let mut v = vec![Candidate {
            cache: CacheId(0),
            rtt_ms: 0.0,
            used_bytes: 0,
            holds: false,
        }];
        for i in 0..7 {
            v.push(Candidate {
                cache: CacheId(i + 1),
                rtt_ms: (i + 1) as f64,
                used_bytes: 0,
                holds: i < holders,
            });
        }
        v
    }

    #[test]
    fn score_decays_between_requests() {
        let mut p = AdaptiveReplication::new(AdaptiveConfig::default().tau_ms(1_000.0), 4);
        p.on_local_hit(DocId(0), 0.0);
        assert!((p.score(DocId(0)) - 1.0).abs() < 1e-12);
        p.on_local_hit(DocId(0), 1_000.0);
        // e^-1 + 1
        assert!((p.score(DocId(0)) - (1.0 + (-1.0f64).exp())).abs() < 1e-12);
        // After a long gap the score resets to ~1.
        p.on_local_hit(DocId(0), 100_000.0);
        assert!((p.score(DocId(0)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hysteresis_promotes_and_demotes() {
        let cfg = AdaptiveConfig::default()
            .tau_ms(1_000.0)
            .thresholds(2.5, 1.2);
        let mut p = AdaptiveReplication::new(cfg, 2);
        // Rapid-fire requests push the score over the promote bar.
        for i in 0..4 {
            p.on_local_hit(DocId(1), i as f64);
        }
        assert!(p.is_promoted(DocId(1)));
        // One request after a long silence: score decayed to ~0 then
        // bumped to 1 < demote — demoted again.
        p.on_local_hit(DocId(1), 60_000.0);
        assert!(!p.is_promoted(DocId(1)));
    }

    #[test]
    fn cold_docs_serve_remote_hot_docs_replicate() {
        let mut p = AdaptiveReplication::new(AdaptiveConfig::default().tau_ms(1_000.0), 2);
        let c = cands(1);
        assert_eq!(
            p.on_peer_hit(DocId(0), 0.0, &c, CacheId(1)),
            PeerHitAction::ServeRemote
        );
        for i in 0..5 {
            p.on_local_hit(DocId(0), 10.0 + i as f64);
        }
        assert_eq!(
            p.on_peer_hit(DocId(0), 20.0, &c, CacheId(1)),
            PeerHitAction::Replicate
        );
    }

    #[test]
    fn replica_cap_stops_growth() {
        let cfg = AdaptiveConfig::default().tau_ms(1_000.0).max_replicas(3);
        let mut p = AdaptiveReplication::new(cfg, 2);
        for i in 0..10 {
            p.on_local_hit(DocId(0), i as f64);
        }
        assert!(p.is_promoted(DocId(0)));
        // 2 holders < cap 3: replicate. 3 holders: stop.
        assert_eq!(
            p.on_peer_hit(DocId(0), 11.0, &cands(2), CacheId(1)),
            PeerHitAction::Replicate
        );
        assert_eq!(
            p.on_peer_hit(DocId(0), 12.0, &cands(3), CacheId(1)),
            PeerHitAction::ServeRemote
        );
    }

    #[test]
    fn origin_fetch_places_on_requester() {
        let mut p = AdaptiveReplication::new(AdaptiveConfig::default(), 2);
        assert_eq!(p.on_origin_fetch(DocId(1), 0.0, &cands(0)), CacheId(0));
    }

    #[test]
    #[should_panic(expected = "demote")]
    fn inverted_thresholds_rejected() {
        let _ = AdaptiveConfig::default().thresholds(1.0, 2.0);
    }
}
