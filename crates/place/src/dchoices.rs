//! Pourmiri-style proximity-aware power-of-d-choices placement.
//!
//! *Proximity-Aware Balanced Allocations in Cache Networks* (Pourmiri,
//! Mousavi & co-authors) adapts the classic balls-into-bins
//! power-of-d-choices result to cache networks: instead of placing a
//! new object on a uniformly random server (or always on the
//! requester), sample `d` candidate servers from the requester's
//! network vicinity and place on the least-loaded one. The `d`-way
//! comparison yields exponentially better load balance than a single
//! choice, while the proximity bias keeps later accesses cheap.
//!
//! The group-local adaptation here:
//!
//! * on an **origin fetch** the policy samples `d` distinct members of
//!   the candidate list (requester + alive peers), each drawn without
//!   replacement with weight `1 / (1 + rtt_ms)` — nearby members are
//!   favoured but every member stays reachable — and returns the
//!   sampled member with the fewest `used_bytes` (ties broken by lower
//!   RTT, then lower cache id);
//! * on a **peer hit** it serves remotely without replicating, keeping
//!   exactly one balanced copy per document in the group;
//! * every sampling decision seeds a fresh RNG from
//!   `derive_seed(config.seed, decision_counter)`, so the stream
//!   depends only on the decision index — bit-identical replays
//!   regardless of thread count or interleaved experiments.

use crate::policy::{Candidate, PeerHitAction, PlacementPolicy};
use ecg_par::derive_seed;
use ecg_topology::CacheId;
use ecg_workload::DocId;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Parameters of [`ProximityDChoices`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DChoicesConfig {
    /// Number of candidate members sampled per placement.
    pub d: usize,
    /// Master seed of the per-decision derived RNG streams.
    pub seed: u64,
}

impl Default for DChoicesConfig {
    /// The classic `d = 2` ("power of two choices"), seed 0.
    fn default() -> Self {
        DChoicesConfig { d: 2, seed: 0 }
    }
}

impl DChoicesConfig {
    /// Sets the number of sampled candidates.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn d(mut self, d: usize) -> Self {
        assert!(d > 0, "need at least one choice");
        self.d = d;
        self
    }

    /// Sets the master RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Proximity-aware power-of-d-choices placement.
///
/// # Examples
///
/// ```
/// use ecg_place::{Candidate, DChoicesConfig, PlacementPolicy, ProximityDChoices};
/// use ecg_topology::CacheId;
/// use ecg_workload::DocId;
///
/// let mut policy = ProximityDChoices::new(DChoicesConfig::default().d(3));
/// let candidates = vec![
///     Candidate { cache: CacheId(0), rtt_ms: 0.0, used_bytes: 9_000, holds: false },
///     Candidate { cache: CacheId(1), rtt_ms: 2.0, used_bytes: 100, holds: false },
///     Candidate { cache: CacheId(2), rtt_ms: 5.0, used_bytes: 4_000, holds: false },
/// ];
/// // d = 3 over 3 members samples everyone: the least-loaded wins.
/// assert_eq!(policy.on_origin_fetch(DocId(0), 0.0, &candidates), CacheId(1));
/// ```
#[derive(Debug, Clone)]
pub struct ProximityDChoices {
    config: DChoicesConfig,
    /// Decisions taken so far; the index of the next derived RNG stream.
    decisions: u64,
}

impl ProximityDChoices {
    /// Creates the policy.
    pub fn new(config: DChoicesConfig) -> Self {
        ProximityDChoices {
            config,
            decisions: 0,
        }
    }

    /// Samples `min(d, candidates.len())` distinct indices weighted by
    /// `1 / (1 + rtt_ms)` without replacement, then returns the index
    /// of the least-loaded sample (ties: lower RTT, then lower cache
    /// id).
    fn sample_target(&self, rng: &mut StdRng, candidates: &[Candidate]) -> usize {
        let mut weights: Vec<f64> = candidates
            .iter()
            .map(|c| 1.0 / (1.0 + c.rtt_ms.max(0.0)))
            .collect();
        let draws = self.config.d.min(candidates.len());
        let mut best: Option<usize> = None;
        for _ in 0..draws {
            let total: f64 = weights.iter().sum();
            // All remaining weight consumed (can't happen with d <=
            // len, but keep the guard against float underflow).
            if total <= 0.0 {
                break;
            }
            let mut x = rng.gen_range(0.0..total);
            let mut picked = weights.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if *w <= 0.0 {
                    continue;
                }
                if x < *w {
                    picked = i;
                    break;
                }
                x -= *w;
            }
            weights[picked] = 0.0;
            let better = match best {
                None => true,
                Some(b) => {
                    let (cb, cp) = (&candidates[b], &candidates[picked]);
                    (cp.used_bytes, cp.rtt_ms, cp.cache.0) < (cb.used_bytes, cb.rtt_ms, cb.cache.0)
                }
            };
            if better {
                best = Some(picked);
            }
        }
        best.unwrap_or(0)
    }
}

impl PlacementPolicy for ProximityDChoices {
    fn on_local_hit(&mut self, _doc: DocId, _now_ms: f64) {}

    fn on_peer_hit(
        &mut self,
        _doc: DocId,
        _now_ms: f64,
        _candidates: &[Candidate],
        _holder: CacheId,
    ) -> PeerHitAction {
        // Balanced single copies: the placed replica serves the whole
        // group; requests never clone it.
        PeerHitAction::ServeRemote
    }

    fn on_origin_fetch(&mut self, _doc: DocId, _now_ms: f64, candidates: &[Candidate]) -> CacheId {
        let stream = self.decisions;
        self.decisions += 1;
        if candidates.len() == 1 {
            return candidates[0].cache;
        }
        let mut rng = StdRng::seed_from_u64(derive_seed(self.config.seed, stream));
        let target = self.sample_target(&mut rng, candidates);
        candidates[target].cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u32, rtt: f64, used: u64) -> Candidate {
        Candidate {
            cache: CacheId(id as usize),
            rtt_ms: rtt,
            used_bytes: used,
            holds: false,
        }
    }

    #[test]
    fn peer_hits_never_replicate() {
        let mut p = ProximityDChoices::new(DChoicesConfig::default());
        let c = vec![cand(0, 0.0, 0), cand(1, 3.0, 0)];
        assert_eq!(
            p.on_peer_hit(DocId(0), 0.0, &c, CacheId(1)),
            PeerHitAction::ServeRemote
        );
    }

    #[test]
    fn singleton_group_places_on_requester() {
        let mut p = ProximityDChoices::new(DChoicesConfig::default());
        let c = vec![cand(7, 0.0, 123)];
        assert_eq!(p.on_origin_fetch(DocId(0), 0.0, &c), CacheId(7));
    }

    #[test]
    fn full_sample_picks_least_loaded() {
        // d >= group size: sampling covers everyone, so the pick is
        // deterministic regardless of the RNG draws.
        let mut p = ProximityDChoices::new(DChoicesConfig::default().d(8));
        let c = vec![cand(0, 0.0, 500), cand(1, 9.0, 20), cand(2, 1.0, 300)];
        assert_eq!(p.on_origin_fetch(DocId(0), 0.0, &c), CacheId(1));
    }

    #[test]
    fn load_ties_break_by_rtt_then_id() {
        let mut p = ProximityDChoices::new(DChoicesConfig::default().d(8));
        let c = vec![cand(2, 4.0, 100), cand(0, 0.0, 100), cand(1, 4.0, 100)];
        // All loads equal: requester (rtt 0) wins.
        assert_eq!(p.on_origin_fetch(DocId(0), 0.0, &c), CacheId(0));
        let c = vec![cand(2, 4.0, 100), cand(1, 4.0, 100)];
        // Equal load and RTT: lower cache id wins.
        assert_eq!(p.on_origin_fetch(DocId(0), 0.0, &c), CacheId(1));
    }

    #[test]
    fn decisions_are_replayable() {
        let c = vec![
            cand(0, 0.0, 500),
            cand(1, 2.0, 400),
            cand(2, 6.0, 300),
            cand(3, 12.0, 200),
        ];
        let run = |seed: u64| {
            let mut p = ProximityDChoices::new(DChoicesConfig::default().seed(seed));
            (0..50)
                .map(|i| p.on_origin_fetch(DocId(i), i as f64, &c).0)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "seed must matter");
    }

    #[test]
    fn proximity_bias_favours_near_members() {
        // With d = 1 the pick is pure proximity-weighted sampling; the
        // rtt-0 requester (weight 1.0) must beat the rtt-99 peer
        // (weight 0.01) almost always.
        let mut p = ProximityDChoices::new(DChoicesConfig::default().d(1));
        let c = vec![cand(0, 0.0, 0), cand(1, 99.0, 0)];
        let near = (0..200)
            .filter(|&i| p.on_origin_fetch(DocId(i), 0.0, &c) == CacheId(0))
            .count();
        assert!(near > 180, "near member picked only {near}/200 times");
    }

    #[test]
    fn spread_beats_requester_only_placement() {
        // Sanity: under repeated fetches with an overloaded requester,
        // d-choices routinely places away from it.
        let mut p = ProximityDChoices::new(DChoicesConfig::default().d(3));
        let c = vec![
            cand(0, 0.0, 1_000_000),
            cand(1, 2.0, 10),
            cand(2, 4.0, 10),
            cand(3, 8.0, 10),
        ];
        let away = (0..100)
            .filter(|&i| p.on_origin_fetch(DocId(i), 0.0, &c) != CacheId(0))
            .count();
        assert!(away > 80, "placed away from loaded requester {away}/100");
    }
}
