//! The placement-policy trait, its inputs, and the configuration enum.

use crate::adaptive::{AdaptiveConfig, AdaptiveReplication};
use crate::dchoices::{DChoicesConfig, ProximityDChoices};
use ecg_topology::CacheId;
use ecg_workload::DocId;

/// One group member visible to a placement decision.
///
/// The simulator assembles a candidate list on every cooperative miss
/// (peer hit or origin fetch): the requesting cache first — always with
/// `rtt_ms == 0.0` — followed by its *alive* group peers in group
/// order. Down or retired members never appear, so a policy can only
/// place copies on members that can actually serve them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The member's cache id.
    pub cache: CacheId,
    /// Round-trip time from the requesting cache, ms (0 for the
    /// requester itself).
    pub rtt_ms: f64,
    /// Bytes currently occupied in the member's cache — the "load" of
    /// balanced-allocation placement.
    pub used_bytes: u64,
    /// Whether the member currently holds *any* copy of the requested
    /// document (fresh or stale — presence, exactly what the holder
    /// index tracks).
    pub holds: bool,
}

/// What the requesting cache should do with the body it received from a
/// group peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerHitAction {
    /// Keep a local replica (the baseline's demand-replication
    /// behaviour): the group now holds one more copy.
    Replicate,
    /// Serve the client and drop the body: the group keeps its current
    /// replica set and the requester's capacity stays free for other
    /// documents.
    ServeRemote,
}

/// A placement policy decides, on every group-internal hit and miss,
/// where a document copy should live and how many replicas it deserves.
///
/// The simulator owns one policy instance per run and calls it
/// single-threaded, in event order; implementations are therefore free
/// to keep mutable state (rate estimators, RNG counters) without
/// synchronization. Determinism contract: decisions may depend only on
/// the call arguments and prior calls — never on wall-clock time,
/// thread count, or map iteration order.
pub trait PlacementPolicy {
    /// Called on a fresh local hit at the requesting cache. Pure
    /// popularity signal; nothing to decide.
    fn on_local_hit(&mut self, doc: DocId, now_ms: f64);

    /// Called when a group peer (`holder`) serves `doc` to the
    /// requester (`candidates[0]`). Returns whether the requester keeps
    /// a replica.
    fn on_peer_hit(
        &mut self,
        doc: DocId,
        now_ms: f64,
        candidates: &[Candidate],
        holder: CacheId,
    ) -> PeerHitAction;

    /// Called when the group missed entirely and the requester
    /// (`candidates[0]`) fetched `doc` from the origin. Returns the
    /// member that should cache the new copy (the requester serves the
    /// client either way).
    fn on_origin_fetch(&mut self, doc: DocId, now_ms: f64, candidates: &[Candidate]) -> CacheId;
}

/// The paper's single-holder baseline: copies follow requests.
///
/// * peer hit → the requester keeps a replica (demand replication);
/// * origin fetch → the copy lands on the requester.
///
/// This reproduces the simulator's historical behaviour exactly — the
/// simulator short-circuits these decisions without consulting the
/// policy, so baseline runs are bit-identical to pre-placement builds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SingleHolder;

impl PlacementPolicy for SingleHolder {
    fn on_local_hit(&mut self, _doc: DocId, _now_ms: f64) {}

    fn on_peer_hit(
        &mut self,
        _doc: DocId,
        _now_ms: f64,
        _candidates: &[Candidate],
        _holder: CacheId,
    ) -> PeerHitAction {
        PeerHitAction::Replicate
    }

    fn on_origin_fetch(&mut self, _doc: DocId, _now_ms: f64, candidates: &[Candidate]) -> CacheId {
        candidates[0].cache
    }
}

/// Which placement policy a simulation runs, with its parameters.
///
/// `Copy` so it can ride inside `ecg-sim`'s `SimConfig`; the simulator
/// builds the stateful [`PlacementPolicy`] instance from it at the
/// start of each replay via [`PlacementKind::build`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PlacementKind {
    /// The paper's single-holder demand caching. The default; leaves
    /// every historical experiment output byte-identical.
    #[default]
    SingleHolder,
    /// Leconte-style adaptive replication with deterministic
    /// promote/demote thresholds.
    Adaptive(AdaptiveConfig),
    /// Pourmiri-style proximity-aware power-of-d-choices placement.
    DChoices(DChoicesConfig),
}

impl PlacementKind {
    /// Adaptive replication with default thresholds.
    pub fn adaptive() -> Self {
        PlacementKind::Adaptive(AdaptiveConfig::default())
    }

    /// Proximity-aware d-choices with default parameters.
    pub fn d_choices() -> Self {
        PlacementKind::DChoices(DChoicesConfig::default())
    }

    /// Human-readable policy name, for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementKind::SingleHolder => "single-holder",
            PlacementKind::Adaptive(_) => "adaptive",
            PlacementKind::DChoices(_) => "d-choices",
        }
    }

    /// Whether this is the passive baseline the simulator short-circuits
    /// (no candidate assembly, no policy calls, no placement metrics).
    pub fn is_single_holder(&self) -> bool {
        matches!(self, PlacementKind::SingleHolder)
    }

    /// Builds the stateful policy instance for a run over `caches`
    /// caches and `docs` documents.
    pub fn build(&self, caches: usize, docs: usize) -> Box<dyn PlacementPolicy> {
        let _ = caches;
        match *self {
            PlacementKind::SingleHolder => Box::new(SingleHolder),
            PlacementKind::Adaptive(config) => Box::new(AdaptiveReplication::new(config, docs)),
            PlacementKind::DChoices(config) => Box::new(ProximityDChoices::new(config)),
        }
    }
}

/// Number of candidates currently holding a copy — the document's
/// in-group replica count as visible to a decision.
pub(crate) fn holder_count(candidates: &[Candidate]) -> usize {
    candidates.iter().filter(|c| c.holds).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<Candidate> {
        vec![
            Candidate {
                cache: CacheId(4),
                rtt_ms: 0.0,
                used_bytes: 100,
                holds: false,
            },
            Candidate {
                cache: CacheId(1),
                rtt_ms: 7.0,
                used_bytes: 400,
                holds: true,
            },
        ]
    }

    #[test]
    fn single_holder_replicates_on_requester() {
        let mut p = SingleHolder;
        let c = candidates();
        assert_eq!(
            p.on_peer_hit(DocId(0), 0.0, &c, CacheId(1)),
            PeerHitAction::Replicate
        );
        assert_eq!(p.on_origin_fetch(DocId(0), 0.0, &c), CacheId(4));
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(PlacementKind::SingleHolder.name(), "single-holder");
        assert_eq!(PlacementKind::adaptive().name(), "adaptive");
        assert_eq!(PlacementKind::d_choices().name(), "d-choices");
        assert!(PlacementKind::default().is_single_holder());
        assert!(!PlacementKind::adaptive().is_single_holder());
    }

    #[test]
    fn holder_count_counts_presence() {
        assert_eq!(holder_count(&candidates()), 1);
        assert_eq!(holder_count(&[]), 0);
    }

    #[test]
    fn build_produces_working_policies() {
        let c = candidates();
        for kind in [
            PlacementKind::SingleHolder,
            PlacementKind::adaptive(),
            PlacementKind::d_choices(),
        ] {
            let mut p = kind.build(8, 50);
            p.on_local_hit(DocId(0), 1.0);
            let target = p.on_origin_fetch(DocId(0), 2.0, &c);
            assert!(c.iter().any(|cand| cand.cache == target), "{kind:?}");
        }
    }
}
