//! Property-based tests for the simulator.

use ecg_sim::{simulate, FreshnessProtocol, GroupMap, LatencyModel, SimConfig};
use ecg_topology::{CacheId, EdgeNetwork, RttMatrix};
use ecg_workload::{generate_updates, merge_streams, CatalogConfig, RequestConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random edge network: origin plus n caches with synthetic RTTs.
fn arb_network(seed: u64, caches: usize) -> EdgeNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = RttMatrix::from_fn(caches + 1, |_, _| rng.gen_range(1.0..80.0));
    EdgeNetwork::from_rtt_matrix(m)
}

/// A random valid partition of `n` caches into at most `max_k` groups.
fn arb_partition(seed: u64, n: usize, max_k: usize) -> GroupMap {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = rng.gen_range(1..=max_k.min(n));
    loop {
        let mut groups: Vec<Vec<CacheId>> = vec![Vec::new(); k];
        for c in 0..n {
            groups[rng.gen_range(0..k)].push(CacheId(c));
        }
        groups.retain(|g| !g.is_empty());
        if let Ok(map) = GroupMap::new(n, groups) {
            return map;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn report_invariants_hold(
        seed in any::<u64>(),
        caches in 2usize..10,
        duration in 5_000.0f64..30_000.0,
    ) {
        let net = arb_network(seed, caches);
        let groups = arb_partition(seed.wrapping_add(1), caches, 4);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
        let cat = CatalogConfig::default()
            .documents(60)
            .dynamic_fraction(0.3)
            .dynamic_update_rate_per_sec(0.05)
            .generate(&mut rng);
        let requests = RequestConfig::default().generate(&cat, caches, duration, &mut rng);
        let updates = generate_updates(&cat, duration, &mut rng);
        let trace = merge_streams(&requests, &updates);
        let report = simulate(&net, &groups, &cat, &trace, SimConfig::default()).unwrap();

        // Every request is accounted for exactly once.
        prop_assert_eq!(report.metrics.total_requests(), requests.len() as u64);
        let (mut local, mut peer, mut origin) = (0u64, 0u64, 0u64);
        for agg in report.metrics.per_cache() {
            local += agg.local_hits;
            peer += agg.peer_hits;
            origin += agg.origin_fetches;
            prop_assert_eq!(agg.local_hits + agg.peer_hits + agg.origin_fetches, agg.requests);
        }
        prop_assert_eq!(local + peer + origin, requests.len() as u64);
        // The origin served exactly the origin-fetch requests.
        prop_assert_eq!(report.origin_fetches, origin);
        prop_assert_eq!(report.origin_updates, updates.len() as u64);
        // Latency is non-negative and finite.
        let mean = report.average_latency_ms();
        prop_assert!(mean.is_finite() && mean >= 0.0);
        // Cache stats tie out with metric outcomes: every fresh hit in
        // the cache layer is a local hit in the metrics.
        prop_assert_eq!(report.cache_stats.fresh_hits, local);
    }

    #[test]
    fn singleton_groups_never_use_peers(
        seed in any::<u64>(),
        caches in 2usize..8,
    ) {
        let net = arb_network(seed, caches);
        let mut rng = StdRng::seed_from_u64(seed);
        let cat = CatalogConfig::default().documents(30).generate(&mut rng);
        let requests = RequestConfig::default().generate(&cat, caches, 10_000.0, &mut rng);
        let trace = merge_streams(&requests, &[]);
        let report = simulate(
            &net,
            &GroupMap::singletons(caches),
            &cat,
            &trace,
            SimConfig::default(),
        )
        .unwrap();
        prop_assert_eq!(report.metrics.peer_bytes, 0);
        prop_assert_eq!(report.metrics.control_messages, 0);
        for agg in report.metrics.per_cache() {
            prop_assert_eq!(agg.peer_hits, 0);
        }
    }

    #[test]
    fn faster_network_is_never_slower(
        seed in any::<u64>(),
        caches in 2usize..6,
    ) {
        // Scaling every RTT down scales latency down (same trace, same
        // groups): a sanity check that latency is monotone in network
        // distance.
        let mut rng = StdRng::seed_from_u64(seed);
        let base = RttMatrix::from_fn(caches + 1, |_, _| rng.gen_range(5.0..60.0));
        let slow = EdgeNetwork::from_rtt_matrix(base.clone());
        let fast = EdgeNetwork::from_rtt_matrix(RttMatrix::from_fn(caches + 1, |i, j| {
            base.get(i, j) * 0.5
        }));
        let cat = CatalogConfig::default().documents(40).generate(&mut rng);
        let requests = RequestConfig::default().generate(&cat, caches, 20_000.0, &mut rng);
        let trace = merge_streams(&requests, &[]);
        let groups = GroupMap::one_group(caches);
        let cfg = SimConfig::default();
        let slow_report = simulate(&slow, &groups, &cat, &trace, cfg).unwrap();
        let fast_report = simulate(&fast, &groups, &cat, &trace, cfg).unwrap();
        prop_assert!(
            fast_report.average_latency_ms() <= slow_report.average_latency_ms() + 1e-9
        );
    }

    #[test]
    fn higher_bandwidth_is_never_slower(
        seed in any::<u64>(),
        caches in 2usize..6,
    ) {
        let net = arb_network(seed, caches);
        let mut rng = StdRng::seed_from_u64(seed);
        let cat = CatalogConfig::default().documents(40).generate(&mut rng);
        let requests = RequestConfig::default().generate(&cat, caches, 20_000.0, &mut rng);
        let trace = merge_streams(&requests, &[]);
        let groups = GroupMap::one_group(caches);
        let slow = simulate(
            &net, &groups, &cat, &trace,
            SimConfig::default().latency(LatencyModel::default().bandwidth_mbps(5.0)),
        ).unwrap();
        let fast = simulate(
            &net, &groups, &cat, &trace,
            SimConfig::default().latency(LatencyModel::default().bandwidth_mbps(500.0)),
        ).unwrap();
        prop_assert!(fast.average_latency_ms() <= slow.average_latency_ms() + 1e-9);
    }

    #[test]
    fn freshness_protocol_invariants(
        seed in any::<u64>(),
        caches in 2usize..6,
        ttl in 1_000.0f64..60_000.0,
    ) {
        let net = arb_network(seed, caches);
        let mut rng = StdRng::seed_from_u64(seed);
        let cat = CatalogConfig::default()
            .documents(40)
            .dynamic_fraction(0.5)
            .dynamic_update_rate_per_sec(0.05)
            .generate(&mut rng);
        let requests = RequestConfig::default().generate(&cat, caches, 30_000.0, &mut rng);
        let updates = generate_updates(&cat, 30_000.0, &mut rng);
        let trace = merge_streams(&requests, &updates);
        let groups = GroupMap::one_group(caches);

        let run = |protocol| {
            simulate(&net, &groups, &cat, &trace,
                SimConfig::default().freshness(protocol)).unwrap()
        };
        let lazy = run(FreshnessProtocol::InvalidateOnAccess);
        let push = run(FreshnessProtocol::OriginMulticast);
        let lease = run(FreshnessProtocol::TtlLease { ttl_ms: ttl });

        // Version-checked protocols never serve stale data.
        prop_assert_eq!(lazy.metrics.stale_served, 0);
        prop_assert_eq!(push.metrics.stale_served, 0);
        // Only multicast sends push invalidations.
        prop_assert_eq!(lazy.metrics.invalidations_sent, 0);
        prop_assert_eq!(lease.metrics.invalidations_sent, 0);
        // Every protocol accounts for every request.
        for r in [&lazy, &push, &lease] {
            prop_assert_eq!(r.metrics.total_requests(), requests.len() as u64);
            prop_assert_eq!(r.origin_updates, updates.len() as u64);
        }
        // Staleness served is bounded by total requests.
        prop_assert!(lease.metrics.stale_served <= lease.metrics.total_requests());
        // Note: the lease can fetch either more (short TTL expires
        // never-updated documents) or less (long TTL rides out updates)
        // than the version-checked protocols, so no ordering holds.
    }
}
