//! The simulation driver.
//!
//! Replays a merged workload trace against a cooperative edge cache
//! network and records the paper's client-side metric (average cache
//! latency) plus hit-rate and traffic breakdowns.
//!
//! ## Cooperative miss handling
//!
//! On a local miss (or stale copy), the cache queries **all** its group
//! peers in parallel, ICP-style:
//!
//! * fanning the query out costs per-member processing time
//!   (`peers × peer_query_cost`), so group interaction overhead grows
//!   with group size — the paper's efficiency/effectiveness trade-off;
//! * if some peer holds a fresh copy, the nearest fresh holder's hit
//!   reply carries the document body (the piggyback optimization
//!   cooperative caches use to avoid a second round trip), so
//!   `latency = fanout + rtt(c, p*) + size/bw`;
//! * if no peer holds it, the cache has waited for the *slowest* peer's
//!   negative reply before giving up — this is exactly how group spread
//!   hurts far-flung groups — and then pays the origin fetch:
//!   `latency = fanout + max_p rtt(c, p) + rtt(c, Os) + processing + size/bw`.
//!
//! Requests do not queue (each is served analytically from the latency
//! model); contention effects are out of scope, as in the paper's
//! latency-oriented evaluation.

use crate::event::{Event, EventQueue};
use crate::fault::{FaultError, FaultKind, FaultSchedule};
use crate::groups::GroupMap;
use crate::holders::{HolderIndex, PeerMasks};
use crate::latency::LatencyModel;
use crate::metrics::{MetricsRecorder, ServedBy};
use crate::origin::OriginServer;
use crate::time::SimTime;
use ecg_cache::{CacheStats, DocumentCache, LookupOutcome, PolicyKind};
use ecg_obs::Obs;
use ecg_place::{Candidate, PeerHitAction, PlacementKind, PlacementPolicy};
use ecg_topology::{CacheId, EdgeNetwork};
use ecg_workload::{DocId, DocumentCatalog, TraceEvent};
use std::fmt;

/// How cached copies learn about origin updates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FreshnessProtocol {
    /// Staleness is detected lazily at access time: every lookup and
    /// peer probe carries the origin's current version and an older
    /// copy counts as a miss. The default, and the model the headline
    /// experiments use.
    #[default]
    InvalidateOnAccess,
    /// The origin pushes an invalidation to every cache holding the
    /// document the moment it updates (idealized multicast: instant,
    /// reliable). Clients never see stale data; each invalidation is a
    /// control message.
    OriginMulticast,
    /// TTL leases: a cached copy is served for `ttl_ms` after it was
    /// fetched *regardless* of origin updates. Cheapest in messages,
    /// but clients may be served stale versions — counted in
    /// [`MetricsRecorder::stale_served`].
    TtlLease {
        /// Lease duration in milliseconds.
        ttl_ms: f64,
    },
}

/// How cooperative misses locate a peer copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeerLookup {
    /// Probe every alive peer's cache map on every miss. The reference
    /// implementation.
    ScanAll,
    /// Maintain a document→holder bitset ([`HolderIndex`]) updated on
    /// every insert, eviction, invalidation, and crash, so the per-peer
    /// probe is a bit test and holder-free groups are ruled out with a
    /// few word intersections. Produces reports identical to
    /// [`PeerLookup::ScanAll`]; the default.
    #[default]
    HolderIndex,
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    cache_capacity_bytes: u64,
    policy: PolicyKind,
    latency: LatencyModel,
    warmup_ms: f64,
    freshness: FreshnessProtocol,
    peer_lookup: PeerLookup,
    placement: PlacementKind,
}

impl Default for SimConfig {
    /// 1 MiB per cache, utility-based replacement (the paper's setting),
    /// default latency model, no warm-up exclusion.
    fn default() -> Self {
        SimConfig {
            cache_capacity_bytes: 1 << 20,
            policy: PolicyKind::Utility,
            latency: LatencyModel::default(),
            warmup_ms: 0.0,
            freshness: FreshnessProtocol::InvalidateOnAccess,
            peer_lookup: PeerLookup::HolderIndex,
            placement: PlacementKind::SingleHolder,
        }
    }
}

impl SimConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-cache capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn cache_capacity_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "capacity must be positive");
        self.cache_capacity_bytes = bytes;
        self
    }

    /// Sets the replacement policy used by every cache.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the network latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Excludes the first `ms` of the trace from the metrics (caches
    /// still warm up during it).
    pub fn warmup_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "warmup must be >= 0");
        self.warmup_ms = ms;
        self
    }

    /// Sets the freshness protocol.
    ///
    /// # Panics
    ///
    /// Panics if a TTL lease is configured with a non-positive TTL.
    pub fn freshness(mut self, protocol: FreshnessProtocol) -> Self {
        if let FreshnessProtocol::TtlLease { ttl_ms } = protocol {
            assert!(
                ttl_ms.is_finite() && ttl_ms > 0.0,
                "lease ttl must be positive"
            );
        }
        self.freshness = protocol;
        self
    }

    /// Sets the cooperative-miss lookup strategy. Both settings produce
    /// identical reports; [`PeerLookup::ScanAll`] exists as the
    /// reference for equivalence tests and benchmarks.
    pub fn peer_lookup(mut self, lookup: PeerLookup) -> Self {
        self.peer_lookup = lookup;
        self
    }

    /// Sets the in-group placement/replication policy (see
    /// [`ecg_place`]). The default [`PlacementKind::SingleHolder`] is
    /// short-circuited entirely, so baseline runs are bit-identical to
    /// builds that predate placement support.
    pub fn placement(mut self, placement: PlacementKind) -> Self {
        self.placement = placement;
        self
    }

    /// The configured placement policy.
    pub fn placement_kind(&self) -> PlacementKind {
        self.placement
    }

    /// The configured latency model.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    /// The configured cooperative-miss lookup strategy.
    pub fn peer_lookup_strategy(&self) -> PeerLookup {
        self.peer_lookup
    }

    /// The configured freshness protocol.
    pub fn freshness_protocol(&self) -> FreshnessProtocol {
        self.freshness
    }
}

/// Error from [`simulate`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The group map covers a different number of caches than the
    /// network.
    CacheCountMismatch {
        /// Caches in the network.
        network: usize,
        /// Caches in the group map.
        groups: usize,
    },
    /// A trace request targets a cache outside the network.
    RequestCacheOutOfRange {
        /// The offending cache index.
        cache: usize,
    },
    /// A trace event references a document outside the catalog.
    DocOutOfRange {
        /// The offending document index.
        doc: usize,
    },
    /// The fault schedule failed validation.
    Fault(FaultError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CacheCountMismatch { network, groups } => write!(
                f,
                "group map covers {groups} caches but the network has {network}"
            ),
            SimError::RequestCacheOutOfRange { cache } => {
                write!(f, "trace request targets unknown cache {cache}")
            }
            SimError::DocOutOfRange { doc } => {
                write!(f, "trace references unknown document {doc}")
            }
            SimError::Fault(e) => write!(f, "invalid fault schedule: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<FaultError> for SimError {
    fn from(e: FaultError) -> Self {
        SimError::Fault(e)
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Per-request metrics (latencies, outcome breakdowns).
    pub metrics: MetricsRecorder,
    /// Aggregated cache statistics across all edge caches.
    pub cache_stats: CacheStats,
    /// Updates the origin applied.
    pub origin_updates: u64,
    /// Fetches the origin served.
    pub origin_fetches: u64,
}

impl SimReport {
    /// Network-wide average cache latency in ms — the paper's headline
    /// client metric. Zero if the run recorded no requests.
    pub fn average_latency_ms(&self) -> f64 {
        self.metrics.mean_latency_ms().unwrap_or(0.0)
    }
}

impl fmt::Display for SimReport {
    /// A compact multi-line human summary (used by the `ecg` CLI).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "requests          {}", self.metrics.total_requests())?;
        writeln!(f, "avg latency       {:.2} ms", self.average_latency_ms())?;
        for (label, p) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            if let Some(v) = self.metrics.latency_percentile_ms(p) {
                writeln!(f, "{label} latency       {v:.2} ms")?;
            }
        }
        writeln!(
            f,
            "group hit rate    {:.1}%",
            100.0 * self.metrics.group_hit_rate().unwrap_or(0.0)
        )?;
        writeln!(f, "origin fetches    {}", self.origin_fetches)?;
        writeln!(f, "origin updates    {}", self.origin_updates)?;
        writeln!(f, "stale served      {}", self.metrics.stale_served)?;
        writeln!(f, "peer bytes        {}", self.metrics.peer_bytes)?;
        write!(f, "control messages  {}", self.metrics.control_messages)?;
        if self.metrics.saw_placement() {
            write!(
                f,
                "\nreplicas          {} created, {} suppressed",
                self.metrics.replicas_created, self.metrics.replicas_suppressed
            )?;
            write!(f, "\nremote placements {}", self.metrics.remote_placements)?;
        }
        let deg = &self.metrics.degradation;
        if deg.saw_faults() {
            write!(
                f,
                "\nfaults            {} crashes, {} recoveries, {} retirements",
                deg.crashes, deg.recoveries, deg.retirements
            )?;
            write!(f, "\nfailovers         {}", deg.failovers)?;
            write!(
                f,
                "\ndegraded reqs     {} ({:.1}%)",
                deg.degraded.requests,
                100.0 * deg.degraded_fraction().unwrap_or(0.0)
            )?;
            if let Some(penalty) = deg.degradation_penalty_ms() {
                write!(f, "\ndegraded penalty  {penalty:.2} ms")?;
            }
        }
        Ok(())
    }
}

/// Replays `trace` against the network and returns the collected
/// metrics.
///
/// # Errors
///
/// Returns [`SimError`] if the group map does not match the network or
/// the trace references unknown caches/documents.
///
/// # Examples
///
/// ```
/// use ecg_sim::{simulate, GroupMap, SimConfig};
/// use ecg_topology::{fixtures::paper_figure1, EdgeNetwork};
/// use ecg_workload::{merge_streams, CatalogConfig, RequestConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
/// let mut rng = StdRng::seed_from_u64(1);
/// let catalog = CatalogConfig::default().documents(100).generate(&mut rng);
/// let requests = RequestConfig::default().generate(&catalog, 6, 10_000.0, &mut rng);
/// let trace = merge_streams(&requests, &[]);
/// let groups = GroupMap::one_group(6);
/// let report = simulate(&network, &groups, &catalog, &trace, SimConfig::default())?;
/// assert!(report.average_latency_ms() > 0.0);
/// # Ok::<(), ecg_sim::SimError>(())
/// ```
pub fn simulate(
    network: &EdgeNetwork,
    groups: &GroupMap,
    catalog: &DocumentCatalog,
    trace: &[TraceEvent],
    config: SimConfig,
) -> Result<SimReport, SimError> {
    simulate_with_faults(
        network,
        groups,
        catalog,
        trace,
        config,
        &FaultSchedule::new(),
    )
}

/// Replays `trace` against the network while injecting the faults in
/// `schedule`, and returns the collected metrics — including the
/// healthy/degraded split in
/// [`MetricsRecorder::degradation`](crate::metrics::DegradationMetrics).
///
/// With an empty schedule this is exactly [`simulate`] (which delegates
/// here), so a zero-fault plan reproduces baseline results bit for bit.
///
/// Fault semantics are documented on [`crate::fault`]; in brief: a down
/// cache serves nothing (its clients fail over to the origin, paying the
/// schedule's failover penalty), cooperative lookups skip down peers,
/// recovery is cold, retirement is permanent, and origin brownouts
/// multiply every origin fetch latency.
///
/// # Errors
///
/// Returns [`SimError`] if the group map does not match the network, the
/// trace references unknown caches/documents, or the fault schedule
/// fails [`FaultSchedule::validate`].
pub fn simulate_with_faults(
    network: &EdgeNetwork,
    groups: &GroupMap,
    catalog: &DocumentCatalog,
    trace: &[TraceEvent],
    config: SimConfig,
    schedule: &FaultSchedule,
) -> Result<SimReport, SimError> {
    simulate_with_faults_observed(network, groups, catalog, trace, config, schedule, None)
}

/// Like [`simulate`], but records internal telemetry into an
/// observability bundle when one is supplied (see
/// [`simulate_with_faults_observed`] for what is recorded).
///
/// # Errors
///
/// Exactly as [`simulate`].
pub fn simulate_observed(
    network: &EdgeNetwork,
    groups: &GroupMap,
    catalog: &DocumentCatalog,
    trace: &[TraceEvent],
    config: SimConfig,
    obs: Option<&mut Obs>,
) -> Result<SimReport, SimError> {
    simulate_with_faults_observed(
        network,
        groups,
        catalog,
        trace,
        config,
        &FaultSchedule::new(),
        obs,
    )
}

/// Like [`simulate_with_faults`], but records internal telemetry into an
/// observability bundle when one is supplied:
///
/// * per-group outcome counters `sim.group.NNN.{local_hits, peer_hits,
///   coop_misses}` (zero-padded so sorted export order equals numeric
///   group order) plus workload-wide totals `sim.{local_hits,
///   peer_hits, coop_misses, failovers, control_messages,
///   stale_served}` — counted over the whole run, warm-up included;
/// * holder-index counters `sim.holder.{group_checks, ruled_out,
///   bit_tests}` (all zero under [`PeerLookup::ScanAll`]);
/// * a `sim.queue.max_depth` gauge (the event queue only drains, so the
///   high-water mark is the initially scheduled event count);
/// * the request-latency distribution merged into a `sim.latency_ms`
///   histogram;
/// * one `sim` trace event per fault injection, timestamped with sim
///   time, and a `sim` phase span whose work is the timestamp of the
///   last processed event in ms.
///
/// The report is identical with and without a bundle — the simulator is
/// RNG-free and instrumentation only reads state.
///
/// # Errors
///
/// Exactly as [`simulate_with_faults`].
pub fn simulate_with_faults_observed(
    network: &EdgeNetwork,
    groups: &GroupMap,
    catalog: &DocumentCatalog,
    trace: &[TraceEvent],
    config: SimConfig,
    schedule: &FaultSchedule,
    mut obs: Option<&mut Obs>,
) -> Result<SimReport, SimError> {
    let n = network.cache_count();
    if groups.cache_count() != n {
        return Err(SimError::CacheCountMismatch {
            network: n,
            groups: groups.cache_count(),
        });
    }
    schedule.validate(n)?;

    let mut queue = EventQueue::new();
    // Faults go in first: at equal timestamps a crash lands before the
    // requests of that instant (FIFO tie-break), so a request at the
    // crash time already sees the cache down.
    for (idx, fault) in schedule.events().iter().enumerate() {
        queue.schedule(SimTime::from_ms(fault.time_ms), Event::Fault { idx });
    }

    // Load the trace into the event queue, validating references.
    for event in trace {
        match event {
            TraceEvent::Request(r) => {
                if r.cache >= n {
                    return Err(SimError::RequestCacheOutOfRange { cache: r.cache });
                }
                if r.doc.index() >= catalog.len() {
                    return Err(SimError::DocOutOfRange { doc: r.doc.index() });
                }
                queue.schedule(
                    SimTime::from_ms(r.time_ms),
                    Event::ClientRequest {
                        cache: CacheId(r.cache),
                        doc: r.doc,
                    },
                );
            }
            TraceEvent::Update(u) => {
                if u.doc.index() >= catalog.len() {
                    return Err(SimError::DocOutOfRange { doc: u.doc.index() });
                }
                queue.schedule(
                    SimTime::from_ms(u.time_ms),
                    Event::OriginUpdate { doc: u.doc },
                );
            }
        }
    }

    let mut caches: Vec<DocumentCache> = (0..n)
        .map(|_| DocumentCache::new(config.cache_capacity_bytes, config.policy))
        .collect();
    let mut origin = OriginServer::new(catalog);
    let mut metrics = MetricsRecorder::new(n);
    metrics.degradation = crate::metrics::DegradationMetrics::new(schedule.timeline_bucket());
    // Degradation accumulates per group and is folded in group order
    // after the loop. Groups are independent between re-formation
    // events, so this makes every f64 sum reconstructible by a sharded
    // replay (ecg-replay) that runs one group per shard and merges the
    // shard recorders through the same fold.
    let mut deg_groups: Vec<crate::metrics::DegradationMetrics> = (0..groups.group_count())
        .map(|_| crate::metrics::DegradationMetrics::new(schedule.timeline_bucket()))
        .collect();
    let model = config.latency;
    let warmup = SimTime::from_ms(config.warmup_ms);

    // Fault state. `down[c]` covers both transient crashes and permanent
    // retirements; `retired[c]` keeps a retired cache from recovering.
    // Crashed caches lose their contents immediately; their stats so far
    // are folded into `lost_stats` so the report still covers them.
    let mut down = vec![false; n];
    let mut retired = vec![false; n];
    let mut brownout = 1.0f64;
    let mut lost_stats = CacheStats::default();

    // Holder index: mirrors cache membership so the cooperative-miss
    // path tests a bit instead of probing every peer's cache map. Kept
    // in sync on insert/evict/invalidate/crash below; `None` under
    // `PeerLookup::ScanAll`.
    let mut index = (config.peer_lookup == PeerLookup::HolderIndex).then(|| {
        (
            HolderIndex::new(catalog.len(), n),
            PeerMasks::from_groups(groups),
        )
    });
    // Eviction scratch reused across every insert in the event loop.
    let mut evicted_scratch: Vec<DocId> = Vec::new();

    // Placement policies, one instance per group. `None` for the
    // single-holder baseline: the historical copy flow (replicate on
    // peer hit, cache at the requester on origin fetch) is hard-coded
    // below, so the baseline pays no candidate assembly and stays
    // bit-identical to builds that predate placement support. Placement
    // is an in-group mechanism — candidates only ever span one group —
    // so per-group state (rate estimators, RNG decision counters) keeps
    // one group's traffic from steering another's replicas and makes
    // each group's decision stream a pure function of that group's
    // events (the property sharded replay relies on).
    let mut placements: Option<Vec<Box<dyn PlacementPolicy>>> =
        (!config.placement.is_single_holder()).then(|| {
            (0..groups.group_count())
                .map(|g| {
                    config
                        .placement
                        .build(groups.groups()[g].len(), catalog.len())
                })
                .collect()
        });
    // Candidate scratch reused across every placement decision.
    let mut candidates_scratch: Vec<Candidate> = Vec::new();
    let mut place_decisions = 0u64;

    // Observability tallies. Plain integer bumps are cheap enough to
    // keep unconditional; they are flushed into `obs` (when present)
    // after the loop. The queue only drains, so its high-water mark is
    // the initial event count.
    let queue_max_depth = queue.len();
    let mut group_outcomes = vec![[0u64; 3]; groups.group_count()];
    let mut obs_failovers = 0u64;
    let mut holder_group_checks = 0u64;
    let mut holder_ruled_out = 0u64;
    let mut holder_bit_tests = 0u64;
    let mut last_event_ms = 0.0f64;

    let freshness = config.freshness;
    while let Some((now, event)) = queue.pop() {
        last_event_ms = now.as_ms();
        match event {
            Event::Fault { idx } => {
                if let Some(o) = obs.as_deref_mut() {
                    let (kind, field) = match schedule.events()[idx].kind {
                        FaultKind::CacheDown { cache } => {
                            ("cache_down", ("cache", cache.index().into()))
                        }
                        FaultKind::CacheUp { cache } => {
                            ("cache_up", ("cache", cache.index().into()))
                        }
                        FaultKind::CacheRetire { cache } => {
                            ("cache_retire", ("cache", cache.index().into()))
                        }
                        FaultKind::BrownoutStart { factor } => {
                            ("brownout_start", ("factor", factor.into()))
                        }
                        FaultKind::BrownoutEnd => ("brownout_end", ("factor", 1.0f64.into())),
                    };
                    o.metrics.inc("sim.fault_events");
                    o.trace.push(now.as_ms(), "sim", kind, vec![field]);
                }
                match schedule.events()[idx].kind {
                    FaultKind::CacheDown { cache } => {
                        let c = cache.index();
                        if !down[c] {
                            down[c] = true;
                            deg_groups[groups.group_of(cache)].crashes += 1;
                            let old = std::mem::replace(
                                &mut caches[c],
                                DocumentCache::new(config.cache_capacity_bytes, config.policy),
                            );
                            lost_stats += old.stats();
                            if let Some((idx, _)) = index.as_mut() {
                                idx.clear_cache(cache);
                            }
                        }
                    }
                    FaultKind::CacheUp { cache } => {
                        let c = cache.index();
                        if down[c] && !retired[c] {
                            // Cold restart: contents were purged at the
                            // crash, so the cache rejoins empty.
                            down[c] = false;
                            deg_groups[groups.group_of(cache)].recoveries += 1;
                        }
                    }
                    FaultKind::CacheRetire { cache } => {
                        let c = cache.index();
                        if !retired[c] {
                            retired[c] = true;
                            deg_groups[groups.group_of(cache)].retirements += 1;
                            if !down[c] {
                                down[c] = true;
                                let old = std::mem::replace(
                                    &mut caches[c],
                                    DocumentCache::new(config.cache_capacity_bytes, config.policy),
                                );
                                lost_stats += old.stats();
                                if let Some((idx, _)) = index.as_mut() {
                                    idx.clear_cache(cache);
                                }
                            }
                        }
                    }
                    FaultKind::BrownoutStart { factor } => brownout = factor,
                    FaultKind::BrownoutEnd => brownout = 1.0,
                }
            }
            Event::OriginUpdate { doc } => {
                origin.apply_update(doc);
                if freshness == FreshnessProtocol::OriginMulticast {
                    // Idealized push invalidation: drop every copy now;
                    // one control message per holding cache.
                    for (c, cache) in caches.iter_mut().enumerate() {
                        if cache.remove(doc).is_some() {
                            metrics.invalidations_sent += 1;
                            if let Some((idx, _)) = index.as_mut() {
                                idx.clear(doc, CacheId(c));
                            }
                        }
                    }
                }
            }
            Event::ClientRequest { cache, doc } => {
                let now_ms = now.as_ms();
                let current_version = origin.version(doc);
                let size = catalog.document(doc).size_bytes;
                let update_rate = catalog.document(doc).update_rate_per_sec;

                // A request is "degraded" when its group is not whole —
                // some member (including the home cache) down or retired
                // — or an origin brownout is active.
                let group_degraded = brownout > 1.0
                    || down[cache.index()]
                    || groups.peers(cache).iter().any(|p| down[p.index()]);

                if down[cache.index()] {
                    // Home cache is dead: the client times out on it and
                    // fails over straight to the origin. Nothing is
                    // cached.
                    let _ = origin.serve_fetch(doc);
                    metrics.origin_bytes += size;
                    let rtt_origin = network.cache_to_origin(cache);
                    let latency = schedule.failover_penalty()
                        + model.origin_fetch(rtt_origin, size) * brownout;
                    obs_failovers += 1;
                    if now >= warmup {
                        metrics.record(cache, latency, ServedBy::Origin);
                        let deg = &mut deg_groups[groups.group_of(cache)];
                        deg.failovers += 1;
                        deg.record(now_ms, latency, false, false, true);
                    }
                    continue;
                }

                // Local lookup: Some(served version) on a hit. A stale
                // or expired copy is dropped by the lookup itself, so
                // the holder index sheds the bit alongside it.
                let local_hit: Option<u64> = match freshness {
                    FreshnessProtocol::InvalidateOnAccess | FreshnessProtocol::OriginMulticast => {
                        match caches[cache.index()].lookup(doc, current_version, now_ms) {
                            LookupOutcome::Hit => Some(current_version),
                            LookupOutcome::Stale => {
                                if let Some((idx, _)) = index.as_mut() {
                                    idx.clear(doc, cache);
                                }
                                None
                            }
                            LookupOutcome::Miss => None,
                        }
                    }
                    FreshnessProtocol::TtlLease { ttl_ms } => {
                        let served = caches[cache.index()].lookup_ttl(doc, now_ms, ttl_ms);
                        if served.is_none() {
                            // Either absent or just dropped as expired;
                            // clearing an unset bit is a no-op.
                            if let Some((idx, _)) = index.as_mut() {
                                idx.clear(doc, cache);
                            }
                        }
                        served
                    }
                };

                if local_hit.is_some() {
                    if let Some(policies) = placements.as_mut() {
                        // Pure popularity signal for the rate estimator.
                        policies[groups.group_of(cache)].on_local_hit(doc, now_ms);
                    }
                }

                let (latency, served_by, served_version) = match local_hit {
                    Some(v) => (model.local_hit(), ServedBy::Local, v),
                    None => {
                        let peers = groups.peers(cache);
                        // Down peers never get queried: the failure
                        // detector has already dropped them from the
                        // membership view, so the group degrades to the
                        // survivors.
                        let alive = peers.iter().filter(|p| !down[p.index()]).count();
                        deg_groups[groups.group_of(cache)].peer_queries_skipped +=
                            (peers.len() - alive) as u64;
                        // One query out and one reply back per peer; the
                        // fan-out itself costs per-member processing time.
                        metrics.control_messages += 2 * alive as u64;
                        let fanout = model.query_fanout(alive);

                        // Nearest peer holding a servable copy, if any.
                        // With the holder index, a few word
                        // intersections rule a holder-free group out up
                        // front, and a bit test replaces the per-peer
                        // cache-map probe; peers are still visited in
                        // group order so an equal-RTT tie picks the same
                        // holder as the full scan.
                        let group_may_hold = match &index {
                            Some((idx, masks)) => {
                                holder_group_checks += 1;
                                let may = idx.any_intersecting(doc, masks.mask(cache));
                                holder_ruled_out += u64::from(!may);
                                may
                            }
                            None => true,
                        };
                        let mut holder: Option<(CacheId, f64, u64)> = None;
                        let mut slowest_reply = 0.0f64;
                        for &p in peers {
                            if down[p.index()] {
                                continue;
                            }
                            let rtt = network.cache_to_cache(cache, p);
                            slowest_reply = slowest_reply.max(rtt);
                            if !group_may_hold {
                                continue;
                            }
                            if let Some((idx, _)) = &index {
                                holder_bit_tests += 1;
                                if !idx.holds(doc, p) {
                                    continue;
                                }
                            }
                            let peer_version = match freshness {
                                FreshnessProtocol::InvalidateOnAccess
                                | FreshnessProtocol::OriginMulticast => caches[p.index()]
                                    .holds_fresh(doc, current_version)
                                    .then_some(current_version),
                                FreshnessProtocol::TtlLease { ttl_ms } => {
                                    caches[p.index()].holds_unexpired(doc, now_ms, ttl_ms)
                                }
                            };
                            if let Some(v) = peer_version {
                                if holder.is_none_or(|(_, best, _)| rtt < best) {
                                    holder = Some((p, rtt, v));
                                }
                            }
                        }

                        match holder {
                            Some((peer, rtt, v)) => {
                                caches[peer.index()].note_peer_serve(doc, v, now_ms);
                                metrics.peer_bytes += size;
                                // Hit reply piggybacks the body: fan-out
                                // plus one RTT plus serialization.
                                let latency = fanout + model.transfer(rtt, size);
                                // Single-holder keeps the historical
                                // demand replication unconditionally;
                                // an active policy decides whether the
                                // requester keeps the copy.
                                let mut keep_replica = true;
                                if let Some(policies) = placements.as_mut() {
                                    let policy = &mut policies[groups.group_of(cache)];
                                    build_candidates(
                                        &mut candidates_scratch,
                                        network,
                                        &caches,
                                        index.as_ref().map(|(idx, _)| idx),
                                        &down,
                                        cache,
                                        peers,
                                        doc,
                                    );
                                    place_decisions += 1;
                                    if let Some(o) = obs.as_deref_mut() {
                                        o.metrics.observe(
                                            "place.replica_count",
                                            candidates_scratch.iter().filter(|c| c.holds).count()
                                                as f64,
                                        );
                                    }
                                    match policy.on_peer_hit(doc, now_ms, &candidates_scratch, peer)
                                    {
                                        PeerHitAction::Replicate => {
                                            metrics.replicas_created += 1;
                                        }
                                        PeerHitAction::ServeRemote => {
                                            keep_replica = false;
                                            metrics.replicas_suppressed += 1;
                                        }
                                    }
                                }
                                if keep_replica {
                                    insert_tracked(
                                        &mut caches[cache.index()],
                                        index.as_mut().map(|(idx, _)| idx),
                                        &mut evicted_scratch,
                                        cache,
                                        doc,
                                        v,
                                        size,
                                        latency,
                                        update_rate,
                                        now_ms,
                                    );
                                }
                                (latency, ServedBy::Peer, v)
                            }
                            None => {
                                let fetched_version = origin.serve_fetch(doc);
                                metrics.origin_bytes += size;
                                let rtt_origin = network.cache_to_origin(cache);
                                let latency = fanout
                                    + slowest_reply
                                    + model.origin_fetch(rtt_origin, size) * brownout;
                                // Single-holder caches at the requester;
                                // an active policy may divert the new
                                // copy to a better-placed member (the
                                // requester still serves the client).
                                let mut target = cache;
                                if let Some(policies) = placements.as_mut() {
                                    let policy = &mut policies[groups.group_of(cache)];
                                    build_candidates(
                                        &mut candidates_scratch,
                                        network,
                                        &caches,
                                        index.as_ref().map(|(idx, _)| idx),
                                        &down,
                                        cache,
                                        peers,
                                        doc,
                                    );
                                    place_decisions += 1;
                                    if let Some(o) = obs.as_deref_mut() {
                                        o.metrics.observe(
                                            "place.replica_count",
                                            candidates_scratch.iter().filter(|c| c.holds).count()
                                                as f64,
                                        );
                                    }
                                    target =
                                        policy.on_origin_fetch(doc, now_ms, &candidates_scratch);
                                    if target != cache {
                                        // Off-path push of the body to
                                        // the chosen member: cooperation
                                        // traffic plus one transfer
                                        // message (no reply awaited, so
                                        // the client latency is
                                        // unchanged).
                                        metrics.remote_placements += 1;
                                        metrics.peer_bytes += size;
                                        metrics.control_messages += 1;
                                    }
                                }
                                insert_tracked(
                                    &mut caches[target.index()],
                                    index.as_mut().map(|(idx, _)| idx),
                                    &mut evicted_scratch,
                                    target,
                                    doc,
                                    fetched_version,
                                    size,
                                    latency,
                                    update_rate,
                                    now_ms,
                                );
                                (latency, ServedBy::Origin, fetched_version)
                            }
                        }
                    }
                };
                let outcome_slot = match served_by {
                    ServedBy::Local => 0,
                    ServedBy::Peer => 1,
                    ServedBy::Origin => 2,
                };
                group_outcomes[groups.group_of(cache)][outcome_slot] += 1;
                if now >= warmup {
                    let stale = served_version < current_version;
                    metrics.record(cache, latency, served_by);
                    if stale {
                        metrics.stale_served += 1;
                    }
                    deg_groups[groups.group_of(cache)].record(
                        now_ms,
                        latency,
                        served_by != ServedBy::Origin,
                        stale,
                        group_degraded,
                    );
                }
            }
        }
    }

    // Fold the per-group degradation recorders in group order. The same
    // fold over per-shard recorders reproduces these sums bit for bit.
    for deg in &deg_groups {
        metrics.degradation.merge_from(deg);
    }

    if cfg!(debug_assertions) {
        if let Some((idx, _)) = &index {
            // The index must mirror cache membership exactly at all
            // times; check the final state in debug builds.
            for (c, cache) in caches.iter().enumerate() {
                for d in 0..catalog.len() {
                    // Any cached copy has version >= 0, so this is a
                    // pure presence test.
                    debug_assert_eq!(
                        idx.holds(DocId(d), CacheId(c)),
                        cache.holds_fresh(DocId(d), 0),
                        "holder index out of sync for doc {d} at cache {c}"
                    );
                }
            }
        }
    }

    if let Some(o) = obs {
        let mut totals = [0u64; 3];
        for (g, counts) in group_outcomes.iter().enumerate() {
            for (slot, name) in ["local_hits", "peer_hits", "coop_misses"]
                .iter()
                .enumerate()
            {
                o.metrics
                    .add(&format!("sim.group.{g:03}.{name}"), counts[slot]);
                totals[slot] += counts[slot];
            }
        }
        o.metrics.add("sim.local_hits", totals[0]);
        o.metrics.add("sim.peer_hits", totals[1]);
        o.metrics.add("sim.coop_misses", totals[2]);
        o.metrics.add("sim.failovers", obs_failovers);
        o.metrics
            .add("sim.control_messages", metrics.control_messages);
        o.metrics.add("sim.stale_served", metrics.stale_served);
        o.metrics
            .add("sim.holder.group_checks", holder_group_checks);
        o.metrics.add("sim.holder.ruled_out", holder_ruled_out);
        o.metrics.add("sim.holder.bit_tests", holder_bit_tests);
        o.metrics
            .max_gauge("sim.queue.max_depth", queue_max_depth as f64);
        o.metrics
            .merge_histogram("sim.latency_ms", metrics.latency_histogram());
        if placements.is_some() {
            o.metrics.add("place.decisions", place_decisions);
            o.metrics
                .add("place.replicas_created", metrics.replicas_created);
            o.metrics
                .add("place.replicas_suppressed", metrics.replicas_suppressed);
            o.metrics
                .add("place.remote_placements", metrics.remote_placements);
        }
        let mut span = o.phases.span("sim");
        span.add_work(last_event_ms);
        if placements.is_some() {
            let mut place_span = span.child("place");
            place_span.add_work(place_decisions as f64);
        }
    }

    let cache_stats = caches
        .iter()
        .map(|c| c.stats())
        .fold(lost_stats, |acc, s| acc + s);
    Ok(SimReport {
        metrics,
        cache_stats,
        origin_updates: origin.updates_applied(),
        origin_fetches: origin.fetches_served(),
    })
}

/// Assembles the candidate list a placement decision sees: the
/// requester first (RTT 0), then its *alive* group peers in group
/// order. `holds` is presence (fresh or stale) — read from the holder
/// index when one is maintained, and from the cache maps under
/// [`PeerLookup::ScanAll`]; the index mirrors cache membership exactly,
/// so both lookup strategies feed policies identical candidate lists.
#[allow(clippy::too_many_arguments)]
fn build_candidates(
    out: &mut Vec<Candidate>,
    network: &EdgeNetwork,
    caches: &[DocumentCache],
    index: Option<&HolderIndex>,
    down: &[bool],
    cache: CacheId,
    peers: &[CacheId],
    doc: DocId,
) {
    out.clear();
    let holds = |c: CacheId| match index {
        Some(idx) => idx.holds(doc, c),
        None => caches[c.index()].contains(doc),
    };
    out.push(Candidate {
        cache,
        rtt_ms: 0.0,
        used_bytes: caches[cache.index()].used_bytes(),
        holds: holds(cache),
    });
    for &p in peers {
        if down[p.index()] {
            continue;
        }
        out.push(Candidate {
            cache: p,
            rtt_ms: network.cache_to_cache(cache, p),
            used_bytes: caches[p.index()].used_bytes(),
            holds: holds(p),
        });
    }
}

/// Inserts a fetched copy into `cache_store`, keeping the holder index
/// (when one is maintained) in sync with the insert and any policy
/// evictions it triggers. `evicted` is caller-owned scratch reused
/// across the whole event loop.
#[allow(clippy::too_many_arguments)]
fn insert_tracked(
    cache_store: &mut DocumentCache,
    index: Option<&mut HolderIndex>,
    evicted: &mut Vec<DocId>,
    home: CacheId,
    doc: DocId,
    version: u64,
    size_bytes: u64,
    fetch_cost_ms: f64,
    update_rate_per_sec: f64,
    now_ms: f64,
) {
    match index {
        None => cache_store.insert(
            doc,
            version,
            size_bytes,
            fetch_cost_ms,
            update_rate_per_sec,
            now_ms,
        ),
        Some(idx) => {
            let cached = cache_store.insert_with_evicted(
                doc,
                version,
                size_bytes,
                fetch_cost_ms,
                update_rate_per_sec,
                now_ms,
                evicted,
            );
            for &victim in evicted.iter() {
                idx.clear(victim, home);
            }
            if cached {
                idx.set(doc, home);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_topology::fixtures::paper_figure1;
    use ecg_workload::{merge_streams, CatalogConfig, DocId, Request, Update};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn network() -> EdgeNetwork {
        EdgeNetwork::from_rtt_matrix(paper_figure1())
    }

    fn catalog(n: usize) -> DocumentCatalog {
        CatalogConfig::default()
            .documents(n)
            .dynamic_fraction(0.0)
            .generate(&mut StdRng::seed_from_u64(0))
    }

    fn request(time_ms: f64, cache: usize, doc: usize) -> TraceEvent {
        TraceEvent::Request(Request {
            time_ms,
            cache,
            doc: DocId(doc),
        })
    }

    fn update(time_ms: f64, doc: usize) -> TraceEvent {
        TraceEvent::Update(Update {
            time_ms,
            doc: DocId(doc),
        })
    }

    #[test]
    fn first_request_misses_second_hits() {
        let net = network();
        let cat = catalog(10);
        let trace = vec![request(0.0, 0, 3), request(100.0, 0, 3)];
        let report = simulate(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &trace,
            SimConfig::default(),
        )
        .unwrap();
        let agg = report.metrics.per_cache()[0];
        assert_eq!(agg.requests, 2);
        assert_eq!(agg.origin_fetches, 1);
        assert_eq!(agg.local_hits, 1);
        assert_eq!(report.origin_fetches, 1);
    }

    #[test]
    fn group_peer_serves_second_cache() {
        let net = network();
        let cat = catalog(10);
        // Ec0 fetches doc 3 from the origin; Ec1 (same group) then gets
        // it from Ec0 instead of the origin.
        let groups = GroupMap::new(
            6,
            vec![
                vec![CacheId(0), CacheId(1)],
                vec![CacheId(2), CacheId(3)],
                vec![CacheId(4), CacheId(5)],
            ],
        )
        .unwrap();
        let trace = vec![request(0.0, 0, 3), request(100.0, 1, 3)];
        let report = simulate(&net, &groups, &cat, &trace, SimConfig::default()).unwrap();
        assert_eq!(report.metrics.per_cache()[1].peer_hits, 1);
        assert_eq!(report.origin_fetches, 1);
        assert!(report.metrics.peer_bytes > 0);
        // Two control messages for Ec0's miss (1 peer), two for Ec1's.
        assert_eq!(report.metrics.control_messages, 4);
    }

    #[test]
    fn peer_hit_is_faster_than_origin_for_nearby_peer() {
        // Ec0–Ec1 RTT is 4ms while Ec0–origin is 12ms, so a peer hit at
        // Ec1 must beat an origin fetch.
        let net = network();
        let cat = catalog(10);
        let groups = GroupMap::new(
            6,
            vec![
                vec![CacheId(0), CacheId(1)],
                vec![CacheId(2), CacheId(3)],
                vec![CacheId(4), CacheId(5)],
            ],
        )
        .unwrap();
        let trace_peer = vec![request(0.0, 1, 3), request(100.0, 0, 3)];
        let report = simulate(&net, &groups, &cat, &trace_peer, SimConfig::default()).unwrap();
        let peer_latency = report.metrics.per_cache()[0].latency_sum_ms;

        let trace_alone = vec![request(0.0, 0, 3)];
        let report2 = simulate(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &trace_alone,
            SimConfig::default(),
        )
        .unwrap();
        let origin_latency = report2.metrics.per_cache()[0].latency_sum_ms;
        assert!(
            peer_latency < origin_latency,
            "peer {peer_latency} vs origin {origin_latency}"
        );
    }

    #[test]
    fn update_invalidates_cached_copy() {
        let net = network();
        let cat = catalog(10);
        let trace = vec![request(0.0, 0, 2), update(50.0, 2), request(100.0, 0, 2)];
        let report = simulate(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &trace,
            SimConfig::default(),
        )
        .unwrap();
        // Both requests had to hit the origin: the second found a stale
        // copy.
        assert_eq!(report.origin_fetches, 2);
        assert_eq!(report.origin_updates, 1);
        assert_eq!(report.cache_stats.stale_hits, 1);
    }

    #[test]
    fn group_wide_miss_pays_slowest_peer_wait() {
        let net = network();
        let cat = catalog(10);
        // Ec0 in a group with the far Ec2 (17ms) and near Ec1 (4ms):
        // a full miss waits for the slowest reply (17ms) on top of the
        // origin fetch.
        let groups = GroupMap::new(
            6,
            vec![
                vec![CacheId(0), CacheId(1), CacheId(2)],
                vec![CacheId(3), CacheId(4), CacheId(5)],
            ],
        )
        .unwrap();
        let trace = vec![request(0.0, 0, 5)];
        let report = simulate(&net, &groups, &cat, &trace, SimConfig::default()).unwrap();
        let solo = simulate(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &trace,
            SimConfig::default(),
        )
        .unwrap();
        let grouped_latency = report.metrics.per_cache()[0].latency_sum_ms;
        let solo_latency = solo.metrics.per_cache()[0].latency_sum_ms;
        // Extra cost = slowest negative reply (17 ms) + 2-peer fan-out.
        let fanout = SimConfig::default().latency_model().query_fanout(2);
        assert!((grouped_latency - solo_latency - 17.0 - fanout).abs() < 1e-6);
    }

    #[test]
    fn warmup_excludes_early_requests_from_metrics() {
        let net = network();
        let cat = catalog(10);
        let trace = vec![request(0.0, 0, 1), request(2_000.0, 0, 1)];
        let report = simulate(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &trace,
            SimConfig::default().warmup_ms(1_000.0),
        )
        .unwrap();
        // Only the second request is recorded — and it hits.
        assert_eq!(report.metrics.total_requests(), 1);
        assert_eq!(report.metrics.per_cache()[0].local_hits, 1);
        // But the cache stats still saw both.
        assert_eq!(report.cache_stats.lookups, 2);
    }

    #[test]
    fn mismatched_groups_are_rejected() {
        let net = network();
        let cat = catalog(5);
        let err = simulate(
            &net,
            &GroupMap::singletons(4),
            &cat,
            &[],
            SimConfig::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::CacheCountMismatch {
                network: 6,
                groups: 4
            }
        );
    }

    #[test]
    fn bad_trace_references_are_rejected() {
        let net = network();
        let cat = catalog(5);
        let groups = GroupMap::singletons(6);
        let err = simulate(
            &net,
            &groups,
            &cat,
            &[request(0.0, 9, 0)],
            SimConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, SimError::RequestCacheOutOfRange { cache: 9 });
        let err = simulate(
            &net,
            &groups,
            &cat,
            &[request(0.0, 0, 99)],
            SimConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, SimError::DocOutOfRange { doc: 99 });
        let err = simulate(
            &net,
            &groups,
            &cat,
            &[update(0.0, 99)],
            SimConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, SimError::DocOutOfRange { doc: 99 });
    }

    #[test]
    fn cooperation_beats_isolation_on_shared_workload() {
        // Dynamic content, shared interest, tight pair groups: after an
        // origin update, the first group member refreshes from the
        // origin and the rest pick the fresh copy up from it — the
        // collaborative-freshness benefit that makes cooperation pay for
        // dynamic content delivery.
        let mut rng = StdRng::seed_from_u64(42);
        let cat = CatalogConfig::default()
            .documents(50)
            .dynamic_fraction(1.0)
            .dynamic_update_rate_per_sec(0.01)
            .generate(&mut rng);
        let net = network();
        let requests = ecg_workload::RequestConfig::default()
            .rate_per_sec_per_cache(5.0)
            .similarity(1.0)
            .generate(&cat, 6, 600_000.0, &mut rng);
        let updates = ecg_workload::generate_updates(&cat, 600_000.0, &mut rng);
        let trace = merge_streams(&requests, &updates);
        let config = SimConfig::default()
            .cache_capacity_bytes(1 << 22)
            .latency(crate::latency::LatencyModel::default().bandwidth_mbps(100.0));

        let paired = GroupMap::new(
            6,
            vec![
                vec![CacheId(0), CacheId(1)],
                vec![CacheId(2), CacheId(3)],
                vec![CacheId(4), CacheId(5)],
            ],
        )
        .unwrap();
        let grouped = simulate(&net, &paired, &cat, &trace, config).unwrap();
        let solo = simulate(&net, &GroupMap::singletons(6), &cat, &trace, config).unwrap();
        assert!(
            grouped.average_latency_ms() < solo.average_latency_ms(),
            "grouped {} vs solo {}",
            grouped.average_latency_ms(),
            solo.average_latency_ms()
        );
        assert!(grouped.origin_fetches < solo.origin_fetches);
    }

    #[test]
    fn multicast_invalidation_prevents_stale_hits() {
        let net = network();
        let cat = catalog(10);
        let trace = vec![request(0.0, 0, 2), update(50.0, 2), request(100.0, 0, 2)];
        let report = simulate(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &trace,
            SimConfig::default().freshness(FreshnessProtocol::OriginMulticast),
        )
        .unwrap();
        // The update pushed the copy out: no stale hit, a clean miss.
        assert_eq!(report.cache_stats.stale_hits, 0);
        assert_eq!(report.cache_stats.misses, 2);
        assert_eq!(report.origin_fetches, 2);
        assert_eq!(report.metrics.invalidations_sent, 1);
        assert_eq!(report.metrics.stale_served, 0);
    }

    #[test]
    fn ttl_lease_serves_stale_within_lease() {
        let net = network();
        let cat = catalog(10);
        let trace = vec![
            request(0.0, 0, 2),
            update(50.0, 2),
            request(100.0, 0, 2),   // within lease: stale serve
            request(2_000.0, 0, 2), // past lease: refetch
        ];
        let report = simulate(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &trace,
            SimConfig::default().freshness(FreshnessProtocol::TtlLease { ttl_ms: 1_000.0 }),
        )
        .unwrap();
        assert_eq!(report.metrics.stale_served, 1);
        assert_eq!(report.origin_fetches, 2);
        let agg = report.metrics.per_cache()[0];
        assert_eq!(agg.local_hits, 1);
    }

    #[test]
    fn ttl_lease_peer_serves_unexpired_copy() {
        let net = network();
        let cat = catalog(10);
        let groups = GroupMap::new(
            6,
            vec![
                vec![CacheId(0), CacheId(1)],
                vec![CacheId(2), CacheId(3)],
                vec![CacheId(4), CacheId(5)],
            ],
        )
        .unwrap();
        let trace = vec![
            request(0.0, 0, 3),
            update(10.0, 3),
            // Ec1 misses locally; Ec0 has an unexpired (stale) copy.
            request(100.0, 1, 3),
        ];
        let report = simulate(
            &net,
            &groups,
            &cat,
            &trace,
            SimConfig::default().freshness(FreshnessProtocol::TtlLease { ttl_ms: 5_000.0 }),
        )
        .unwrap();
        assert_eq!(report.metrics.per_cache()[1].peer_hits, 1);
        assert_eq!(report.metrics.stale_served, 1);
        assert_eq!(report.origin_fetches, 1);
    }

    #[test]
    fn protocols_trade_staleness_for_origin_load() {
        // Update-heavy shared workload: multicast minimizes staleness,
        // the TTL lease minimizes origin fetches, invalidate-on-access
        // sits between.
        let net = network();
        let mut rng = StdRng::seed_from_u64(77);
        let cat = CatalogConfig::default()
            .documents(30)
            .dynamic_fraction(1.0)
            .dynamic_update_rate_per_sec(0.05)
            .generate(&mut rng);
        let requests = ecg_workload::RequestConfig::default()
            .rate_per_sec_per_cache(4.0)
            .similarity(1.0)
            .generate(&cat, 6, 200_000.0, &mut rng);
        let updates = ecg_workload::generate_updates(&cat, 200_000.0, &mut rng);
        let trace = merge_streams(&requests, &updates);
        let groups = GroupMap::one_group(6);

        let run = |freshness: FreshnessProtocol| {
            simulate(
                &net,
                &groups,
                &cat,
                &trace,
                SimConfig::default().freshness(freshness),
            )
            .unwrap()
        };
        let lazy = run(FreshnessProtocol::InvalidateOnAccess);
        let push = run(FreshnessProtocol::OriginMulticast);
        let lease = run(FreshnessProtocol::TtlLease { ttl_ms: 60_000.0 });

        assert_eq!(lazy.metrics.stale_served, 0);
        assert_eq!(push.metrics.stale_served, 0);
        assert!(
            lease.metrics.stale_served > 0,
            "lease must serve stale data"
        );
        assert!(
            lease.origin_fetches < lazy.origin_fetches,
            "lease {} vs lazy {}",
            lease.origin_fetches,
            lazy.origin_fetches
        );
        assert!(push.metrics.invalidations_sent > 0);
        assert_eq!(lazy.metrics.invalidations_sent, 0);
    }

    #[test]
    fn deterministic_replay() {
        let net = network();
        let cat = catalog(20);
        let mut rng = StdRng::seed_from_u64(9);
        let requests = ecg_workload::RequestConfig::default().generate(&cat, 6, 30_000.0, &mut rng);
        let updates = ecg_workload::generate_updates(&cat, 30_000.0, &mut rng);
        let trace = merge_streams(&requests, &updates);
        let groups = GroupMap::one_group(6);
        let a = simulate(&net, &groups, &cat, &trace, SimConfig::default()).unwrap();
        let b = simulate(&net, &groups, &cat, &trace, SimConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    fn pair_groups() -> GroupMap {
        GroupMap::new(
            6,
            vec![
                vec![CacheId(0), CacheId(1)],
                vec![CacheId(2), CacheId(3)],
                vec![CacheId(4), CacheId(5)],
            ],
        )
        .unwrap()
    }

    /// A shared update-heavy workload with tiny caches: plenty of peer
    /// hits, policy evictions, and stale drops to stress the holder
    /// index against the full scan.
    fn churny_trace(seed: u64, horizon_ms: f64) -> (DocumentCatalog, Vec<TraceEvent>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cat = CatalogConfig::default()
            .documents(60)
            .dynamic_fraction(0.8)
            .dynamic_update_rate_per_sec(0.05)
            .generate(&mut rng);
        let requests = ecg_workload::RequestConfig::default()
            .rate_per_sec_per_cache(5.0)
            .similarity(1.0)
            .generate(&cat, 6, horizon_ms, &mut rng);
        let updates = ecg_workload::generate_updates(&cat, horizon_ms, &mut rng);
        (cat, merge_streams(&requests, &updates))
    }

    #[test]
    fn holder_index_matches_scan_for_every_protocol() {
        let net = network();
        let (cat, trace) = churny_trace(11, 120_000.0);
        for groups in [GroupMap::one_group(6), pair_groups()] {
            for freshness in [
                FreshnessProtocol::InvalidateOnAccess,
                FreshnessProtocol::OriginMulticast,
                FreshnessProtocol::TtlLease { ttl_ms: 20_000.0 },
            ] {
                // Small caches force constant evictions.
                let base = SimConfig::default()
                    .cache_capacity_bytes(64 << 10)
                    .freshness(freshness);
                let scanned = simulate(
                    &net,
                    &groups,
                    &cat,
                    &trace,
                    base.peer_lookup(PeerLookup::ScanAll),
                )
                .unwrap();
                let indexed = simulate(
                    &net,
                    &groups,
                    &cat,
                    &trace,
                    base.peer_lookup(PeerLookup::HolderIndex),
                )
                .unwrap();
                assert_eq!(scanned, indexed, "diverged under {freshness:?}");
            }
        }
    }

    #[test]
    fn holder_index_matches_scan_under_faults() {
        let net = network();
        let (cat, trace) = churny_trace(13, 120_000.0);
        let mut schedule = FaultSchedule::new().failover_penalty_ms(20.0);
        schedule.push(10_000.0, FaultKind::CacheDown { cache: CacheId(2) });
        schedule.push(30_000.0, FaultKind::CacheUp { cache: CacheId(2) });
        schedule.push(40_000.0, FaultKind::CacheRetire { cache: CacheId(5) });
        schedule.push(60_000.0, FaultKind::BrownoutStart { factor: 2.5 });
        schedule.push(80_000.0, FaultKind::BrownoutEnd);
        let groups = GroupMap::one_group(6);
        let base = SimConfig::default().cache_capacity_bytes(64 << 10);
        let scanned = simulate_with_faults(
            &net,
            &groups,
            &cat,
            &trace,
            base.peer_lookup(PeerLookup::ScanAll),
            &schedule,
        )
        .unwrap();
        let indexed = simulate_with_faults(
            &net,
            &groups,
            &cat,
            &trace,
            base.peer_lookup(PeerLookup::HolderIndex),
            &schedule,
        )
        .unwrap();
        assert_eq!(scanned, indexed);
        // The fault machinery was actually exercised.
        assert!(indexed.metrics.degradation.saw_faults());
        assert!(indexed.metrics.degradation.failovers > 0);
        assert!(indexed.cache_stats.evictions > 0);
    }

    #[test]
    fn empty_schedule_reproduces_simulate_exactly() {
        let net = network();
        let cat = catalog(20);
        let mut rng = StdRng::seed_from_u64(5);
        let requests = ecg_workload::RequestConfig::default().generate(&cat, 6, 30_000.0, &mut rng);
        let updates = ecg_workload::generate_updates(&cat, 30_000.0, &mut rng);
        let trace = merge_streams(&requests, &updates);
        let groups = pair_groups();
        let base = simulate(&net, &groups, &cat, &trace, SimConfig::default()).unwrap();
        let faulted = simulate_with_faults(
            &net,
            &groups,
            &cat,
            &trace,
            SimConfig::default(),
            &FaultSchedule::new(),
        )
        .unwrap();
        assert_eq!(base, faulted);
        assert!(!base.metrics.degradation.saw_faults());
        assert_eq!(base.metrics.degradation.degraded.requests, 0);
    }

    #[test]
    fn down_cache_fails_over_to_origin() {
        let net = network();
        let cat = catalog(10);
        let mut schedule = FaultSchedule::new().failover_penalty_ms(25.0);
        schedule.push(50.0, FaultKind::CacheDown { cache: CacheId(0) });
        // Prime the cache, crash it, then request again: the second
        // request must go to the origin even though the doc was cached.
        let trace = vec![request(0.0, 0, 3), request(100.0, 0, 3)];
        let report = simulate_with_faults(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &trace,
            SimConfig::default(),
            &schedule,
        )
        .unwrap();
        assert_eq!(report.origin_fetches, 2);
        assert_eq!(report.metrics.degradation.failovers, 1);
        assert_eq!(report.metrics.degradation.crashes, 1);
        assert_eq!(report.metrics.degradation.degraded.requests, 1);
        assert_eq!(report.metrics.per_cache()[0].origin_fetches, 2);
        assert_eq!(report.metrics.per_cache()[0].local_hits, 0);
        // The failover paid the detection penalty on top of the fetch.
        let healthy_fetch = report.metrics.degradation.healthy.latency_sum_ms;
        let failover = report.metrics.degradation.degraded.latency_sum_ms;
        assert!((failover - healthy_fetch - 25.0).abs() < 1e-9);
    }

    #[test]
    fn crash_purges_contents_and_recovery_is_cold() {
        let net = network();
        let cat = catalog(10);
        let mut schedule = FaultSchedule::new();
        schedule.push(50.0, FaultKind::CacheDown { cache: CacheId(0) });
        schedule.push(60.0, FaultKind::CacheUp { cache: CacheId(0) });
        let trace = vec![request(0.0, 0, 3), request(100.0, 0, 3)];
        let report = simulate_with_faults(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &trace,
            SimConfig::default(),
            &schedule,
        )
        .unwrap();
        // Recovered in time for the second request, but cold: a second
        // origin fetch, not a hit.
        assert_eq!(report.metrics.degradation.failovers, 0);
        assert_eq!(report.metrics.degradation.recoveries, 1);
        assert_eq!(report.origin_fetches, 2);
        assert_eq!(report.metrics.per_cache()[0].local_hits, 0);
    }

    #[test]
    fn group_degrades_to_survivors() {
        let net = network();
        let cat = catalog(10);
        let mut schedule = FaultSchedule::new();
        schedule.push(50.0, FaultKind::CacheDown { cache: CacheId(0) });
        // Ec0 fetches doc 3; after Ec0 crashes, Ec1's cooperative lookup
        // cannot use it and pays the origin.
        let trace = vec![request(0.0, 0, 3), request(100.0, 1, 3)];
        let report = simulate_with_faults(
            &net,
            &pair_groups(),
            &cat,
            &trace,
            SimConfig::default(),
            &schedule,
        )
        .unwrap();
        assert_eq!(report.metrics.per_cache()[1].peer_hits, 0);
        assert_eq!(report.metrics.per_cache()[1].origin_fetches, 1);
        assert_eq!(report.origin_fetches, 2);
        assert_eq!(report.metrics.degradation.peer_queries_skipped, 1);
        // Ec1's request counts as degraded (a member of its group is
        // down) even though Ec1 itself is healthy.
        assert_eq!(report.metrics.degradation.degraded.requests, 1);
        // Without the fault the same trace is a peer hit.
        let healthy = simulate(&net, &pair_groups(), &cat, &trace, SimConfig::default()).unwrap();
        assert_eq!(healthy.metrics.per_cache()[1].peer_hits, 1);
    }

    #[test]
    fn retirement_is_permanent() {
        let net = network();
        let cat = catalog(10);
        let mut schedule = FaultSchedule::new();
        schedule.push(10.0, FaultKind::CacheRetire { cache: CacheId(0) });
        schedule.push(20.0, FaultKind::CacheUp { cache: CacheId(0) });
        let trace = vec![request(100.0, 0, 3)];
        let report = simulate_with_faults(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &trace,
            SimConfig::default(),
            &schedule,
        )
        .unwrap();
        // The CacheUp after retirement is ignored: still failing over.
        assert_eq!(report.metrics.degradation.retirements, 1);
        assert_eq!(report.metrics.degradation.recoveries, 0);
        assert_eq!(report.metrics.degradation.failovers, 1);
    }

    #[test]
    fn brownout_slows_origin_fetches() {
        let net = network();
        let cat = catalog(10);
        let mut schedule = FaultSchedule::new();
        schedule.push(0.0, FaultKind::BrownoutStart { factor: 3.0 });
        schedule.push(50.0, FaultKind::BrownoutEnd);
        let trace = vec![request(10.0, 0, 3)];
        let slow = simulate_with_faults(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &trace,
            SimConfig::default(),
            &schedule,
        )
        .unwrap();
        let fast = simulate(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &trace,
            SimConfig::default(),
        )
        .unwrap();
        let slow_ms = slow.metrics.per_cache()[0].latency_sum_ms;
        let fast_ms = fast.metrics.per_cache()[0].latency_sum_ms;
        assert!(
            (slow_ms - 3.0 * fast_ms).abs() < 1e-9,
            "{slow_ms} vs {fast_ms}"
        );
        // Brownout requests are classified as degraded.
        assert_eq!(slow.metrics.degradation.degraded.requests, 1);
        // After the window ends the penalty disappears.
        let trace_late = vec![request(100.0, 0, 3)];
        let late = simulate_with_faults(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &trace_late,
            SimConfig::default(),
            &schedule,
        )
        .unwrap();
        let late_ms = late.metrics.per_cache()[0].latency_sum_ms;
        assert!((late_ms - fast_ms).abs() < 1e-9);
        assert_eq!(late.metrics.degradation.degraded.requests, 0);
    }

    #[test]
    fn fault_timeline_tracks_outage_window() {
        let net = network();
        let cat = catalog(10);
        let mut schedule = FaultSchedule::new().timeline_bucket_ms(1_000.0);
        schedule.push(1_000.0, FaultKind::CacheDown { cache: CacheId(1) });
        schedule.push(2_000.0, FaultKind::CacheUp { cache: CacheId(1) });
        let trace = vec![
            request(500.0, 0, 1),   // healthy bucket 0
            request(1_500.0, 0, 1), // degraded bucket 1 (peer down)
            request(2_500.0, 0, 1), // healthy bucket 2
        ];
        let report = simulate_with_faults(
            &net,
            &pair_groups(),
            &cat,
            &trace,
            SimConfig::default(),
            &schedule,
        )
        .unwrap();
        let tl = report.metrics.degradation.timeline();
        assert_eq!(tl.len(), 3);
        assert_eq!(tl[0].healthy.requests, 1);
        assert_eq!(tl[0].degraded.requests, 0);
        assert_eq!(tl[1].degraded.requests, 1);
        assert_eq!(tl[2].healthy.requests, 1);
        assert_eq!(tl[2].degraded.requests, 0);
    }

    #[test]
    fn invalid_schedule_is_rejected() {
        let net = network();
        let cat = catalog(5);
        let mut schedule = FaultSchedule::new();
        schedule.push(1.0, FaultKind::CacheDown { cache: CacheId(9) });
        let err = simulate_with_faults(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &[],
            SimConfig::default(),
            &schedule,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::Fault(FaultError::CacheOutOfRange { cache: 9 })
        );
    }

    #[test]
    fn observed_run_matches_plain_and_covers_counters() {
        let net = network();
        let (cat, trace) = churny_trace(21, 60_000.0);
        let mut schedule = FaultSchedule::new();
        schedule.push(10_000.0, FaultKind::CacheDown { cache: CacheId(2) });
        schedule.push(30_000.0, FaultKind::CacheUp { cache: CacheId(2) });
        let groups = pair_groups();
        let config = SimConfig::default().cache_capacity_bytes(64 << 10);
        let plain = simulate_with_faults(&net, &groups, &cat, &trace, config, &schedule).unwrap();
        let mut obs = Obs::new();
        let observed = simulate_with_faults_observed(
            &net,
            &groups,
            &cat,
            &trace,
            config,
            &schedule,
            Some(&mut obs),
        )
        .unwrap();
        assert_eq!(plain, observed);

        // Per-group counters sum to the totals and the fault events
        // landed in the trace with their sim-time stamps.
        let m = &obs.metrics;
        for name in ["local_hits", "peer_hits", "coop_misses"] {
            let per_group: u64 = (0..groups.group_count())
                .map(|g| m.counter(&format!("sim.group.{g:03}.{name}")))
                .sum();
            assert_eq!(per_group, m.counter(&format!("sim.{name}")), "{name}");
        }
        assert!(m.counter("sim.peer_hits") > 0);
        assert!(m.counter("sim.coop_misses") > 0);
        assert_eq!(m.counter("sim.fault_events"), 2);
        assert!(m.counter("sim.holder.group_checks") > 0);
        assert_eq!(
            m.gauge("sim.queue.max_depth"),
            Some(trace.len() as f64 + 2.0)
        );
        assert!(m.histogram("sim.latency_ms").expect("latency hist").count() > 0);
        let kinds: Vec<&str> = obs.trace.events().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["cache_down", "cache_up"]);
        assert_eq!(obs.phases.roots()[0].name(), "sim");
    }

    #[test]
    fn explicit_single_holder_matches_default_exactly() {
        let net = network();
        let (cat, trace) = churny_trace(31, 120_000.0);
        let groups = pair_groups();
        let base = simulate(&net, &groups, &cat, &trace, SimConfig::default()).unwrap();
        let explicit = simulate(
            &net,
            &groups,
            &cat,
            &trace,
            SimConfig::default().placement(PlacementKind::SingleHolder),
        )
        .unwrap();
        assert_eq!(base, explicit);
        assert!(!base.metrics.saw_placement());
        assert_eq!(base.metrics.replicas_created, 0);
    }

    #[test]
    fn adaptive_replication_promotes_hot_documents() {
        let net = network();
        let (cat, trace) = churny_trace(33, 240_000.0);
        let groups = GroupMap::one_group(6);
        let report = simulate(
            &net,
            &groups,
            &cat,
            &trace,
            SimConfig::default()
                .cache_capacity_bytes(256 << 10)
                .placement(PlacementKind::adaptive()),
        )
        .unwrap();
        // The Zipf head crosses the promote threshold (replicas kept)
        // while the tail stays single-copy (replicas suppressed).
        assert!(report.metrics.replicas_created > 0, "{report}");
        assert!(report.metrics.replicas_suppressed > 0, "{report}");
        assert!(report.to_string().contains("replicas"), "{report}");
    }

    #[test]
    fn dchoices_diverts_placements_and_replays_identically() {
        let net = network();
        let (cat, trace) = churny_trace(35, 240_000.0);
        let groups = GroupMap::one_group(6);
        let config = SimConfig::default()
            .cache_capacity_bytes(256 << 10)
            .placement(PlacementKind::d_choices());
        let a = simulate(&net, &groups, &cat, &trace, config).unwrap();
        let b = simulate(&net, &groups, &cat, &trace, config).unwrap();
        assert_eq!(a, b);
        assert!(a.metrics.remote_placements > 0, "{a}");
        // d-choices never replicates on peer hits.
        assert_eq!(a.metrics.replicas_created, 0);
        assert!(a.metrics.replicas_suppressed > 0);
    }

    #[test]
    fn placement_sees_identical_candidates_under_both_lookups() {
        let net = network();
        let (cat, trace) = churny_trace(37, 120_000.0);
        for placement in [PlacementKind::adaptive(), PlacementKind::d_choices()] {
            for groups in [GroupMap::one_group(6), pair_groups()] {
                let base = SimConfig::default()
                    .cache_capacity_bytes(64 << 10)
                    .placement(placement);
                let scanned = simulate(
                    &net,
                    &groups,
                    &cat,
                    &trace,
                    base.peer_lookup(PeerLookup::ScanAll),
                )
                .unwrap();
                let indexed = simulate(
                    &net,
                    &groups,
                    &cat,
                    &trace,
                    base.peer_lookup(PeerLookup::HolderIndex),
                )
                .unwrap();
                assert_eq!(scanned, indexed, "diverged under {placement:?}");
            }
        }
    }

    #[test]
    fn placement_respects_down_members_and_invalidation() {
        let net = network();
        let (cat, trace) = churny_trace(39, 120_000.0);
        let mut schedule = FaultSchedule::new();
        schedule.push(10_000.0, FaultKind::CacheDown { cache: CacheId(2) });
        schedule.push(60_000.0, FaultKind::CacheUp { cache: CacheId(2) });
        for placement in [PlacementKind::adaptive(), PlacementKind::d_choices()] {
            for freshness in [
                FreshnessProtocol::InvalidateOnAccess,
                FreshnessProtocol::OriginMulticast,
            ] {
                let report = simulate_with_faults(
                    &net,
                    &GroupMap::one_group(6),
                    &cat,
                    &trace,
                    SimConfig::default()
                        .cache_capacity_bytes(128 << 10)
                        .placement(placement)
                        .freshness(freshness),
                    &schedule,
                )
                .unwrap();
                // Version-aware lookups keep every replica consistent:
                // nothing stale is ever served under either protocol,
                // replicas or not.
                assert_eq!(report.metrics.stale_served, 0, "{placement:?}");
                assert!(report.metrics.saw_placement());
            }
        }
    }

    #[test]
    fn placement_obs_counters_cover_decisions() {
        let net = network();
        let (cat, trace) = churny_trace(41, 60_000.0);
        let groups = GroupMap::one_group(6);
        let config = SimConfig::default()
            .cache_capacity_bytes(128 << 10)
            .placement(PlacementKind::adaptive());
        let mut obs = Obs::new();
        let report =
            simulate_observed(&net, &groups, &cat, &trace, config, Some(&mut obs)).unwrap();
        let m = &obs.metrics;
        assert!(m.counter("place.decisions") > 0);
        assert_eq!(
            m.counter("place.replicas_created"),
            report.metrics.replicas_created
        );
        assert_eq!(
            m.counter("place.replicas_suppressed"),
            report.metrics.replicas_suppressed
        );
        assert_eq!(
            m.counter("place.remote_placements"),
            report.metrics.remote_placements
        );
        let hist = m.histogram("place.replica_count").expect("replica hist");
        assert_eq!(hist.count(), m.counter("place.decisions"));
        let sim_span = &obs.phases.roots()[0];
        assert_eq!(sim_span.name(), "sim");
        assert_eq!(sim_span.children()[0].name(), "place");
        // A baseline observed run emits no placement telemetry at all.
        let mut base_obs = Obs::new();
        let _ = simulate_observed(
            &net,
            &groups,
            &cat,
            &trace,
            SimConfig::default(),
            Some(&mut base_obs),
        )
        .unwrap();
        assert_eq!(base_obs.metrics.counter("place.decisions"), 0);
        assert!(base_obs.metrics.histogram("place.replica_count").is_none());
        assert!(base_obs.phases.roots()[0].children().is_empty());
    }

    #[test]
    fn faulted_display_reports_degradation() {
        let net = network();
        let cat = catalog(10);
        let mut schedule = FaultSchedule::new();
        schedule.push(50.0, FaultKind::CacheDown { cache: CacheId(0) });
        let trace = vec![request(0.0, 0, 3), request(100.0, 0, 3)];
        let report = simulate_with_faults(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &trace,
            SimConfig::default(),
            &schedule,
        )
        .unwrap();
        let text = report.to_string();
        assert!(text.contains("failovers"), "{text}");
        assert!(text.contains("1 crashes"), "{text}");
        // A healthy run keeps the original compact summary.
        let healthy = simulate(
            &net,
            &GroupMap::singletons(6),
            &cat,
            &trace,
            SimConfig::default(),
        )
        .unwrap();
        assert!(!healthy.to_string().contains("failovers"));
    }
}
