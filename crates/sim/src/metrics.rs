//! Simulation metrics.
//!
//! The paper's client-side metric is the **average cache latency** (§4):
//! the mean of `T_S - T_A` over all requests in a window. The recorder
//! keeps per-cache aggregates so the Figure-3 breakdowns (all caches, 50
//! nearest the origin, 50 farthest) fall out of one run.

use crate::groups::GroupMap;
use crate::histogram::LatencyHistogram;
use ecg_topology::CacheId;

/// How a request was ultimately served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Fresh copy in the local cache.
    Local,
    /// Fetched from a cooperating peer cache in the same group.
    Peer,
    /// Fetched from the origin server after a group-wide miss.
    Origin,
}

/// Per-cache latency and outcome aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheAggregate {
    /// Requests served at this cache.
    pub requests: u64,
    /// Sum of request latencies, ms.
    pub latency_sum_ms: f64,
    /// Maximum single-request latency, ms.
    pub latency_max_ms: f64,
    /// Requests served from the local cache.
    pub local_hits: u64,
    /// Requests served by a group peer.
    pub peer_hits: u64,
    /// Requests that went to the origin.
    pub origin_fetches: u64,
}

impl CacheAggregate {
    /// Mean latency at this cache, or `None` before any request.
    pub fn mean_latency_ms(&self) -> Option<f64> {
        if self.requests == 0 {
            None
        } else {
            Some(self.latency_sum_ms / self.requests as f64)
        }
    }

    /// Fraction of requests answered locally or by a peer (the *group
    /// hit rate* in the paper's terms), or `None` before any request.
    pub fn group_hit_rate(&self) -> Option<f64> {
        if self.requests == 0 {
            None
        } else {
            Some((self.local_hits + self.peer_hits) as f64 / self.requests as f64)
        }
    }
}

/// Aggregates for one cooperative group, derived from its members'
/// per-cache aggregates by [`MetricsRecorder::per_group`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GroupAggregate {
    /// Group index within the [`GroupMap`].
    pub group: usize,
    /// Number of member caches.
    pub members: usize,
    /// Requests arriving at the group's members.
    pub requests: u64,
    /// Sum of member latencies, ms.
    pub latency_sum_ms: f64,
    /// Requests answered locally or by a group peer.
    pub group_hits: u64,
}

impl GroupAggregate {
    /// Mean latency over the group's requests, or `None` before any.
    pub fn mean_latency_ms(&self) -> Option<f64> {
        if self.requests == 0 {
            None
        } else {
            Some(self.latency_sum_ms / self.requests as f64)
        }
    }

    /// The group's hit rate (local + peer), or `None` before any
    /// request.
    pub fn group_hit_rate(&self) -> Option<f64> {
        if self.requests == 0 {
            None
        } else {
            Some(self.group_hits as f64 / self.requests as f64)
        }
    }
}

/// Latency/hit-rate aggregate over one class of requests (healthy or
/// degraded), used by [`DegradationMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowAggregate {
    /// Requests in this class.
    pub requests: u64,
    /// Sum of their latencies, ms.
    pub latency_sum_ms: f64,
    /// Worst single-request latency, ms.
    pub latency_max_ms: f64,
    /// Requests answered locally or by a group peer.
    pub group_hits: u64,
    /// Requests served with a stale version.
    pub stale_served: u64,
}

impl WindowAggregate {
    /// Mean latency over this class, or `None` before any request.
    pub fn mean_latency_ms(&self) -> Option<f64> {
        if self.requests == 0 {
            None
        } else {
            Some(self.latency_sum_ms / self.requests as f64)
        }
    }

    /// Group hit rate (local + peer) in this class, or `None` before
    /// any request.
    pub fn group_hit_rate(&self) -> Option<f64> {
        if self.requests == 0 {
            None
        } else {
            Some(self.group_hits as f64 / self.requests as f64)
        }
    }

    fn record(&mut self, latency_ms: f64, hit: bool, stale: bool) {
        self.requests += 1;
        self.latency_sum_ms += latency_ms;
        self.latency_max_ms = self.latency_max_ms.max(latency_ms);
        if hit {
            self.group_hits += 1;
        }
        if stale {
            self.stale_served += 1;
        }
    }

    /// Folds `other` into `self`. Counters add exactly; the latency sum
    /// is one f64 addition per call, so folding per-group aggregates in
    /// group order yields bit-identical results no matter where each
    /// group's aggregate was computed.
    pub fn merge_from(&mut self, other: &WindowAggregate) {
        self.requests += other.requests;
        self.latency_sum_ms += other.latency_sum_ms;
        self.latency_max_ms = self.latency_max_ms.max(other.latency_max_ms);
        self.group_hits += other.group_hits;
        self.stale_served += other.stale_served;
    }
}

/// One bucket of the degradation time series: the healthy and degraded
/// request aggregates for `[start_ms, start_ms + bucket_width)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimelineBucket {
    /// Bucket start time, ms.
    pub start_ms: f64,
    /// Requests whose group was fully healthy.
    pub healthy: WindowAggregate,
    /// Requests served while their group was degraded (a member down or
    /// retired, or an origin brownout active).
    pub degraded: WindowAggregate,
}

/// Fault-impact metrics: every request is classified as *healthy* or
/// *degraded* (some member of the requester's group down/retired, or an
/// origin brownout active) and aggregated both overall and as a bucketed
/// time series.
///
/// In a fault-free run ([`crate::simulate`]) everything lands in the
/// healthy class and all fault counters stay zero.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationMetrics {
    bucket_width_ms: f64,
    /// Aggregate over requests served under fully healthy groups.
    pub healthy: WindowAggregate,
    /// Aggregate over requests served under degraded groups.
    pub degraded: WindowAggregate,
    /// Requests whose home cache was down: served straight from the
    /// origin after the failover-detection penalty.
    pub failovers: u64,
    /// Cooperative peer queries skipped because the peer was down.
    pub peer_queries_skipped: u64,
    /// Cache crash events applied.
    pub crashes: u64,
    /// Cache recovery events applied.
    pub recoveries: u64,
    /// Cache retirement events applied.
    pub retirements: u64,
    timeline: Vec<TimelineBucket>,
}

impl Default for DegradationMetrics {
    /// 10 s timeline buckets, nothing recorded.
    fn default() -> Self {
        Self::new(10_000.0)
    }
}

impl DegradationMetrics {
    /// Creates an empty recorder with the given timeline bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width_ms` is not positive and finite.
    pub fn new(bucket_width_ms: f64) -> Self {
        assert!(
            bucket_width_ms.is_finite() && bucket_width_ms > 0.0,
            "bucket width must be > 0"
        );
        DegradationMetrics {
            bucket_width_ms,
            healthy: WindowAggregate::default(),
            degraded: WindowAggregate::default(),
            failovers: 0,
            peer_queries_skipped: 0,
            crashes: 0,
            recoveries: 0,
            retirements: 0,
            timeline: Vec::new(),
        }
    }

    /// The timeline bucket width in ms.
    pub fn bucket_width_ms(&self) -> f64 {
        self.bucket_width_ms
    }

    /// Records one served request into the overall split and its
    /// timeline bucket.
    ///
    /// # Panics
    ///
    /// Panics if `time_ms` is negative or not finite.
    pub fn record(
        &mut self,
        time_ms: f64,
        latency_ms: f64,
        hit: bool,
        stale: bool,
        degraded: bool,
    ) {
        assert!(
            time_ms.is_finite() && time_ms >= 0.0,
            "time must be finite and >= 0, got {time_ms}"
        );
        let idx = (time_ms / self.bucket_width_ms) as usize;
        while self.timeline.len() <= idx {
            let start_ms = self.timeline.len() as f64 * self.bucket_width_ms;
            self.timeline.push(TimelineBucket {
                start_ms,
                ..Default::default()
            });
        }
        let (overall, bucket) = if degraded {
            (&mut self.degraded, &mut self.timeline[idx].degraded)
        } else {
            (&mut self.healthy, &mut self.timeline[idx].healthy)
        };
        overall.record(latency_ms, hit, stale);
        bucket.record(latency_ms, hit, stale);
    }

    /// The bucketed time series, from time zero to the last recorded
    /// request (empty buckets included in between).
    pub fn timeline(&self) -> &[TimelineBucket] {
        &self.timeline
    }

    /// Fraction of recorded requests served under a degraded group, or
    /// `None` before any request.
    pub fn degraded_fraction(&self) -> Option<f64> {
        let total = self.healthy.requests + self.degraded.requests;
        if total == 0 {
            None
        } else {
            Some(self.degraded.requests as f64 / total as f64)
        }
    }

    /// Mean degraded latency minus mean healthy latency, ms — how much a
    /// fault costs the average affected request. `None` unless both
    /// classes recorded requests.
    pub fn degradation_penalty_ms(&self) -> Option<f64> {
        Some(self.degraded.mean_latency_ms()? - self.healthy.mean_latency_ms()?)
    }

    /// Returns `true` if any fault event was applied during the run.
    pub fn saw_faults(&self) -> bool {
        self.crashes + self.recoveries + self.retirements > 0
            || self.failovers > 0
            || self.degraded.requests > 0
    }

    /// Folds `other` into `self`, bucket-aligned.
    ///
    /// This is the degradation half of the sharded-replay merge
    /// contract: the simulator accumulates one `DegradationMetrics` per
    /// group and folds them in group order, and a sharded replay folds
    /// its per-shard recorders through the same call sequence — so both
    /// paths perform the identical chain of f64 additions and produce
    /// bit-identical sums. Missing trailing buckets are created empty
    /// before the bucket-wise fold.
    ///
    /// # Panics
    ///
    /// Panics if the two recorders use different bucket widths.
    pub fn merge_from(&mut self, other: &DegradationMetrics) {
        assert_eq!(
            self.bucket_width_ms, other.bucket_width_ms,
            "cannot merge degradation timelines with different bucket widths"
        );
        self.healthy.merge_from(&other.healthy);
        self.degraded.merge_from(&other.degraded);
        self.failovers += other.failovers;
        self.peer_queries_skipped += other.peer_queries_skipped;
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.retirements += other.retirements;
        while self.timeline.len() < other.timeline.len() {
            let start_ms = self.timeline.len() as f64 * self.bucket_width_ms;
            self.timeline.push(TimelineBucket {
                start_ms,
                ..Default::default()
            });
        }
        for (mine, theirs) in self.timeline.iter_mut().zip(&other.timeline) {
            mine.healthy.merge_from(&theirs.healthy);
            mine.degraded.merge_from(&theirs.degraded);
        }
    }
}

/// Collects per-request observations during a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRecorder {
    per_cache: Vec<CacheAggregate>,
    histogram: LatencyHistogram,
    /// Total bytes moved between group peers (cooperation traffic).
    pub peer_bytes: u64,
    /// Total bytes fetched from the origin.
    pub origin_bytes: u64,
    /// Control messages (peer queries + replies) sent.
    pub control_messages: u64,
    /// Push invalidations sent by the origin (multicast protocol only).
    pub invalidations_sent: u64,
    /// Requests served with a version older than the origin's current
    /// one (TTL lease protocol): the client-visible staleness cost.
    pub stale_served: u64,
    /// Peer-hit replicas the placement policy let the requester keep.
    /// Zero under the single-holder baseline (which replicates
    /// unconditionally but is short-circuited before the counter).
    pub replicas_created: u64,
    /// Peer-hit replicas the placement policy suppressed (the body was
    /// served remotely and dropped).
    pub replicas_suppressed: u64,
    /// Origin-fetched copies the placement policy diverted to a member
    /// other than the requester.
    pub remote_placements: u64,
    /// Fault-impact split of the same requests (healthy vs. degraded
    /// windows, failover counts). All-zero in a fault-free run.
    pub degradation: DegradationMetrics,
}

impl MetricsRecorder {
    /// Creates a recorder for `cache_count` caches.
    pub fn new(cache_count: usize) -> Self {
        MetricsRecorder {
            per_cache: vec![CacheAggregate::default(); cache_count],
            histogram: LatencyHistogram::default(),
            peer_bytes: 0,
            origin_bytes: 0,
            control_messages: 0,
            invalidations_sent: 0,
            stale_served: 0,
            replicas_created: 0,
            replicas_suppressed: 0,
            remote_placements: 0,
            degradation: DegradationMetrics::default(),
        }
    }

    /// Returns `true` if an active (non-single-holder) placement policy
    /// took any decision during the run.
    pub fn saw_placement(&self) -> bool {
        self.replicas_created + self.replicas_suppressed + self.remote_placements > 0
    }

    /// Records one served request.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range or the latency is negative/not
    /// finite.
    pub fn record(&mut self, cache: CacheId, latency_ms: f64, served_by: ServedBy) {
        assert!(
            latency_ms.is_finite() && latency_ms >= 0.0,
            "latency must be finite and >= 0, got {latency_ms}"
        );
        self.histogram.record(latency_ms);
        let agg = &mut self.per_cache[cache.index()];
        agg.requests += 1;
        agg.latency_sum_ms += latency_ms;
        agg.latency_max_ms = agg.latency_max_ms.max(latency_ms);
        match served_by {
            ServedBy::Local => agg.local_hits += 1,
            ServedBy::Peer => agg.peer_hits += 1,
            ServedBy::Origin => agg.origin_fetches += 1,
        }
    }

    /// The latency distribution over all recorded requests.
    pub fn latency_histogram(&self) -> &LatencyHistogram {
        &self.histogram
    }

    /// The `p`-quantile of request latency in ms (e.g. `0.95` for p95),
    /// or `None` before any request.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn latency_percentile_ms(&self, p: f64) -> Option<f64> {
        self.histogram.percentile(p)
    }

    /// Per-cache aggregates, indexed by cache id.
    pub fn per_cache(&self) -> &[CacheAggregate] {
        &self.per_cache
    }

    /// Total requests across all caches.
    pub fn total_requests(&self) -> u64 {
        self.per_cache.iter().map(|a| a.requests).sum()
    }

    /// Mean latency over *all requests* network-wide, or `None` if no
    /// request was recorded.
    pub fn mean_latency_ms(&self) -> Option<f64> {
        let total = self.total_requests();
        if total == 0 {
            return None;
        }
        let sum: f64 = self.per_cache.iter().map(|a| a.latency_sum_ms).sum();
        Some(sum / total as f64)
    }

    /// Mean latency restricted to the requests arriving at `caches`, or
    /// `None` if those caches served nothing. This computes the paper's
    /// "average latency of the 50 caches nearest/farthest from the
    /// origin" curves.
    pub fn mean_latency_of(&self, caches: &[CacheId]) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0u64;
        for &c in caches {
            let agg = &self.per_cache[c.index()];
            sum += agg.latency_sum_ms;
            count += agg.requests;
        }
        if count == 0 {
            None
        } else {
            Some(sum / count as f64)
        }
    }

    /// Folds the per-cache aggregates into per-group aggregates under
    /// the given partition — the per-group view Figures 3's analysis
    /// wants.
    ///
    /// # Panics
    ///
    /// Panics if the map covers a different cache count.
    pub fn per_group(&self, groups: &GroupMap) -> Vec<GroupAggregate> {
        assert_eq!(
            groups.cache_count(),
            self.per_cache.len(),
            "group map does not match the recorded cache count"
        );
        let mut out: Vec<GroupAggregate> = (0..groups.group_count())
            .map(|g| GroupAggregate {
                group: g,
                members: groups.groups()[g].len(),
                ..Default::default()
            })
            .collect();
        for (idx, agg) in self.per_cache.iter().enumerate() {
            let g = groups.group_of(CacheId(idx));
            out[g].requests += agg.requests;
            out[g].latency_sum_ms += agg.latency_sum_ms;
            out[g].group_hits += agg.local_hits + agg.peer_hits;
        }
        out
    }

    /// Folds a per-shard recorder into this one, scattering the shard's
    /// local cache rows back to the global ids in `members`.
    ///
    /// `members` lists the shard's caches in shard-local order:
    /// shard-local cache `i` is global cache `members[i]`. Every global
    /// cache belongs to exactly one shard, so the scatter lands each
    /// per-cache aggregate (whose f64 sums already accumulated in that
    /// cache's own event order) on a zeroed row — `0.0 + x == x` makes
    /// the copy exact. Histogram bins and the `u64` traffic counters add
    /// exactly; the degradation split folds through
    /// [`DegradationMetrics::merge_from`], which is the order-sensitive
    /// part — callers must merge shards in group order to reproduce the
    /// monolithic simulator bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `members` does not match the shard's cache count, a
    /// member id is out of range, or the degradation bucket widths
    /// differ.
    pub fn merge_shard(&mut self, members: &[CacheId], shard: &MetricsRecorder) {
        assert_eq!(
            members.len(),
            shard.per_cache.len(),
            "shard recorder covers {} caches but {} members were given",
            shard.per_cache.len(),
            members.len()
        );
        for (local, &global) in shard.per_cache.iter().zip(members) {
            let agg = &mut self.per_cache[global.index()];
            agg.requests += local.requests;
            agg.latency_sum_ms += local.latency_sum_ms;
            agg.latency_max_ms = agg.latency_max_ms.max(local.latency_max_ms);
            agg.local_hits += local.local_hits;
            agg.peer_hits += local.peer_hits;
            agg.origin_fetches += local.origin_fetches;
        }
        self.histogram.merge(&shard.histogram);
        self.peer_bytes += shard.peer_bytes;
        self.origin_bytes += shard.origin_bytes;
        self.control_messages += shard.control_messages;
        self.invalidations_sent += shard.invalidations_sent;
        self.stale_served += shard.stale_served;
        self.replicas_created += shard.replicas_created;
        self.replicas_suppressed += shard.replicas_suppressed;
        self.remote_placements += shard.remote_placements;
        self.degradation.merge_from(&shard.degradation);
    }

    /// Network-wide group hit rate (local + peer), or `None` with no
    /// requests.
    pub fn group_hit_rate(&self) -> Option<f64> {
        let total = self.total_requests();
        if total == 0 {
            return None;
        }
        let hits: u64 = self
            .per_cache
            .iter()
            .map(|a| a.local_hits + a.peer_hits)
            .sum();
        Some(hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_cache() {
        let mut m = MetricsRecorder::new(2);
        m.record(CacheId(0), 10.0, ServedBy::Local);
        m.record(CacheId(0), 30.0, ServedBy::Origin);
        m.record(CacheId(1), 20.0, ServedBy::Peer);
        let a0 = m.per_cache()[0];
        assert_eq!(a0.requests, 2);
        assert_eq!(a0.mean_latency_ms(), Some(20.0));
        assert_eq!(a0.latency_max_ms, 30.0);
        assert_eq!(a0.local_hits, 1);
        assert_eq!(a0.origin_fetches, 1);
        assert_eq!(m.per_cache()[1].peer_hits, 1);
    }

    #[test]
    fn network_wide_mean_weights_by_requests() {
        let mut m = MetricsRecorder::new(2);
        m.record(CacheId(0), 10.0, ServedBy::Local);
        m.record(CacheId(0), 10.0, ServedBy::Local);
        m.record(CacheId(0), 10.0, ServedBy::Local);
        m.record(CacheId(1), 50.0, ServedBy::Origin);
        // (3*10 + 50) / 4 = 20.
        assert_eq!(m.mean_latency_ms(), Some(20.0));
        assert_eq!(m.total_requests(), 4);
        // Percentiles come from the histogram: p50 near 10, p100 >= 50.
        let p50 = m.latency_percentile_ms(0.5).unwrap();
        assert!((10.0..15.0).contains(&p50), "p50 {p50}");
        assert!(m.latency_percentile_ms(1.0).unwrap() >= 50.0);
        assert_eq!(m.latency_histogram().count(), 4);
    }

    #[test]
    fn subset_mean_latency() {
        let mut m = MetricsRecorder::new(3);
        m.record(CacheId(0), 10.0, ServedBy::Local);
        m.record(CacheId(1), 20.0, ServedBy::Local);
        m.record(CacheId(2), 90.0, ServedBy::Origin);
        assert_eq!(m.mean_latency_of(&[CacheId(0), CacheId(1)]), Some(15.0));
        assert_eq!(m.mean_latency_of(&[]), None);
    }

    #[test]
    fn rates_and_empty_behaviour() {
        let m = MetricsRecorder::new(1);
        assert_eq!(m.mean_latency_ms(), None);
        assert_eq!(m.group_hit_rate(), None);
        assert_eq!(m.per_cache()[0].group_hit_rate(), None);

        let mut m = m;
        m.record(CacheId(0), 5.0, ServedBy::Local);
        m.record(CacheId(0), 5.0, ServedBy::Peer);
        m.record(CacheId(0), 5.0, ServedBy::Origin);
        m.record(CacheId(0), 5.0, ServedBy::Origin);
        assert_eq!(m.group_hit_rate(), Some(0.5));
        assert_eq!(m.per_cache()[0].group_hit_rate(), Some(0.5));
    }

    #[test]
    fn per_group_folds_member_aggregates() {
        let groups =
            GroupMap::new(3, vec![vec![CacheId(0), CacheId(2)], vec![CacheId(1)]]).unwrap();
        let mut m = MetricsRecorder::new(3);
        m.record(CacheId(0), 10.0, ServedBy::Local);
        m.record(CacheId(2), 30.0, ServedBy::Peer);
        m.record(CacheId(1), 50.0, ServedBy::Origin);
        let per_group = m.per_group(&groups);
        assert_eq!(per_group.len(), 2);
        assert_eq!(per_group[0].members, 2);
        assert_eq!(per_group[0].requests, 2);
        assert_eq!(per_group[0].mean_latency_ms(), Some(20.0));
        assert_eq!(per_group[0].group_hit_rate(), Some(1.0));
        assert_eq!(per_group[1].requests, 1);
        assert_eq!(per_group[1].group_hit_rate(), Some(0.0));
    }

    #[test]
    fn per_group_empty_recorder() {
        let groups = GroupMap::singletons(2);
        let m = MetricsRecorder::new(2);
        let per_group = m.per_group(&groups);
        assert_eq!(per_group.len(), 2);
        assert!(per_group.iter().all(|g| g.mean_latency_ms().is_none()));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn per_group_rejects_mismatched_map() {
        let m = MetricsRecorder::new(3);
        let _ = m.per_group(&GroupMap::singletons(2));
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn negative_latency_panics() {
        let mut m = MetricsRecorder::new(1);
        m.record(CacheId(0), -1.0, ServedBy::Local);
    }

    #[test]
    fn degradation_splits_healthy_and_degraded() {
        let mut d = DegradationMetrics::new(100.0);
        d.record(10.0, 5.0, true, false, false);
        d.record(150.0, 40.0, false, true, true);
        d.record(160.0, 60.0, false, false, true);
        assert_eq!(d.healthy.requests, 1);
        assert_eq!(d.degraded.requests, 2);
        assert_eq!(d.healthy.mean_latency_ms(), Some(5.0));
        assert_eq!(d.degraded.mean_latency_ms(), Some(50.0));
        assert_eq!(d.degraded.latency_max_ms, 60.0);
        assert_eq!(d.degraded.stale_served, 1);
        assert_eq!(d.healthy.group_hit_rate(), Some(1.0));
        assert_eq!(d.degraded.group_hit_rate(), Some(0.0));
        assert_eq!(d.degraded_fraction(), Some(2.0 / 3.0));
        assert_eq!(d.degradation_penalty_ms(), Some(45.0));
    }

    #[test]
    fn degradation_timeline_buckets_by_time() {
        let mut d = DegradationMetrics::new(100.0);
        d.record(10.0, 1.0, true, false, false);
        d.record(250.0, 2.0, false, false, true);
        let tl = d.timeline();
        assert_eq!(tl.len(), 3);
        assert_eq!(tl[0].start_ms, 0.0);
        assert_eq!(tl[1].start_ms, 100.0);
        assert_eq!(tl[0].healthy.requests, 1);
        assert_eq!(tl[1].healthy.requests + tl[1].degraded.requests, 0);
        assert_eq!(tl[2].degraded.requests, 1);
    }

    #[test]
    fn degradation_empty_behaviour() {
        let d = DegradationMetrics::default();
        assert_eq!(d.degraded_fraction(), None);
        assert_eq!(d.degradation_penalty_ms(), None);
        assert!(!d.saw_faults());
        assert!(d.timeline().is_empty());
        assert_eq!(d.bucket_width_ms(), 10_000.0);
    }

    #[test]
    fn saw_faults_flags_fault_activity() {
        let mut d = DegradationMetrics::default();
        d.crashes += 1;
        assert!(d.saw_faults());
        let mut d = DegradationMetrics::default();
        d.record(0.0, 1.0, false, false, true);
        assert!(d.saw_faults());
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_width_panics() {
        let _ = DegradationMetrics::new(0.0);
    }

    #[test]
    fn degradation_merge_folds_overall_and_timeline() {
        let mut a = DegradationMetrics::new(100.0);
        a.record(10.0, 5.0, true, false, false);
        a.failovers += 1;
        let mut b = DegradationMetrics::new(100.0);
        b.record(250.0, 40.0, false, true, true);
        b.crashes += 1;
        let mut merged = DegradationMetrics::new(100.0);
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.healthy.requests, 1);
        assert_eq!(merged.degraded.requests, 1);
        assert_eq!(merged.failovers, 1);
        assert_eq!(merged.crashes, 1);
        assert_eq!(merged.degraded.stale_served, 1);
        let tl = merged.timeline();
        assert_eq!(tl.len(), 3);
        assert_eq!(tl[0].healthy.requests, 1);
        assert_eq!(tl[1].start_ms, 100.0);
        assert_eq!(tl[2].degraded.requests, 1);
        // Fold order equals record order here, so the sums are exact.
        assert_eq!(merged.healthy.latency_sum_ms.to_bits(), 5.0f64.to_bits());
        assert_eq!(merged.degraded.latency_sum_ms.to_bits(), 40.0f64.to_bits());
    }

    #[test]
    #[should_panic(expected = "bucket widths")]
    fn degradation_merge_rejects_mismatched_buckets() {
        let mut a = DegradationMetrics::new(100.0);
        a.merge_from(&DegradationMetrics::new(200.0));
    }

    #[test]
    fn merge_shard_scatters_local_rows_to_members() {
        // Shard over global caches {3, 1}: local 0 -> 3, local 1 -> 1.
        let mut shard = MetricsRecorder::new(2);
        shard.record(CacheId(0), 10.0, ServedBy::Local);
        shard.record(CacheId(1), 30.0, ServedBy::Peer);
        shard.peer_bytes = 7;
        shard.control_messages = 4;
        shard.degradation.record(5.0, 10.0, true, false, false);

        let mut merged = MetricsRecorder::new(4);
        merged.merge_shard(&[CacheId(3), CacheId(1)], &shard);
        assert_eq!(merged.per_cache()[3].requests, 1);
        assert_eq!(merged.per_cache()[3].local_hits, 1);
        assert_eq!(merged.per_cache()[1].peer_hits, 1);
        assert_eq!(merged.per_cache()[0].requests, 0);
        assert_eq!(merged.peer_bytes, 7);
        assert_eq!(merged.control_messages, 4);
        assert_eq!(merged.total_requests(), 2);
        assert_eq!(merged.latency_histogram().count(), 2);
        assert_eq!(merged.degradation.healthy.requests, 1);
        // The scatter is exact: 0.0 + x == x.
        assert_eq!(
            merged.per_cache()[1].latency_sum_ms.to_bits(),
            30.0f64.to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "members were given")]
    fn merge_shard_rejects_wrong_member_count() {
        let shard = MetricsRecorder::new(2);
        let mut merged = MetricsRecorder::new(4);
        merged.merge_shard(&[CacheId(0)], &shard);
    }

    #[test]
    #[should_panic(expected = "time")]
    fn negative_record_time_panics() {
        let mut d = DegradationMetrics::default();
        d.record(-1.0, 1.0, false, false, false);
    }
}
