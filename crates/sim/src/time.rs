//! Simulation clock.
//!
//! The simulator keeps time as integer microseconds so timestamps have a
//! total order (no NaN) and event-queue comparisons are exact; workload
//! traces use `f64` milliseconds at the boundary.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since the run started.
///
/// # Examples
///
/// ```
/// use ecg_sim::SimTime;
///
/// let t = SimTime::from_ms(1.5);
/// assert_eq!(t.as_micros(), 1_500);
/// assert_eq!(t.as_ms(), 1.5);
/// let later = t + SimTime::from_ms(0.5);
/// assert!(later > t);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from (non-negative, finite) milliseconds, rounding
    /// to the nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative, NaN, or infinite.
    pub fn from_ms(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "time must be finite and >= 0, got {ms}"
        );
        SimTime((ms * 1_000.0).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating difference, as milliseconds.
    pub fn ms_since(self, earlier: SimTime) -> f64 {
        (self.0.saturating_sub(earlier.0)) as f64 / 1_000.0
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// Saturating subtraction: time never goes negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_round_trip() {
        let t = SimTime::from_ms(123.456);
        assert!((t.as_ms() - 123.456).abs() < 1e-3);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_ms(1.0);
        let b = SimTime::from_ms(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ms(5.0);
        let b = SimTime::from_ms(3.0);
        assert_eq!((a + b).as_ms(), 8.0);
        assert_eq!((a - b).as_ms(), 2.0);
        // Saturating.
        assert_eq!((b - a).as_ms(), 0.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_ms(), 8.0);
    }

    #[test]
    fn ms_since_saturates() {
        let a = SimTime::from_ms(5.0);
        let b = SimTime::from_ms(9.0);
        assert_eq!(b.ms_since(a), 4.0);
        assert_eq!(a.ms_since(b), 0.0);
    }

    #[test]
    fn display_shows_ms() {
        assert_eq!(SimTime::from_ms(1.5).to_string(), "1.500ms");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_ms_panics() {
        let _ = SimTime::from_ms(-1.0);
    }
}
