//! Log-scale latency histograms.
//!
//! The paper reports mean latencies; real operators care about tails.
//! [`LatencyHistogram`] records every request latency into
//! geometrically spaced bins so a simulation can report percentiles
//! with O(1) memory per run, independent of request count.

/// A histogram over `[min_ms, max_ms)` with geometrically spaced bins.
///
/// Values below the range land in the first bin, values above in the
/// overflow bin, so percentiles are always defined (with saturated
/// resolution at the edges).
///
/// # Examples
///
/// ```
/// use ecg_sim::LatencyHistogram;
///
/// let mut h = LatencyHistogram::default();
/// for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// let p50 = h.percentile(0.5).unwrap();
/// assert!(p50 >= 2.0 && p50 <= 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Bin counts; the last entry is the overflow bin.
    bins: Vec<u64>,
    count: u64,
    /// Cached parameters: lower bound and per-bin growth factor (as
    /// integers-in-disguise they stay `Eq`-friendly via bit patterns).
    min_ms_bits: u64,
    growth_bits: u64,
}

impl Default for LatencyHistogram {
    /// 256 bins from 0.05 ms to 60 s — ample for network latencies.
    fn default() -> Self {
        LatencyHistogram::new(0.05, 60_000.0, 256)
    }
}

impl LatencyHistogram {
    /// Creates a histogram over `[min_ms, max_ms)` with `bins`
    /// geometric bins (plus one overflow bin).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_ms < max_ms` and `bins >= 1`.
    pub fn new(min_ms: f64, max_ms: f64, bins: usize) -> Self {
        assert!(
            min_ms.is_finite() && max_ms.is_finite() && min_ms > 0.0 && min_ms < max_ms,
            "invalid histogram range [{min_ms}, {max_ms})"
        );
        assert!(bins >= 1, "need at least one bin");
        let growth = (max_ms / min_ms).powf(1.0 / bins as f64);
        LatencyHistogram {
            bins: vec![0; bins + 1],
            count: 0,
            min_ms_bits: min_ms.to_bits(),
            growth_bits: growth.to_bits(),
        }
    }

    fn min_ms(&self) -> f64 {
        f64::from_bits(self.min_ms_bits)
    }

    fn growth(&self) -> f64 {
        f64::from_bits(self.growth_bits)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` before the first sample.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Records one latency sample.
    ///
    /// # Panics
    ///
    /// Panics if the value is negative or not finite.
    pub fn record(&mut self, latency_ms: f64) {
        assert!(
            latency_ms.is_finite() && latency_ms >= 0.0,
            "latency must be finite and >= 0, got {latency_ms}"
        );
        let idx = self.bin_index(latency_ms);
        self.bins[idx] += 1;
        self.count += 1;
    }

    fn bin_index(&self, latency_ms: f64) -> usize {
        if latency_ms < self.min_ms() {
            return 0;
        }
        let idx = (latency_ms / self.min_ms()).ln() / self.growth().ln();
        (idx as usize).min(self.bins.len() - 1)
    }

    /// Lower edge of bin `idx` in ms (the overflow bin's lower edge is
    /// the configured maximum).
    fn bin_lower(&self, idx: usize) -> f64 {
        self.min_ms() * self.growth().powi(idx as i32)
    }

    /// The `p`-quantile (`p` in `[0, 1]`) as the upper edge of the bin
    /// containing it, or `None` before the first sample.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bin_lower(idx + 1));
            }
        }
        Some(self.bin_lower(self.bins.len()))
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different shapes.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(
            self.bins.len(),
            other.bins.len(),
            "histogram shape mismatch"
        );
        assert_eq!(
            self.min_ms_bits, other.min_ms_bits,
            "histogram range mismatch"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), None);
    }

    #[test]
    fn percentiles_bracket_true_quantiles() {
        let mut h = LatencyHistogram::new(0.1, 10_000.0, 400);
        // 1..=1000 ms uniformly.
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p50 = h.percentile(0.5).unwrap();
        let p95 = h.percentile(0.95).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!((p50 / 500.0 - 1.0).abs() < 0.1, "p50 {p50}");
        assert!((p95 / 950.0 - 1.0).abs() < 0.1, "p95 {p95}");
        assert!((p99 / 990.0 - 1.0).abs() < 0.1, "p99 {p99}");
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let mut h = LatencyHistogram::default();
        for i in 0..500 {
            h.record((i % 97) as f64 + 0.5);
        }
        let mut prev = 0.0;
        for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.percentile(p).unwrap();
            assert!(v >= prev, "p{p}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn out_of_range_values_saturate() {
        let mut h = LatencyHistogram::new(1.0, 100.0, 10);
        h.record(0.001); // below range → first bin
        h.record(1e6); // above range → overflow bin
        assert_eq!(h.count(), 2);
        assert!(h.percentile(0.01).unwrap() <= 2.0);
        assert!(h.percentile(1.0).unwrap() >= 100.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        for i in 1..=10 {
            a.record(i as f64);
            b.record((i * 100) as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 20);
        // Median sits between the two clusters.
        let p50 = a.percentile(0.5).unwrap();
        assert!((10.0..=110.0).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn zero_latency_is_allowed() {
        let mut h = LatencyHistogram::default();
        h.record(0.0);
        assert_eq!(h.count(), 1);
        assert!(h.percentile(0.5).is_some());
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn bad_range_panics() {
        let _ = LatencyHistogram::new(10.0, 1.0, 8);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_panics() {
        let mut h = LatencyHistogram::default();
        h.record(1.0);
        let _ = h.percentile(1.5);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = LatencyHistogram::new(1.0, 100.0, 8);
        let b = LatencyHistogram::new(1.0, 100.0, 16);
        a.merge(&b);
    }
}
