//! Log-scale latency histograms.
//!
//! The paper reports mean latencies; real operators care about tails.
//! [`LatencyHistogram`] records every request latency into
//! geometrically spaced bins so a simulation can report percentiles
//! with O(1) memory per run, independent of request count.
//!
//! Deprecation note: the histogram implementation moved to the
//! `ecg-obs` crate so the whole workspace shares one bucket layout;
//! this module is now a thin alias kept for source compatibility. New
//! code should use [`ecg_obs::Histogram`] directly.

/// Alias for [`ecg_obs::Histogram`] under the simulator's historical
/// name. The API is unchanged: `new(min_ms, max_ms, bins)`, `record`,
/// `percentile`, `merge`, and a default layout of 256 bins over
/// 0.05 ms – 60 s.
///
/// # Examples
///
/// ```
/// use ecg_sim::LatencyHistogram;
///
/// let mut h = LatencyHistogram::default();
/// for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// let p50 = h.percentile(0.5).unwrap();
/// assert!(p50 >= 2.0 && p50 <= 4.0);
/// ```
pub use ecg_obs::Histogram as LatencyHistogram;

#[cfg(test)]
mod tests {
    use super::*;

    // The full histogram test suite lives in `ecg-obs`; this checks the
    // alias keeps the simulator-facing contract.
    #[test]
    fn alias_is_the_obs_histogram_with_latency_defaults() {
        let mut sim_side = LatencyHistogram::default();
        let mut obs_side = ecg_obs::Histogram::default();
        for v in [0.3, 7.0, 42.0, 900.0, 70_000.0] {
            sim_side.record(v);
            obs_side.record(v);
        }
        // Same type, same layout: cross-merge must succeed.
        sim_side.merge(&obs_side);
        assert_eq!(sim_side.count(), 10);
        assert_eq!(sim_side.percentile(0.5), obs_side.percentile(0.5));
    }
}
