//! Fault injection: cache crashes, recoveries, retirements, and origin
//! brownouts.
//!
//! The paper evaluates group formation on a healthy network; real edge
//! deployments lose caches (hardware failure, maintenance drains) and
//! see origin slowdowns (flash crowds, upstream incidents). A
//! [`FaultSchedule`] is the simulator-level description of such an
//! outage script: a time-ordered list of [`FaultEvent`]s that
//! [`crate::simulate_with_faults`] replays alongside the workload
//! trace.
//!
//! Semantics of each [`FaultKind`]:
//!
//! * **CacheDown** — the cache crashes and its contents are lost.
//!   While down it serves nothing: clients pointed at it fail over to
//!   the origin (paying [`FaultSchedule::failover_penalty_ms`] for
//!   detection plus the full origin fetch), and group peers stop
//!   querying it — its group degrades to the survivors.
//! * **CacheUp** — the cache restarts *cold* (its pre-crash contents
//!   stay lost) and rejoins cooperative lookups.
//! * **CacheRetire** — permanent decommissioning; like a crash that
//!   never recovers. A later `CacheUp` for a retired cache is ignored.
//! * **BrownoutStart / BrownoutEnd** — while a brownout is active every
//!   origin fetch is slowed by the window's factor, modelling an
//!   overloaded or degraded origin.
//!
//! The schedule is deliberately low-level — dense, validated, and owned
//! by the simulator crate. The `ecg-faults` crate layers the
//! operator-facing `FaultPlan` builder (crash-with-recovery, churn
//! generation) on top and compiles down to this type.

use ecg_topology::CacheId;
use std::fmt;

/// What happens when a fault event fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// `cache` crashes, losing its contents.
    CacheDown {
        /// The crashing cache.
        cache: CacheId,
    },
    /// `cache` restarts cold and rejoins its group.
    CacheUp {
        /// The recovering cache.
        cache: CacheId,
    },
    /// `cache` is permanently decommissioned.
    CacheRetire {
        /// The retiring cache.
        cache: CacheId,
    },
    /// Origin fetches start taking `factor ×` their modelled latency.
    BrownoutStart {
        /// Slowdown multiplier, `>= 1`.
        factor: f64,
    },
    /// The active brownout window ends.
    BrownoutEnd,
}

/// A fault scheduled at a point in simulation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires, in ms.
    pub time_ms: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Error from [`FaultSchedule::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultError {
    /// A fault references a cache outside the network.
    CacheOutOfRange {
        /// The offending cache index.
        cache: usize,
    },
    /// A fault time is negative or not finite.
    BadTime {
        /// The offending time.
        time_ms: f64,
    },
    /// A brownout factor is below 1 or not finite.
    BadBrownoutFactor {
        /// The offending factor.
        factor: f64,
    },
    /// A `BrownoutEnd` fired with no brownout active.
    UnmatchedBrownoutEnd,
    /// A `BrownoutStart` fired while a brownout was already active
    /// (windows must not overlap).
    OverlappingBrownout,
    /// The failover penalty is negative or not finite.
    BadFailoverPenalty {
        /// The offending penalty.
        penalty_ms: f64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::CacheOutOfRange { cache } => {
                write!(f, "fault references unknown cache {cache}")
            }
            FaultError::BadTime { time_ms } => {
                write!(
                    f,
                    "fault time {time_ms} is not a finite non-negative ms value"
                )
            }
            FaultError::BadBrownoutFactor { factor } => {
                write!(f, "brownout factor {factor} must be finite and >= 1")
            }
            FaultError::UnmatchedBrownoutEnd => {
                write!(f, "brownout end without an active brownout")
            }
            FaultError::OverlappingBrownout => {
                write!(f, "brownout windows must not overlap")
            }
            FaultError::BadFailoverPenalty { penalty_ms } => {
                write!(f, "failover penalty {penalty_ms} must be finite and >= 0")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// The fault state a schedule has accumulated at some instant, as
/// reported by [`FaultSchedule::carry_state_at`]: what a replay segment
/// starting there must re-announce before processing its own events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultCarryState {
    /// Caches crashed and not yet recovered (retired caches excluded),
    /// ascending.
    pub down: Vec<CacheId>,
    /// Caches permanently retired, ascending.
    pub retired: Vec<CacheId>,
    /// The factor of the brownout window open at the instant, if any.
    pub brownout_factor: Option<f64>,
}

impl FaultCarryState {
    /// `true` when nothing needs re-announcing: no cache is down or
    /// retired and no brownout is open.
    pub fn is_clean(&self) -> bool {
        self.down.is_empty() && self.retired.is_empty() && self.brownout_factor.is_none()
    }
}

/// A validated-on-use script of fault events plus the fault-model knobs
/// the simulator needs.
///
/// An empty schedule (the [`Default`]) makes
/// [`crate::simulate_with_faults`] behave exactly like
/// [`crate::simulate`].
///
/// # Examples
///
/// ```
/// use ecg_sim::fault::{FaultKind, FaultSchedule};
/// use ecg_topology::CacheId;
///
/// let mut schedule = FaultSchedule::new();
/// schedule.push(1_000.0, FaultKind::CacheDown { cache: CacheId(2) });
/// schedule.push(5_000.0, FaultKind::CacheUp { cache: CacheId(2) });
/// assert_eq!(schedule.len(), 2);
/// assert!(schedule.validate(6).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    failover_penalty_ms: f64,
    timeline_bucket_ms: f64,
}

impl Default for FaultSchedule {
    /// No faults, a 3 ms failover-detection penalty, 10 s timeline
    /// buckets.
    fn default() -> Self {
        FaultSchedule {
            events: Vec::new(),
            failover_penalty_ms: 3.0,
            timeline_bucket_ms: 10_000.0,
        }
    }
}

impl FaultSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a fault. Events may be pushed in any order; the simulator
    /// processes them in time order (ties in push order).
    pub fn push(&mut self, time_ms: f64, kind: FaultKind) {
        self.events.push(FaultEvent { time_ms, kind });
    }

    /// Sets the extra latency a client pays to detect its home cache is
    /// dead before falling back to the origin.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn failover_penalty_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "penalty must be >= 0");
        self.failover_penalty_ms = ms;
        self
    }

    /// Sets the width of the degradation-timeline buckets.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is not positive and finite.
    pub fn timeline_bucket_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms > 0.0, "bucket width must be > 0");
        self.timeline_bucket_ms = ms;
        self
    }

    /// The failover-detection penalty in ms.
    pub fn failover_penalty(&self) -> f64 {
        self.failover_penalty_ms
    }

    /// The degradation-timeline bucket width in ms.
    pub fn timeline_bucket(&self) -> f64 {
        self.timeline_bucket_ms
    }

    /// The scheduled events, in push order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The caches that are unavailable at simulation time `time_ms`,
    /// ascending: crashed and not yet recovered, or retired. Replays
    /// the events up to and including `time_ms` in time order (ties in
    /// push order), with the simulator's semantics — a `CacheUp` after
    /// `CacheRetire` is ignored.
    ///
    /// This is the bridge from a simulation fault script to
    /// formation-time probe faults: the `ecg-faults` crate uses it to
    /// derive the crashed-node set a (re-)formation run at `time_ms`
    /// would face.
    pub fn down_caches_at(&self, time_ms: f64) -> Vec<CacheId> {
        let mut ordered: Vec<&FaultEvent> = self
            .events
            .iter()
            .filter(|e| e.time_ms <= time_ms)
            .collect();
        ordered.sort_by(|a, b| {
            a.time_ms
                .partial_cmp(&b.time_ms)
                .expect("times are not NaN")
        });
        let mut down: Vec<CacheId> = Vec::new();
        let mut retired: Vec<CacheId> = Vec::new();
        for e in ordered {
            match e.kind {
                FaultKind::CacheDown { cache } | FaultKind::CacheRetire { cache } => {
                    if !down.contains(&cache) {
                        down.push(cache);
                    }
                    if matches!(e.kind, FaultKind::CacheRetire { .. }) && !retired.contains(&cache)
                    {
                        retired.push(cache);
                    }
                }
                FaultKind::CacheUp { cache } => {
                    if !retired.contains(&cache) {
                        down.retain(|&c| c != cache);
                    }
                }
                FaultKind::BrownoutStart { .. } | FaultKind::BrownoutEnd => {}
            }
        }
        down.sort_unstable_by_key(|c| c.index());
        down
    }

    /// The fault state accumulated *strictly before* `time_ms`: which
    /// caches are down (crashed, not yet recovered), which are retired
    /// for good, and whether a brownout window is open (and at what
    /// factor).
    ///
    /// This is the splitting primitive for epoch-spanning replay: a
    /// replay segment starting at `time_ms` re-announces this state as
    /// carry events *at* `time_ms` (pushed before the segment's own
    /// events, so the simulator's FIFO tie-break applies them first) and
    /// then behaves as if it had replayed the whole history. The cutoff
    /// is exclusive — an event scheduled exactly at `time_ms` belongs to
    /// the segment itself, not to its carried-in state.
    pub fn carry_state_at(&self, time_ms: f64) -> FaultCarryState {
        let mut ordered: Vec<(usize, &FaultEvent)> = self
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.time_ms < time_ms)
            .collect();
        // Stable on push order, as the simulator replays them.
        ordered.sort_by(|a, b| {
            a.1.time_ms
                .partial_cmp(&b.1.time_ms)
                .expect("times are not NaN")
        });
        let mut down: Vec<CacheId> = Vec::new();
        let mut retired: Vec<CacheId> = Vec::new();
        let mut brownout_factor = None;
        for (_, e) in ordered {
            match e.kind {
                FaultKind::CacheDown { cache } => {
                    if !down.contains(&cache) && !retired.contains(&cache) {
                        down.push(cache);
                    }
                }
                FaultKind::CacheRetire { cache } => {
                    if !retired.contains(&cache) {
                        retired.push(cache);
                    }
                    down.retain(|&c| c != cache);
                }
                FaultKind::CacheUp { cache } => {
                    if !retired.contains(&cache) {
                        down.retain(|&c| c != cache);
                    }
                }
                FaultKind::BrownoutStart { factor } => brownout_factor = Some(factor),
                FaultKind::BrownoutEnd => brownout_factor = None,
            }
        }
        down.sort_unstable_by_key(|c| c.index());
        retired.sort_unstable_by_key(|c| c.index());
        FaultCarryState {
            down,
            retired,
            brownout_factor,
        }
    }

    /// Checks the schedule against a network of `cache_count` caches:
    /// cache ids in range, times and knobs finite, brownout windows
    /// properly nested and non-overlapping.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultError`] found.
    pub fn validate(&self, cache_count: usize) -> Result<(), FaultError> {
        if !(self.failover_penalty_ms.is_finite() && self.failover_penalty_ms >= 0.0) {
            return Err(FaultError::BadFailoverPenalty {
                penalty_ms: self.failover_penalty_ms,
            });
        }
        for e in &self.events {
            if !(e.time_ms.is_finite() && e.time_ms >= 0.0) {
                return Err(FaultError::BadTime { time_ms: e.time_ms });
            }
            match e.kind {
                FaultKind::CacheDown { cache }
                | FaultKind::CacheUp { cache }
                | FaultKind::CacheRetire { cache } => {
                    if cache.index() >= cache_count {
                        return Err(FaultError::CacheOutOfRange {
                            cache: cache.index(),
                        });
                    }
                }
                FaultKind::BrownoutStart { factor } => {
                    if !(factor.is_finite() && factor >= 1.0) {
                        return Err(FaultError::BadBrownoutFactor { factor });
                    }
                }
                FaultKind::BrownoutEnd => {}
            }
        }
        // Brownout windows must alternate start/end in time order. Sort
        // stably so same-time events keep push order, as the simulator
        // replays them.
        let mut ordered: Vec<&FaultEvent> = self.events.iter().collect();
        ordered.sort_by(|a, b| {
            a.time_ms
                .partial_cmp(&b.time_ms)
                .expect("times validated finite above")
        });
        let mut active = false;
        for e in ordered {
            match e.kind {
                FaultKind::BrownoutStart { .. } => {
                    if active {
                        return Err(FaultError::OverlappingBrownout);
                    }
                    active = true;
                }
                FaultKind::BrownoutEnd => {
                    if !active {
                        return Err(FaultError::UnmatchedBrownoutEnd);
                    }
                    active = false;
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_validates() {
        assert!(FaultSchedule::new().validate(0).is_ok());
    }

    #[test]
    fn out_of_range_cache_rejected() {
        let mut s = FaultSchedule::new();
        s.push(1.0, FaultKind::CacheDown { cache: CacheId(6) });
        assert_eq!(s.validate(6), Err(FaultError::CacheOutOfRange { cache: 6 }));
        assert!(s.validate(7).is_ok());
    }

    #[test]
    fn bad_time_rejected() {
        let mut s = FaultSchedule::new();
        s.push(-1.0, FaultKind::BrownoutEnd);
        assert!(matches!(s.validate(1), Err(FaultError::BadTime { .. })));
        let mut s = FaultSchedule::new();
        s.push(f64::NAN, FaultKind::BrownoutEnd);
        assert!(matches!(s.validate(1), Err(FaultError::BadTime { .. })));
    }

    #[test]
    fn brownout_windows_must_pair_up() {
        let mut s = FaultSchedule::new();
        s.push(10.0, FaultKind::BrownoutEnd);
        assert_eq!(s.validate(1), Err(FaultError::UnmatchedBrownoutEnd));

        let mut s = FaultSchedule::new();
        s.push(0.0, FaultKind::BrownoutStart { factor: 2.0 });
        s.push(5.0, FaultKind::BrownoutStart { factor: 3.0 });
        assert_eq!(s.validate(1), Err(FaultError::OverlappingBrownout));

        let mut s = FaultSchedule::new();
        s.push(0.0, FaultKind::BrownoutStart { factor: 2.0 });
        s.push(5.0, FaultKind::BrownoutEnd);
        s.push(6.0, FaultKind::BrownoutStart { factor: 4.0 });
        assert!(s.validate(1).is_ok());
    }

    #[test]
    fn brownout_factor_must_slow_not_speed() {
        let mut s = FaultSchedule::new();
        s.push(0.0, FaultKind::BrownoutStart { factor: 0.5 });
        assert!(matches!(
            s.validate(1),
            Err(FaultError::BadBrownoutFactor { .. })
        ));
    }

    #[test]
    fn validation_handles_unsorted_pushes() {
        // End pushed before start, but at a later time: still a valid
        // window once sorted.
        let mut s = FaultSchedule::new();
        s.push(9.0, FaultKind::BrownoutEnd);
        s.push(1.0, FaultKind::BrownoutStart { factor: 2.0 });
        assert!(s.validate(1).is_ok());
    }

    #[test]
    fn down_caches_replay_crash_recover_retire() {
        let mut s = FaultSchedule::new();
        s.push(1_000.0, FaultKind::CacheDown { cache: CacheId(2) });
        s.push(5_000.0, FaultKind::CacheUp { cache: CacheId(2) });
        s.push(2_000.0, FaultKind::CacheRetire { cache: CacheId(0) });
        s.push(6_000.0, FaultKind::CacheUp { cache: CacheId(0) }); // ignored: retired
        assert_eq!(s.down_caches_at(0.0), vec![]);
        assert_eq!(s.down_caches_at(1_000.0), vec![CacheId(2)]);
        assert_eq!(s.down_caches_at(2_500.0), vec![CacheId(0), CacheId(2)]);
        assert_eq!(s.down_caches_at(5_000.0), vec![CacheId(0)]);
        assert_eq!(s.down_caches_at(10_000.0), vec![CacheId(0)]);
    }

    #[test]
    fn carry_state_distinguishes_down_retired_and_brownouts() {
        let mut s = FaultSchedule::new();
        s.push(1_000.0, FaultKind::CacheDown { cache: CacheId(2) });
        s.push(5_000.0, FaultKind::CacheUp { cache: CacheId(2) });
        s.push(2_000.0, FaultKind::CacheRetire { cache: CacheId(0) });
        s.push(6_000.0, FaultKind::CacheUp { cache: CacheId(0) }); // ignored: retired
        s.push(3_000.0, FaultKind::BrownoutStart { factor: 2.5 });
        s.push(7_000.0, FaultKind::BrownoutEnd);

        assert!(s.carry_state_at(0.0).is_clean());
        // The cutoff is exclusive: the crash at 1 s is not yet carried
        // state for a segment starting exactly there.
        assert!(s.carry_state_at(1_000.0).is_clean());
        let mid = s.carry_state_at(4_000.0);
        assert_eq!(mid.down, vec![CacheId(2)]);
        assert_eq!(mid.retired, vec![CacheId(0)]);
        assert_eq!(mid.brownout_factor, Some(2.5));
        let late = s.carry_state_at(10_000.0);
        assert!(late.down.is_empty());
        assert_eq!(late.retired, vec![CacheId(0)]);
        assert_eq!(late.brownout_factor, None);
        assert!(!late.is_clean());
    }

    #[test]
    #[should_panic(expected = "penalty")]
    fn negative_penalty_panics() {
        let _ = FaultSchedule::new().failover_penalty_ms(-1.0);
    }

    #[test]
    fn error_display() {
        assert!(FaultError::CacheOutOfRange { cache: 9 }
            .to_string()
            .contains('9'));
        assert!(FaultError::OverlappingBrownout
            .to_string()
            .contains("overlap"));
    }
}
