//! The discrete event queue.

use crate::time::SimTime;
use ecg_topology::CacheId;
use ecg_workload::DocId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event processed by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A document update lands at the origin server.
    OriginUpdate {
        /// The updated document.
        doc: DocId,
    },
    /// A client request arrives at an edge cache.
    ClientRequest {
        /// The cache the client hits.
        cache: CacheId,
        /// The requested document.
        doc: DocId,
    },
    /// A scheduled fault fires; `idx` points into the run's
    /// [`FaultSchedule`](crate::fault::FaultSchedule).
    Fault {
        /// Index of the fault in the schedule's event list.
        idx: usize,
    },
}

/// A scheduled event. Ordered by time, then by insertion sequence so
/// same-time events are processed FIFO (which also keeps runs
/// deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue.
///
/// # Examples
///
/// ```
/// use ecg_sim::event::{Event, EventQueue};
/// use ecg_sim::SimTime;
/// use ecg_topology::CacheId;
/// use ecg_workload::DocId;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ms(2.0), Event::OriginUpdate { doc: DocId(1) });
/// q.schedule(
///     SimTime::from_ms(1.0),
///     Event::ClientRequest { cache: CacheId(0), doc: DocId(1) },
/// );
/// let (t, _) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_ms(1.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(cache: usize, doc: usize) -> Event {
        Event::ClientRequest {
            cache: CacheId(cache),
            doc: DocId(doc),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(3.0), req(0, 0));
        q.schedule(SimTime::from_ms(1.0), req(1, 1));
        q.schedule(SimTime::from_ms(2.0), req(2, 2));
        let times: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_ms())
            .collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(1.0);
        q.schedule(t, req(0, 0));
        q.schedule(t, req(1, 1));
        q.schedule(t, req(2, 2));
        let caches: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::ClientRequest { cache, .. } => cache.index(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(caches, vec![0, 1, 2]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(5.0), req(0, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(5.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        let _ = q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
