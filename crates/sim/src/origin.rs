//! The origin server.

use ecg_workload::{DocId, DocumentCatalog};

/// The origin server's state: the authoritative version of every
/// document.
///
/// Versions start at 1 and bump on every update event; caches compare
/// their copies' versions against these to detect staleness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OriginServer {
    versions: Vec<u64>,
    updates_applied: u64,
    fetches_served: u64,
}

impl OriginServer {
    /// Creates an origin serving every document of `catalog` at
    /// version 1.
    pub fn new(catalog: &DocumentCatalog) -> Self {
        OriginServer {
            versions: vec![1; catalog.len()],
            updates_applied: 0,
            fetches_served: 0,
        }
    }

    /// Current version of `doc`.
    ///
    /// # Panics
    ///
    /// Panics if `doc` is out of range.
    #[inline]
    pub fn version(&self, doc: DocId) -> u64 {
        self.versions[doc.index()]
    }

    /// Applies one update to `doc`, bumping its version.
    ///
    /// # Panics
    ///
    /// Panics if `doc` is out of range.
    pub fn apply_update(&mut self, doc: DocId) {
        self.versions[doc.index()] += 1;
        self.updates_applied += 1;
    }

    /// Records (and counts) a fetch served to a cache, returning the
    /// version the cache receives.
    pub fn serve_fetch(&mut self, doc: DocId) -> u64 {
        self.fetches_served += 1;
        self.version(doc)
    }

    /// Updates applied so far.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Fetches served to caches so far — the origin load the cooperative
    /// network is supposed to absorb.
    pub fn fetches_served(&self) -> u64 {
        self.fetches_served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_workload::CatalogConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn origin(n: usize) -> OriginServer {
        let cat = CatalogConfig::default()
            .documents(n)
            .generate(&mut StdRng::seed_from_u64(0));
        OriginServer::new(&cat)
    }

    #[test]
    fn versions_start_at_one() {
        let o = origin(5);
        for i in 0..5 {
            assert_eq!(o.version(DocId(i)), 1);
        }
    }

    #[test]
    fn updates_bump_versions_independently() {
        let mut o = origin(3);
        o.apply_update(DocId(1));
        o.apply_update(DocId(1));
        o.apply_update(DocId(2));
        assert_eq!(o.version(DocId(0)), 1);
        assert_eq!(o.version(DocId(1)), 3);
        assert_eq!(o.version(DocId(2)), 2);
        assert_eq!(o.updates_applied(), 3);
    }

    #[test]
    fn serving_returns_current_version_and_counts() {
        let mut o = origin(2);
        o.apply_update(DocId(0));
        assert_eq!(o.serve_fetch(DocId(0)), 2);
        assert_eq!(o.serve_fetch(DocId(1)), 1);
        assert_eq!(o.fetches_served(), 2);
    }
}
