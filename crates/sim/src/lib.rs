//! Discrete-event simulator for cooperative edge cache networks.
//!
//! Models the system the paper evaluates: an origin server publishing
//! dynamic documents, `N` edge caches partitioned into cooperative
//! groups, ICP-style cooperative miss handling within each group, and an
//! update stream that invalidates cached copies. The simulator replays a
//! workload trace ([`ecg_workload`]) over an edge network
//! ([`ecg_topology::EdgeNetwork`]) and reports the paper's metrics:
//! average cache latency, group hit rates, and traffic breakdowns.
//!
//! * [`SimTime`] — microsecond-resolution simulation clock.
//! * [`event`] — the time-ordered event queue.
//! * [`LatencyModel`] — RTT + bandwidth transfer-cost model.
//! * [`GroupMap`] — validated cache-to-group partition.
//! * [`fault`] — fault schedules: cache crashes/recoveries/retirements
//!   and origin brownouts, replayed by [`simulate_with_faults`].
//! * [`simulate`] — the driver; see its docs for the protocol details.
//!
//! # Examples
//!
//! ```
//! use ecg_sim::{simulate, GroupMap, SimConfig};
//! use ecg_topology::{fixtures::paper_figure1, EdgeNetwork};
//! use ecg_workload::{merge_streams, generate_updates, CatalogConfig, RequestConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
//! let mut rng = StdRng::seed_from_u64(7);
//! let catalog = CatalogConfig::default().documents(200).generate(&mut rng);
//! let requests = RequestConfig::default().generate(&catalog, 6, 30_000.0, &mut rng);
//! let updates = generate_updates(&catalog, 30_000.0, &mut rng);
//! let trace = merge_streams(&requests, &updates);
//!
//! let groups = GroupMap::one_group(6);
//! let report = simulate(&network, &groups, &catalog, &trace, SimConfig::default())?;
//! println!("avg latency: {:.2} ms", report.average_latency_ms());
//! # Ok::<(), ecg_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must attach context to failures (`expect`/`Result`), not
// panic opaquely; tests may still unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod event;
pub mod fault;
pub mod groups;
pub mod histogram;
pub mod holders;
pub mod latency;
pub mod metrics;
pub mod origin;
mod sim;
pub mod time;

pub use fault::{FaultCarryState, FaultError, FaultEvent, FaultKind, FaultSchedule};
pub use groups::{GroupMap, GroupMapError};
pub use histogram::LatencyHistogram;
pub use holders::{HolderIndex, PeerMasks};
pub use latency::LatencyModel;
pub use metrics::{
    CacheAggregate, DegradationMetrics, GroupAggregate, MetricsRecorder, ServedBy, TimelineBucket,
    WindowAggregate,
};
pub use origin::OriginServer;
// Re-exported so simulation configs can pick a placement policy without
// a direct `ecg-place` dependency.
pub use ecg_place::{AdaptiveConfig, DChoicesConfig, PlacementKind};
pub use sim::{
    simulate, simulate_observed, simulate_with_faults, simulate_with_faults_observed,
    FreshnessProtocol, PeerLookup, SimConfig, SimError, SimReport,
};
pub use time::SimTime;
