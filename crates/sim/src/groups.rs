//! Cooperative group membership.

use ecg_topology::CacheId;
use std::fmt;

/// Error from [`GroupMap::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupMapError {
    /// A cache id appears in no group.
    Unassigned(CacheId),
    /// A cache id appears in more than one group (or twice in one).
    Duplicate(CacheId),
    /// A group references a cache id outside `0..cache_count`.
    OutOfRange(CacheId),
    /// A group has no members.
    EmptyGroup {
        /// Index of the empty group.
        group: usize,
    },
}

impl fmt::Display for GroupMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupMapError::Unassigned(c) => write!(f, "cache {c} belongs to no group"),
            GroupMapError::Duplicate(c) => write!(f, "cache {c} assigned more than once"),
            GroupMapError::OutOfRange(c) => write!(f, "cache {c} is out of range"),
            GroupMapError::EmptyGroup { group } => write!(f, "group {group} is empty"),
        }
    }
}

impl std::error::Error for GroupMapError {}

/// A validated partition of the caches into cooperative groups.
///
/// # Examples
///
/// ```
/// use ecg_sim::GroupMap;
/// use ecg_topology::CacheId;
///
/// let groups = vec![vec![CacheId(0), CacheId(2)], vec![CacheId(1)]];
/// let map = GroupMap::new(3, groups)?;
/// assert_eq!(map.group_of(CacheId(2)), 0);
/// assert_eq!(map.peers(CacheId(0)), &[CacheId(2)]);
/// # Ok::<(), ecg_sim::GroupMapError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMap {
    groups: Vec<Vec<CacheId>>,
    group_of: Vec<usize>,
    /// peers[c] = members of c's group except c itself.
    peers: Vec<Vec<CacheId>>,
}

impl GroupMap {
    /// Validates that `groups` is a partition of `0..cache_count` and
    /// builds the lookup structures.
    ///
    /// # Errors
    ///
    /// Returns [`GroupMapError`] if any cache is missing, duplicated, or
    /// out of range, or any group is empty.
    pub fn new(cache_count: usize, groups: Vec<Vec<CacheId>>) -> Result<Self, GroupMapError> {
        let mut group_of = vec![usize::MAX; cache_count];
        for (g, members) in groups.iter().enumerate() {
            if members.is_empty() {
                return Err(GroupMapError::EmptyGroup { group: g });
            }
            for &c in members {
                if c.index() >= cache_count {
                    return Err(GroupMapError::OutOfRange(c));
                }
                if group_of[c.index()] != usize::MAX {
                    return Err(GroupMapError::Duplicate(c));
                }
                group_of[c.index()] = g;
            }
        }
        if let Some(idx) = group_of.iter().position(|&g| g == usize::MAX) {
            return Err(GroupMapError::Unassigned(CacheId(idx)));
        }
        let peers = (0..cache_count)
            .map(|c| {
                groups[group_of[c]]
                    .iter()
                    .copied()
                    .filter(|&p| p != CacheId(c))
                    .collect()
            })
            .collect();
        Ok(GroupMap {
            groups,
            group_of,
            peers,
        })
    }

    /// Puts every cache in one singleton group: no cooperation. The
    /// "group size 1" end of Figure 3.
    pub fn singletons(cache_count: usize) -> Self {
        let groups: Vec<Vec<CacheId>> = (0..cache_count).map(|c| vec![CacheId(c)]).collect();
        GroupMap::new(cache_count, groups).expect("singleton partition is valid")
    }

    /// Puts every cache in one big group — the "group size N" end of
    /// Figure 3.
    ///
    /// # Panics
    ///
    /// Panics if `cache_count == 0`.
    pub fn one_group(cache_count: usize) -> Self {
        assert!(cache_count > 0, "need at least one cache");
        let groups = vec![(0..cache_count).map(CacheId).collect()];
        GroupMap::new(cache_count, groups).expect("single partition is valid")
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of caches.
    pub fn cache_count(&self) -> usize {
        self.group_of.len()
    }

    /// The groups, as given at construction.
    pub fn groups(&self) -> &[Vec<CacheId>] {
        &self.groups
    }

    /// Index of the group containing `cache`.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    pub fn group_of(&self, cache: CacheId) -> usize {
        self.group_of[cache.index()]
    }

    /// The other members of `cache`'s group.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    pub fn peers(&self, cache: CacheId) -> &[CacheId] {
        &self.peers[cache.index()]
    }

    /// Mean group size.
    pub fn mean_group_size(&self) -> f64 {
        self.cache_count() as f64 / self.group_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(ids: &[usize]) -> Vec<CacheId> {
        ids.iter().copied().map(CacheId).collect()
    }

    #[test]
    fn valid_partition_builds() {
        let map = GroupMap::new(4, vec![cid(&[0, 1]), cid(&[2, 3])]).unwrap();
        assert_eq!(map.group_count(), 2);
        assert_eq!(map.cache_count(), 4);
        assert_eq!(map.group_of(CacheId(3)), 1);
        assert_eq!(map.peers(CacheId(1)), &[CacheId(0)]);
        assert_eq!(map.mean_group_size(), 2.0);
    }

    #[test]
    fn rejects_unassigned() {
        let err = GroupMap::new(3, vec![cid(&[0, 1])]).unwrap_err();
        assert_eq!(err, GroupMapError::Unassigned(CacheId(2)));
    }

    #[test]
    fn rejects_duplicates() {
        let err = GroupMap::new(3, vec![cid(&[0, 1]), cid(&[1, 2])]).unwrap_err();
        assert_eq!(err, GroupMapError::Duplicate(CacheId(1)));
        let err2 = GroupMap::new(2, vec![cid(&[0, 0]), cid(&[1])]).unwrap_err();
        assert_eq!(err2, GroupMapError::Duplicate(CacheId(0)));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = GroupMap::new(2, vec![cid(&[0, 5])]).unwrap_err();
        assert_eq!(err, GroupMapError::OutOfRange(CacheId(5)));
    }

    #[test]
    fn rejects_empty_group() {
        let err = GroupMap::new(2, vec![cid(&[0, 1]), vec![]]).unwrap_err();
        assert_eq!(err, GroupMapError::EmptyGroup { group: 1 });
    }

    #[test]
    fn singletons_have_no_peers() {
        let map = GroupMap::singletons(3);
        assert_eq!(map.group_count(), 3);
        for c in 0..3 {
            assert!(map.peers(CacheId(c)).is_empty());
        }
    }

    #[test]
    fn one_group_has_all_peers() {
        let map = GroupMap::one_group(4);
        assert_eq!(map.group_count(), 1);
        assert_eq!(map.peers(CacheId(2)).len(), 3);
    }

    #[test]
    fn error_messages_name_the_cache() {
        assert!(GroupMapError::Unassigned(CacheId(7))
            .to_string()
            .contains("Ec7"));
    }
}
