//! Document→holder index for the cooperative-miss hot path.
//!
//! On every local miss the simulator asks each group peer whether it
//! holds a copy of the requested document. The naive path probes every
//! peer's cache map — a `BTreeMap` lookup per peer per miss, which
//! dominates trace replay for large groups. [`HolderIndex`] mirrors
//! cache *membership* in one compact bitset per document, so the
//! per-peer probe collapses to a bit test, and an entire group can be
//! ruled out with a handful of word intersections against a
//! precomputed peer mask ([`PeerMasks`]).
//!
//! The index tracks presence only. Freshness (origin version or TTL
//! lease) is still checked against the holding peer's actual cache
//! entry, so a lookup through the index returns exactly what a full
//! scan would: a set bit for a stale copy simply fails the freshness
//! check, and an absent bit short-circuits a probe that would have
//! returned "not held" anyway.

use crate::groups::GroupMap;
use ecg_topology::CacheId;
use ecg_workload::DocId;

/// One bitset of holding caches per document.
///
/// The caller (the simulation driver) is responsible for keeping the
/// index in sync with every membership change: inserts, policy
/// evictions, stale/expired drops, pushed invalidations, and crash
/// purges.
///
/// # Examples
///
/// ```
/// use ecg_sim::HolderIndex;
/// use ecg_topology::CacheId;
/// use ecg_workload::DocId;
///
/// let mut idx = HolderIndex::new(10, 70);
/// idx.set(DocId(3), CacheId(65));
/// assert!(idx.holds(DocId(3), CacheId(65)));
/// assert!(!idx.holds(DocId(3), CacheId(0)));
/// idx.clear_cache(CacheId(65));
/// assert_eq!(idx.holder_count(DocId(3)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HolderIndex {
    caches: usize,
    words_per_doc: usize,
    bits: Vec<u64>,
}

impl HolderIndex {
    /// Creates an empty index for `docs` documents over `caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `caches == 0`.
    pub fn new(docs: usize, caches: usize) -> Self {
        assert!(caches > 0, "need at least one cache");
        let words_per_doc = caches.div_ceil(64);
        HolderIndex {
            caches,
            words_per_doc,
            bits: vec![0; docs * words_per_doc],
        }
    }

    fn locate(&self, doc: DocId, cache: CacheId) -> (usize, u64) {
        assert!(cache.index() < self.caches, "cache {cache} out of range");
        let word = doc.index() * self.words_per_doc + cache.index() / 64;
        (word, 1u64 << (cache.index() % 64))
    }

    /// Marks `cache` as holding a copy of `doc`.
    ///
    /// # Panics
    ///
    /// Panics if `doc` or `cache` is out of range.
    pub fn set(&mut self, doc: DocId, cache: CacheId) {
        let (word, mask) = self.locate(doc, cache);
        self.bits[word] |= mask;
    }

    /// Marks `cache` as no longer holding `doc`. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `doc` or `cache` is out of range.
    pub fn clear(&mut self, doc: DocId, cache: CacheId) {
        let (word, mask) = self.locate(doc, cache);
        self.bits[word] &= !mask;
    }

    /// Does `cache` hold a copy of `doc` (fresh or not)?
    ///
    /// # Panics
    ///
    /// Panics if `doc` or `cache` is out of range.
    pub fn holds(&self, doc: DocId, cache: CacheId) -> bool {
        let (word, mask) = self.locate(doc, cache);
        self.bits[word] & mask != 0
    }

    /// Drops `cache` from every document's holder set — the crash/purge
    /// path. One strided pass over the bit words.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    pub fn clear_cache(&mut self, cache: CacheId) {
        assert!(cache.index() < self.caches, "cache {cache} out of range");
        let mask = !(1u64 << (cache.index() % 64));
        let mut word = cache.index() / 64;
        while word < self.bits.len() {
            self.bits[word] &= mask;
            word += self.words_per_doc;
        }
    }

    /// The raw bit words of `doc`'s holder set.
    ///
    /// # Panics
    ///
    /// Panics if `doc` is out of range.
    pub fn doc_words(&self, doc: DocId) -> &[u64] {
        let start = doc.index() * self.words_per_doc;
        &self.bits[start..start + self.words_per_doc]
    }

    /// Does any cache selected by `mask` (e.g. a [`PeerMasks`] row) hold
    /// a copy of `doc`? The group-wide early-out on the miss path.
    ///
    /// # Panics
    ///
    /// Panics if `doc` is out of range.
    pub fn any_intersecting(&self, doc: DocId, mask: &[u64]) -> bool {
        self.doc_words(doc)
            .iter()
            .zip(mask)
            .any(|(a, b)| a & b != 0)
    }

    /// Number of caches holding a copy of `doc`.
    ///
    /// # Panics
    ///
    /// Panics if `doc` is out of range.
    pub fn holder_count(&self, doc: DocId) -> usize {
        self.doc_words(doc)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

/// Precomputed per-cache bitmask of that cache's group peers, laid out
/// to line up word-for-word with [`HolderIndex::doc_words`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerMasks {
    words_per: usize,
    masks: Vec<u64>,
}

impl PeerMasks {
    /// Builds the peer masks for a group partition.
    pub fn from_groups(groups: &GroupMap) -> Self {
        let n = groups.cache_count();
        let words_per = n.div_ceil(64);
        let mut masks = vec![0u64; n * words_per];
        for c in 0..n {
            for &p in groups.peers(CacheId(c)) {
                masks[c * words_per + p.index() / 64] |= 1 << (p.index() % 64);
            }
        }
        PeerMasks { words_per, masks }
    }

    /// The peer mask of `cache`.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    pub fn mask(&self, cache: CacheId) -> &[u64] {
        let start = cache.index() * self.words_per;
        &self.masks[start..start + self.words_per]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_holds_roundtrip() {
        let mut idx = HolderIndex::new(4, 130);
        assert!(!idx.holds(DocId(2), CacheId(129)));
        idx.set(DocId(2), CacheId(129));
        idx.set(DocId(2), CacheId(0));
        assert!(idx.holds(DocId(2), CacheId(129)));
        assert!(idx.holds(DocId(2), CacheId(0)));
        assert!(!idx.holds(DocId(3), CacheId(0)));
        assert_eq!(idx.holder_count(DocId(2)), 2);
        idx.clear(DocId(2), CacheId(0));
        idx.clear(DocId(2), CacheId(0)); // idempotent
        assert!(!idx.holds(DocId(2), CacheId(0)));
        assert_eq!(idx.holder_count(DocId(2)), 1);
    }

    #[test]
    fn clear_cache_strides_over_all_docs() {
        let mut idx = HolderIndex::new(5, 100);
        for d in 0..5 {
            idx.set(DocId(d), CacheId(70));
            idx.set(DocId(d), CacheId(1));
        }
        idx.clear_cache(CacheId(70));
        for d in 0..5 {
            assert!(!idx.holds(DocId(d), CacheId(70)));
            assert!(idx.holds(DocId(d), CacheId(1)));
        }
    }

    #[test]
    fn peer_masks_select_exactly_the_peers() {
        let groups =
            GroupMap::new(70, vec![(0..69).map(CacheId).collect(), vec![CacheId(69)]]).unwrap();
        let masks = PeerMasks::from_groups(&groups);
        let mut idx = HolderIndex::new(1, 70);

        // A copy on a peer is visible through the mask.
        idx.set(DocId(0), CacheId(68));
        assert!(idx.any_intersecting(DocId(0), masks.mask(CacheId(3))));
        // A cache's own copy is not a *peer* copy.
        assert!(!idx.any_intersecting(DocId(0), masks.mask(CacheId(68))));
        // The singleton has no peers at all.
        assert!(!idx.any_intersecting(DocId(0), masks.mask(CacheId(69))));

        // A copy on the singleton is invisible to the big group.
        idx.clear(DocId(0), CacheId(68));
        idx.set(DocId(0), CacheId(69));
        assert!(!idx.any_intersecting(DocId(0), masks.mask(CacheId(3))));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cache_panics() {
        let mut idx = HolderIndex::new(1, 8);
        idx.set(DocId(0), CacheId(8));
    }
}
