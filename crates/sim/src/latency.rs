//! The network latency model.
//!
//! The simulator charges each protocol step analytically from the
//! ground-truth RTT matrix:
//!
//! * a control round trip (ICP query + reply) costs one RTT;
//! * a document transfer costs one RTT (request + first byte) plus the
//!   serialization time `size / bandwidth`.
//!
//! This matches the paper's definition of interaction cost — "the cost of
//! transferring an average sized document between edge caches" — as a
//! latency that grows with both network distance and document size.

/// Link bandwidth model used for document transfers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    bandwidth_bytes_per_ms: f64,
    local_hit_ms: f64,
    origin_processing_ms: f64,
    peer_query_cost_ms: f64,
}

impl Default for LatencyModel {
    /// 10 Mbit/s effective per-transfer bandwidth (1 250 bytes/ms), a
    /// 0.2 ms local-hit cost, 2 ms of origin processing (dynamic pages
    /// are generated, not just read), and 0.05 ms of per-peer query
    /// fan-out cost.
    fn default() -> Self {
        LatencyModel {
            bandwidth_bytes_per_ms: 1_250.0,
            local_hit_ms: 0.2,
            origin_processing_ms: 2.0,
            peer_query_cost_ms: 0.05,
        }
    }
}

impl LatencyModel {
    /// Creates the default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the effective transfer bandwidth in Mbit/s.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is not finite and positive.
    pub fn bandwidth_mbps(mut self, mbps: f64) -> Self {
        assert!(mbps.is_finite() && mbps > 0.0, "bandwidth must be positive");
        self.bandwidth_bytes_per_ms = mbps * 1_000_000.0 / 8.0 / 1_000.0;
        self
    }

    /// Sets the latency charged for a local cache hit.
    pub fn local_hit_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "latency must be >= 0");
        self.local_hit_ms = ms;
        self
    }

    /// Sets the server-side processing time added to origin fetches.
    pub fn origin_processing_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "latency must be >= 0");
        self.origin_processing_ms = ms;
        self
    }

    /// Sets the per-peer cost of fanning a cooperative query out to the
    /// group (serialization + protocol processing per member).
    ///
    /// This is the knob that makes *group interaction cost* grow with
    /// group size: every local miss pays `peers × cost` before any
    /// reply can resolve it. Set it to `0` to model free fan-out.
    pub fn peer_query_cost_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "latency must be >= 0");
        self.peer_query_cost_ms = ms;
        self
    }

    /// Latency of serving a request from the local cache.
    pub fn local_hit(&self) -> f64 {
        self.local_hit_ms
    }

    /// Cost of fanning a query out to `peer_count` group members.
    pub fn query_fanout(&self, peer_count: usize) -> f64 {
        self.peer_query_cost_ms * peer_count as f64
    }

    /// Latency of one control round trip (query + reply) over a link
    /// with the given RTT.
    pub fn control_round_trip(&self, rtt_ms: f64) -> f64 {
        rtt_ms
    }

    /// Latency of transferring `size_bytes` over a link with the given
    /// RTT: one RTT of protocol overhead plus serialization time.
    pub fn transfer(&self, rtt_ms: f64, size_bytes: u64) -> f64 {
        rtt_ms + size_bytes as f64 / self.bandwidth_bytes_per_ms
    }

    /// Latency of fetching `size_bytes` from the origin server over the
    /// given RTT, including origin processing.
    pub fn origin_fetch(&self, rtt_ms: f64, size_bytes: u64) -> f64 {
        self.origin_processing_ms + self.transfer(rtt_ms, size_bytes)
    }

    /// The paper's pairwise *interaction cost*: transferring an
    /// average-sized document between two caches with the given RTT.
    pub fn interaction_cost(&self, rtt_ms: f64, avg_doc_bytes: f64) -> f64 {
        rtt_ms + avg_doc_bytes / self.bandwidth_bytes_per_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_adds_serialization_time() {
        let m = LatencyModel::default().bandwidth_mbps(8.0); // 1000 B/ms
        assert!((m.transfer(10.0, 5_000) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn origin_fetch_includes_processing() {
        let m = LatencyModel::default()
            .bandwidth_mbps(8.0)
            .origin_processing_ms(3.0);
        assert!((m.origin_fetch(10.0, 1_000) - 14.0).abs() < 1e-9);
    }

    #[test]
    fn control_round_trip_is_one_rtt() {
        let m = LatencyModel::default();
        assert_eq!(m.control_round_trip(17.5), 17.5);
    }

    #[test]
    fn interaction_cost_grows_with_rtt_and_size() {
        let m = LatencyModel::default();
        assert!(m.interaction_cost(20.0, 8_192.0) > m.interaction_cost(10.0, 8_192.0));
        assert!(m.interaction_cost(10.0, 80_000.0) > m.interaction_cost(10.0, 8_192.0));
    }

    #[test]
    fn bandwidth_mbps_converts_correctly() {
        // 10 Mbit/s = 10_000_000 bits/s = 1_250_000 bytes/s = 1250 B/ms.
        let m = LatencyModel::default().bandwidth_mbps(10.0);
        assert!((m.transfer(0.1, 1_250) - 1.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        let _ = LatencyModel::default().bandwidth_mbps(0.0);
    }
}
