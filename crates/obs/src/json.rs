//! Minimal deterministic JSON emission helpers.
//!
//! The workspace has no serde; every exporter hand-writes JSON. These
//! helpers keep escaping and float formatting in one place. `f64`
//! values are emitted with Rust's `Display`, the shortest decimal that
//! round-trips — identical across platforms, so equal values always
//! serialize to equal bytes.

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` as a JSON number.
///
/// # Panics
///
/// Panics on NaN or infinity — neither is valid JSON, and no
/// deterministic metric should produce one.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    assert!(v.is_finite(), "non-finite value {v} cannot be serialized");
    out.push_str(&v.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str_literal(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_round_trip_shortest() {
        let mut s = String::new();
        push_f64(&mut s, 0.1);
        s.push(' ');
        push_f64(&mut s, 3.0);
        assert_eq!(s, "0.1 3");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
    }
}
