//! Named counters, gauges, and histograms with stable export order.

use std::collections::BTreeMap;

use crate::histogram::Histogram;
use crate::json::{push_f64, push_str_literal};

/// A registry of named metrics.
///
/// Names follow the workspace convention of dotted lowercase paths
/// (`component.metric`, e.g. `kmeans.pruned`). Storage is `BTreeMap`,
/// so exports iterate in sorted-name order and are byte-stable.
///
/// # Examples
///
/// ```
/// use ecg_obs::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.inc("probe.sent");
/// m.add("probe.sent", 4);
/// m.set_gauge("sim.queue.max_depth", 17.0);
/// m.observe("probe.rtt_ms", 42.0);
/// assert_eq!(m.counter("probe.sent"), 5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments the counter `name` by one (creating it at zero).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.entry_counter(name) += delta;
    }

    fn entry_counter(&mut self, name: &str) -> &mut u64 {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_owned(), 0);
        }
        self.counters.get_mut(name).expect("counter just inserted")
    }

    /// Sets the gauge `name` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        assert!(value.is_finite(), "gauge {name} set to non-finite {value}");
        self.gauges.insert(name.to_owned(), value);
    }

    /// Raises the gauge `name` to `value` if `value` exceeds the
    /// current reading (high-water-mark semantics; creates the gauge
    /// if absent).
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn max_gauge(&mut self, name: &str, value: f64) {
        assert!(value.is_finite(), "gauge {name} set to non-finite {value}");
        match self.gauges.get_mut(name) {
            Some(g) if *g >= value => {}
            Some(g) => *g = value,
            None => {
                self.gauges.insert(name.to_owned(), value);
            }
        }
    }

    /// Records `value` into the histogram `name`, creating it with the
    /// default bucket layout if absent.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn observe(&mut self, name: &str, value: f64) {
        if !self.histograms.contains_key(name) {
            self.histograms
                .insert(name.to_owned(), Histogram::default());
        }
        self.histograms
            .get_mut(name)
            .expect("histogram just inserted")
            .record(value);
    }

    /// Merges an externally built histogram into the histogram `name`
    /// (creating a same-shaped empty one if absent).
    ///
    /// # Panics
    ///
    /// Panics if an existing histogram under `name` has a different
    /// bucket layout.
    pub fn merge_histogram(&mut self, name: &str, hist: &Histogram) {
        if !self.histograms.contains_key(name) {
            self.histograms.insert(name.to_owned(), hist.clone());
            return;
        }
        self.histograms
            .get_mut(name)
            .expect("histogram just checked")
            .merge(hist);
    }

    /// Reads the counter `name` (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads the gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Borrows the histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Returns `true` if no metric has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry into this one: counters add, gauges take
    /// the maximum (high-water mark across tasks), histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, delta) in &other.counters {
            *self.entry_counter(name) += delta;
        }
        for (name, value) in &other.gauges {
            self.max_gauge(name, *value);
        }
        for (name, hist) in &other.histograms {
            self.merge_histogram(name, hist);
        }
    }

    /// Appends the registry as a JSON object
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_literal(out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_literal(out, name);
            out.push(':');
            push_f64(out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_literal(out, name);
            out.push(':');
            h.write_json(out);
        }
        out.push_str("}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("absent"), 0);
        m.inc("x");
        m.add("x", 9);
        assert_eq!(m.counter("x"), 10);
    }

    #[test]
    fn max_gauge_keeps_high_water_mark() {
        let mut m = MetricsRegistry::new();
        m.max_gauge("depth", 3.0);
        m.max_gauge("depth", 1.0);
        assert_eq!(m.gauge("depth"), Some(3.0));
        m.max_gauge("depth", 7.5);
        assert_eq!(m.gauge("depth"), Some(7.5));
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let mut a = MetricsRegistry::new();
        a.inc("c");
        a.set_gauge("g", 1.0);
        a.observe("h", 10.0);
        let mut b = MetricsRegistry::new();
        b.add("c", 4);
        b.set_gauge("g", 5.0);
        b.observe("h", 20.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.gauge("g"), Some(5.0));
        assert_eq!(a.histogram("h").map(|h| h.count()), Some(2));
    }

    #[test]
    fn json_export_is_sorted_by_name() {
        let mut m = MetricsRegistry::new();
        m.inc("z.last");
        m.inc("a.first");
        m.inc("m.mid");
        let mut s = String::new();
        m.write_json(&mut s);
        let a = s.find("a.first").expect("a.first present");
        let mid = s.find("m.mid").expect("m.mid present");
        let z = s.find("z.last").expect("z.last present");
        assert!(a < mid && mid < z, "{s}");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_gauge_panics() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("g", f64::INFINITY);
    }
}
