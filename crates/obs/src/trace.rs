//! Bounded ring-buffer structured event trace.
//!
//! Each event carries a deterministic timestamp `t` (simulated
//! milliseconds or an iteration/operation counter — never wall clock),
//! a component, a kind, and a small list of named fields. When the ring
//! fills, the oldest events are dropped and counted, so memory stays
//! bounded no matter how long the run.

use std::collections::VecDeque;

use crate::json::{push_f64, push_str_literal};

/// One field value attached to a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer field.
    U64(u64),
    /// A finite floating-point field.
    F64(f64),
    /// A static string field (event vocabularies are compile-time).
    Str(&'static str),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    fn write_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => push_f64(out, *v),
            FieldValue::Str(s) => push_str_literal(out, s),
        }
    }

    fn render(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::F64(v) => v.to_string(),
            FieldValue::Str(s) => (*s).to_owned(),
        }
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global sequence number (monotone across ring wraps).
    pub seq: u64,
    /// Deterministic timestamp: sim-time in ms or an iteration count.
    pub t: f64,
    /// Emitting component, e.g. `"sim"` or `"kmeans"`.
    pub component: &'static str,
    /// Event kind within the component, e.g. `"crash"`.
    pub kind: &'static str,
    /// Named payload fields, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceEvent {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"t\":");
        push_f64(out, self.t);
        out.push_str(",\"component\":");
        push_str_literal(out, self.component);
        out.push_str(",\"kind\":");
        push_str_literal(out, self.kind);
        out.push_str(",\"fields\":{");
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_literal(out, name);
            out.push(':');
            value.write_json(out);
        }
        out.push_str("}}");
    }
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// # Examples
///
/// ```
/// use ecg_obs::EventTrace;
///
/// let mut trace = EventTrace::new(2);
/// trace.push(0.0, "demo", "first", vec![]);
/// trace.push(1.0, "demo", "second", vec![("n", 1u64.into())]);
/// trace.push(2.0, "demo", "third", vec![]);
/// assert_eq!(trace.len(), 2); // "first" was evicted
/// assert_eq!(trace.dropped(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EventTrace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl EventTrace {
    /// Creates an empty trace holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        EventTrace {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn push(
        &mut self,
        t: f64,
        component: &'static str,
        kind: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            seq: self.next_seq,
            t,
            component,
            kind,
            fields,
        });
        self.next_seq += 1;
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events were evicted by ring wrap (including evictions
    /// inherited through [`EventTrace::merge`]).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over the retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Appends another trace's retained events (renumbering their
    /// sequence counters into this trace's stream) and inherits its
    /// drop count. Merging per-task traces in task order keeps the
    /// combined stream deterministic.
    pub fn merge(&mut self, other: &EventTrace) {
        for event in &other.events {
            self.push(event.t, event.component, event.kind, event.fields.clone());
        }
        self.dropped += other.dropped;
    }

    /// Renders the retained events as JSON lines (one event object per
    /// line, trailing newline after each).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            event.write_json(&mut out);
            out.push('\n');
        }
        out
    }

    /// Renders the retained events as an aligned text table.
    pub fn to_table(&self) -> String {
        let header = ["seq", "t", "component", "kind", "fields"];
        let mut rows: Vec<[String; 5]> = Vec::with_capacity(self.events.len());
        for e in &self.events {
            let fields = e
                .fields
                .iter()
                .map(|(name, value)| format!("{name}={}", value.render()))
                .collect::<Vec<_>>()
                .join(" ");
            rows.push([
                e.seq.to_string(),
                e.t.to_string(),
                e.component.to_owned(),
                e.kind.to_owned(),
                fields,
            ]);
        }
        let mut widths = header.map(str::len);
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String; 5]| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                // Left-align: pad all but the last column.
                if i + 1 < cells.len() {
                    for _ in cell.len()..w {
                        out.push(' ');
                    }
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &header.map(str::to_owned));
        for row in &rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Appends the trace as a JSON object
    /// `{"capacity":..,"recorded":..,"dropped":..,"events":[...]}`.
    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str("{\"capacity\":");
        out.push_str(&self.capacity.to_string());
        out.push_str(",\"recorded\":");
        out.push_str(&self.next_seq.to_string());
        out.push_str(",\"dropped\":");
        out.push_str(&self.dropped.to_string());
        out.push_str(",\"events\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            event.write_json(out);
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut trace = EventTrace::new(3);
        for i in 0..10u64 {
            trace.push(i as f64, "c", "tick", vec![("i", i.into())]);
        }
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.dropped(), 7);
        let seqs: Vec<u64> = trace.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn merge_renumbers_and_inherits_drops() {
        let mut a = EventTrace::new(8);
        a.push(0.0, "a", "x", vec![]);
        let mut b = EventTrace::new(1);
        b.push(1.0, "b", "y", vec![]);
        b.push(2.0, "b", "z", vec![]); // evicts "y"
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.dropped(), 1);
        let seqs: Vec<u64> = a.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(a.events().last().map(|e| e.kind), Some("z"));
    }

    #[test]
    fn jsonl_and_json_shapes() {
        let mut trace = EventTrace::new(4);
        trace.push(1.5, "sim", "crash", vec![("cache", 3u64.into())]);
        assert_eq!(
            trace.to_jsonl(),
            "{\"seq\":0,\"t\":1.5,\"component\":\"sim\",\"kind\":\"crash\",\
             \"fields\":{\"cache\":3}}\n"
        );
        let mut out = String::new();
        trace.write_json(&mut out);
        assert!(out.starts_with("{\"capacity\":4,\"recorded\":1,\"dropped\":0,"));
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut trace = EventTrace::new(4);
        trace.push(0.0, "maintenance", "retire", vec![("cache", 12u64.into())]);
        trace.push(10.0, "sim", "up", vec![("ok", "yes".into())]);
        let table = trace.to_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("seq"));
        assert!(lines[1].contains("maintenance") && lines[1].contains("cache=12"));
        assert!(lines[2].contains("ok=yes"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = EventTrace::new(0);
    }
}
