//! Deterministic observability for the edge-cache-groups workspace.
//!
//! The experiment pipeline is seeded end to end and its outputs are
//! byte-gated (`run_all_experiments.sh --check`), so any telemetry
//! layered on top must be just as reproducible. This crate provides
//! three building blocks that never touch a wall clock or an RNG:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and geometric-bucket
//!   [`Histogram`]s, keyed by `BTreeMap` so every export iterates in a
//!   stable order.
//! * [`PhaseRecorder`] — nested phase spans accumulated into a tree.
//!   "Work" is whatever deterministic unit the instrumented code hands
//!   in (simulated milliseconds, K-means iterations, probes sent) —
//!   never elapsed real time.
//! * [`EventTrace`] — a bounded ring buffer of structured
//!   [`TraceEvent`]s with JSON-lines and aligned-table exporters.
//!
//! [`Obs`] bundles the three and serializes them with [`Obs::to_json`];
//! two runs with the same seeds produce byte-identical JSON (Rust
//! formats `f64` with the shortest round-trip representation, which is
//! platform-independent).
//!
//! ## Metric naming convention
//!
//! Dotted lowercase paths, `component.metric` (e.g. `kmeans.pruned`,
//! `probe.sent`, `sim.local_hits`); per-entity metrics zero-pad the
//! entity id so lexicographic `BTreeMap` order equals numeric order
//! (e.g. `sim.group.007.peer_hits`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod histogram;
mod json;
mod metrics;
mod span;
mod trace;

pub use histogram::Histogram;
pub use metrics::MetricsRegistry;
pub use span::{PhaseNode, PhaseRecorder, SpanGuard};
pub use trace::{EventTrace, FieldValue, TraceEvent};

/// Default capacity of the bundled [`EventTrace`] ring buffer.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// One observability bundle: metrics + phase tree + event trace.
///
/// Instrumented entry points across the workspace take
/// `Option<&mut Obs>`; passing `None` keeps the uninstrumented
/// behaviour (and cost) unchanged.
///
/// # Examples
///
/// ```
/// use ecg_obs::Obs;
///
/// let mut obs = Obs::new();
/// obs.metrics.inc("demo.counter");
/// {
///     let mut span = obs.phases.span("demo.phase");
///     span.add_work(3.0);
/// }
/// obs.trace.push(0.0, "demo", "start", vec![("n", 3u64.into())]);
/// let json = obs.to_json();
/// assert!(json.contains("\"demo.counter\":1"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Obs {
    /// Counters, gauges, histograms.
    pub metrics: MetricsRegistry,
    /// The phase-span tree.
    pub phases: PhaseRecorder,
    /// The bounded structured event trace.
    pub trace: EventTrace,
}

impl Obs {
    /// Creates an empty bundle with the default trace capacity.
    pub fn new() -> Self {
        Obs::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates an empty bundle with an explicit trace ring capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Obs {
            metrics: MetricsRegistry::new(),
            phases: PhaseRecorder::new(),
            trace: EventTrace::new(capacity),
        }
    }

    /// Merges another bundle into this one (counters add, gauges take
    /// the maximum, histograms accumulate, phase trees merge by name,
    /// trace events append in order). Merging per-task bundles in task
    /// order keeps the combined output deterministic even when the
    /// tasks themselves ran concurrently.
    pub fn merge(&mut self, other: &Obs) {
        self.metrics.merge(&other.metrics);
        self.phases.merge(&other.phases);
        self.trace.merge(&other.trace);
    }

    /// Serializes the bundle as one JSON object (no trailing newline).
    ///
    /// The layout is
    /// `{"schema":"ecg-obs/v1","metrics":{...},"phases":[...],"trace":{...}}`
    /// with every map in sorted-key order, so equal bundles always
    /// produce byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":\"ecg-obs/v1\",\"metrics\":");
        self.metrics.write_json(&mut out);
        out.push_str(",\"phases\":");
        self.phases.write_json(&mut out);
        out.push_str(",\"trace\":");
        self.trace.write_json(&mut out);
        out.push('}');
        out
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_json_is_deterministic_and_merge_accumulates() {
        let build = || {
            let mut o = Obs::new();
            o.metrics.inc("a.count");
            o.metrics.set_gauge("a.gauge", 2.5);
            o.metrics.observe("a.hist", 12.0);
            {
                let mut s = o.phases.span("outer");
                s.add_work(1.0);
                let mut inner = s.child("inner");
                inner.add_work(4.0);
            }
            o.trace.push(1.5, "c", "k", vec![("x", 7u64.into())]);
            o
        };
        let a = build();
        let b = build();
        assert_eq!(a.to_json(), b.to_json());

        let mut merged = build();
        merged.merge(&b);
        assert_eq!(merged.metrics.counter("a.count"), 2);
        assert_eq!(merged.trace.len(), 2);
        assert!(merged.to_json().starts_with("{\"schema\":\"ecg-obs/v1\""));
    }

    #[test]
    fn empty_bundle_serializes() {
        let o = Obs::default();
        let json = o.to_json();
        assert!(json.contains("\"counters\":{}"));
        assert!(json.contains("\"phases\":[]"));
    }
}
