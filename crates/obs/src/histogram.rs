//! Log-scale histograms with a fixed geometric bucket layout.
//!
//! Generalized from the simulator's latency histogram so every crate
//! shares one bucket layout: values are recorded into geometrically
//! spaced bins, so percentiles cost O(1) memory per run, independent of
//! sample count.

use crate::json::push_f64;

/// A histogram over `[min, max)` with geometrically spaced bins.
///
/// Values below the range land in the first bin, values above in the
/// overflow bin, so percentiles are always defined (with saturated
/// resolution at the edges). The default layout (256 bins over
/// 0.05 ms – 60 s) suits network latencies in milliseconds, but any
/// positive-ranged quantity works.
///
/// # Examples
///
/// ```
/// use ecg_obs::Histogram;
///
/// let mut h = Histogram::default();
/// for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// let p50 = h.percentile(0.5).unwrap();
/// assert!(p50 >= 2.0 && p50 <= 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Bin counts; the last entry is the overflow bin.
    bins: Vec<u64>,
    count: u64,
    /// Cached parameters: lower bound and per-bin growth factor (as
    /// integers-in-disguise they stay `Eq`-friendly via bit patterns).
    min_bits: u64,
    growth_bits: u64,
}

impl Default for Histogram {
    /// 256 bins from 0.05 to 60 000 — ample for latencies in ms.
    fn default() -> Self {
        Histogram::new(0.05, 60_000.0, 256)
    }
}

impl Histogram {
    /// Creates a histogram over `[min, max)` with `bins` geometric bins
    /// (plus one overflow bin).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min < max` and `bins >= 1`.
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && min > 0.0 && min < max,
            "invalid histogram range [{min}, {max})"
        );
        assert!(bins >= 1, "need at least one bin");
        let growth = (max / min).powf(1.0 / bins as f64);
        Histogram {
            bins: vec![0; bins + 1],
            count: 0,
            min_bits: min.to_bits(),
            growth_bits: growth.to_bits(),
        }
    }

    fn min(&self) -> f64 {
        f64::from_bits(self.min_bits)
    }

    fn growth(&self) -> f64 {
        f64::from_bits(self.growth_bits)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` before the first sample.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if the value is negative or not finite.
    pub fn record(&mut self, value: f64) {
        assert!(
            value.is_finite() && value >= 0.0,
            "sample must be finite and >= 0, got {value}"
        );
        let idx = self.bin_index(value);
        self.bins[idx] += 1;
        self.count += 1;
    }

    fn bin_index(&self, value: f64) -> usize {
        if value < self.min() {
            return 0;
        }
        let idx = (value / self.min()).ln() / self.growth().ln();
        (idx as usize).min(self.bins.len() - 1)
    }

    /// Lower edge of bin `idx` (the overflow bin's lower edge is the
    /// configured maximum).
    fn bin_lower(&self, idx: usize) -> f64 {
        self.min() * self.growth().powi(idx as i32)
    }

    /// The `p`-quantile (`p` in `[0, 1]`) as the upper edge of the bin
    /// containing it, or `None` before the first sample.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bin_lower(idx + 1));
            }
        }
        Some(self.bin_lower(self.bins.len()))
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different shapes.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bins.len(),
            other.bins.len(),
            "histogram shape mismatch"
        );
        assert_eq!(self.min_bits, other.min_bits, "histogram range mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Appends the export summary (`count` plus p50/p90/p99/max bucket
    /// edges) as a JSON object.
    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str("{\"count\":");
        out.push_str(&self.count.to_string());
        for (label, p) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("max", 1.0)] {
            out.push_str(",\"");
            out.push_str(label);
            out.push_str("\":");
            match self.percentile(p) {
                Some(v) => push_f64(out, v),
                None => out.push_str("null"),
            }
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::default();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), None);
    }

    #[test]
    fn percentiles_bracket_true_quantiles() {
        let mut h = Histogram::new(0.1, 10_000.0, 400);
        // 1..=1000 ms uniformly.
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p50 = h.percentile(0.5).unwrap();
        let p95 = h.percentile(0.95).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!((p50 / 500.0 - 1.0).abs() < 0.1, "p50 {p50}");
        assert!((p95 / 950.0 - 1.0).abs() < 0.1, "p95 {p95}");
        assert!((p99 / 990.0 - 1.0).abs() < 0.1, "p99 {p99}");
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let mut h = Histogram::default();
        for i in 0..500 {
            h.record((i % 97) as f64 + 0.5);
        }
        let mut prev = 0.0;
        for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.percentile(p).unwrap();
            assert!(v >= prev, "p{p}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn out_of_range_values_saturate() {
        let mut h = Histogram::new(1.0, 100.0, 10);
        h.record(0.001); // below range → first bin
        h.record(1e6); // above range → overflow bin
        assert_eq!(h.count(), 2);
        assert!(h.percentile(0.01).unwrap() <= 2.0);
        assert!(h.percentile(1.0).unwrap() >= 100.0);
    }

    #[test]
    fn bucket_edges_are_geometric_and_assign_consistently() {
        // With min 1, max 16, 4 bins the edges are exactly 1, 2, 4, 8,
        // 16: a value must land in the bin whose [lower, upper) range
        // contains it, and the percentile for that single sample must
        // report the bin's upper edge.
        let edges = [1.0, 2.0, 4.0, 8.0, 16.0];
        for (bin, window) in edges.windows(2).enumerate() {
            let (lo, hi) = (window[0], window[1]);
            for v in [lo, (lo + hi) / 2.0, hi * (1.0 - 1e-12)] {
                let mut h = Histogram::new(1.0, 16.0, 4);
                h.record(v);
                let p = h.percentile(0.5).unwrap();
                assert!(
                    (p - hi).abs() < 1e-9 * hi,
                    "value {v} in bin {bin}: upper edge {p}, expected {hi}"
                );
            }
        }
        // At or above max: overflow bin, upper edge = max * growth.
        let mut h = Histogram::new(1.0, 16.0, 4);
        h.record(16.0);
        assert!(h.percentile(1.0).unwrap() >= 16.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for i in 1..=10 {
            a.record(i as f64);
            b.record((i * 100) as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 20);
        // Median sits between the two clusters.
        let p50 = a.percentile(0.5).unwrap();
        assert!((10.0..=110.0).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn zero_value_is_allowed() {
        let mut h = Histogram::default();
        h.record(0.0);
        assert_eq!(h.count(), 1);
        assert!(h.percentile(0.5).is_some());
    }

    #[test]
    fn json_summary_shape() {
        let mut h = Histogram::default();
        let mut s = String::new();
        h.write_json(&mut s);
        assert!(
            s.contains("\"count\":0") && s.contains("\"p50\":null"),
            "{s}"
        );
        h.record(5.0);
        s.clear();
        h.write_json(&mut s);
        assert!(s.contains("\"count\":1") && !s.contains("null"), "{s}");
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn bad_range_panics() {
        let _ = Histogram::new(10.0, 1.0, 8);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_panics() {
        let mut h = Histogram::default();
        h.record(1.0);
        let _ = h.percentile(1.5);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = Histogram::new(1.0, 100.0, 8);
        let b = Histogram::new(1.0, 100.0, 16);
        a.merge(&b);
    }
}
