//! Nested phase spans accumulated into a deterministic timing tree.
//!
//! Spans never read a clock: "work" is whatever deterministic unit the
//! instrumented code hands in (simulated milliseconds, K-means
//! iterations, probes sent). Two identical seeded runs therefore build
//! identical trees.

use crate::json::{push_f64, push_str_literal};

/// One node of the phase tree: a named phase with call count,
/// accumulated work, and child phases.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseNode {
    name: String,
    calls: u64,
    work: f64,
    children: Vec<PhaseNode>,
}

impl PhaseNode {
    fn new(name: &str) -> Self {
        PhaseNode {
            name: name.to_owned(),
            calls: 0,
            work: 0.0,
            children: Vec::new(),
        }
    }

    /// The phase name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How many times this phase was entered.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Total work accumulated in this phase (excluding children).
    pub fn work(&self) -> f64 {
        self.work
    }

    /// Child phases, in first-entered order.
    pub fn children(&self) -> &[PhaseNode] {
        &self.children
    }

    fn find_or_create(children: &mut Vec<PhaseNode>, name: &str) -> usize {
        if let Some(idx) = children.iter().position(|c| c.name == name) {
            return idx;
        }
        children.push(PhaseNode::new(name));
        children.len() - 1
    }

    fn merge_into(&mut self, other: &PhaseNode) {
        self.calls += other.calls;
        self.work += other.work;
        for child in &other.children {
            let idx = PhaseNode::find_or_create(&mut self.children, &child.name);
            self.children[idx].merge_into(child);
        }
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        push_str_literal(out, &self.name);
        out.push_str(",\"calls\":");
        out.push_str(&self.calls.to_string());
        out.push_str(",\"work\":");
        push_f64(out, self.work);
        out.push_str(",\"children\":[");
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.write_json(out);
        }
        out.push_str("]}");
    }
}

/// Records nested phase spans into a tree of [`PhaseNode`]s.
///
/// Entering the same phase name twice under the same parent reuses the
/// node (calls increment, work accumulates), so loops produce one node
/// per phase, not one per iteration.
///
/// # Examples
///
/// ```
/// use ecg_obs::PhaseRecorder;
///
/// let mut rec = PhaseRecorder::new();
/// for iter in 0..3 {
///     let mut span = rec.span("kmeans.iter");
///     span.add_work(1.0);
///     let _ = iter;
/// }
/// assert_eq!(rec.roots()[0].calls(), 3);
/// assert_eq!(rec.roots()[0].work(), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseRecorder {
    roots: Vec<PhaseNode>,
    /// Path of child indices from `roots` down to the open span.
    stack: Vec<usize>,
}

impl PhaseRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        PhaseRecorder::default()
    }

    /// Top-level phases, in first-entered order.
    pub fn roots(&self) -> &[PhaseNode] {
        &self.roots
    }

    /// Opens the phase `name` under the currently open span (or at the
    /// root) and returns a guard that closes it on drop.
    pub fn span(&mut self, name: &str) -> SpanGuard<'_> {
        self.enter(name);
        SpanGuard { rec: self }
    }

    fn enter(&mut self, name: &str) {
        let children = match self.current_mut() {
            Some(node) => &mut node.children,
            None => &mut self.roots,
        };
        let idx = PhaseNode::find_or_create(children, name);
        children[idx].calls += 1;
        self.stack.push(idx);
    }

    fn exit(&mut self) {
        self.stack.pop().expect("exit without matching enter");
    }

    /// Adds `work` units to the currently open span.
    ///
    /// # Panics
    ///
    /// Panics if no span is open or `work` is not finite.
    fn add_work(&mut self, work: f64) {
        assert!(work.is_finite(), "span work must be finite, got {work}");
        let node = self.current_mut().expect("add_work outside any span");
        node.work += work;
    }

    fn current_mut(&mut self) -> Option<&mut PhaseNode> {
        let mut path = self.stack.iter();
        let first = *path.next()?;
        let mut node = &mut self.roots[first];
        for &idx in path {
            node = &mut node.children[idx];
        }
        Some(node)
    }

    /// Merges another recorder's tree into this one, matching phases by
    /// name at each level.
    pub fn merge(&mut self, other: &PhaseRecorder) {
        for root in &other.roots {
            let idx = PhaseNode::find_or_create(&mut self.roots, &root.name);
            self.roots[idx].merge_into(root);
        }
    }

    /// Appends the tree as a JSON array of nodes.
    pub(crate) fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, root) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            root.write_json(out);
        }
        out.push(']');
    }
}

/// RAII guard for an open phase span; closes the span on drop.
///
/// Create with [`PhaseRecorder::span`]; nest with [`SpanGuard::child`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    rec: &'a mut PhaseRecorder,
}

impl SpanGuard<'_> {
    /// Adds `work` units to this span.
    ///
    /// # Panics
    ///
    /// Panics if `work` is not finite.
    pub fn add_work(&mut self, work: f64) {
        self.rec.add_work(work);
    }

    /// Opens a nested span under this one. While the child guard is
    /// alive the parent guard is mutably borrowed, so spans always
    /// close innermost-first.
    pub fn child(&mut self, name: &str) -> SpanGuard<'_> {
        self.rec.span(name)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.rec.exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_a_tree_and_repeats_reuse_nodes() {
        let mut rec = PhaseRecorder::new();
        for _ in 0..2 {
            let mut outer = rec.span("outer");
            outer.add_work(1.0);
            {
                let mut a = outer.child("a");
                a.add_work(10.0);
            }
            {
                let mut b = outer.child("b");
                b.add_work(100.0);
                let mut deep = b.child("deep");
                deep.add_work(0.5);
            }
        }
        let roots = rec.roots();
        assert_eq!(roots.len(), 1);
        let outer = &roots[0];
        assert_eq!(
            (outer.name(), outer.calls(), outer.work()),
            ("outer", 2, 2.0)
        );
        assert_eq!(outer.children().len(), 2);
        let a = &outer.children()[0];
        let b = &outer.children()[1];
        assert_eq!((a.name(), a.calls(), a.work()), ("a", 2, 20.0));
        assert_eq!((b.name(), b.calls(), b.work()), ("b", 2, 200.0));
        assert_eq!(b.children()[0].work(), 1.0);
    }

    #[test]
    fn guards_close_in_reverse_order_of_creation() {
        let mut rec = PhaseRecorder::new();
        {
            let mut outer = rec.span("outer");
            let _inner = outer.child("inner");
            // inner drops first (end of scope), then outer.
        }
        // A new root-level span proves the stack fully unwound.
        {
            let mut top = rec.span("top");
            top.add_work(1.0);
        }
        assert_eq!(rec.roots().len(), 2);
        assert_eq!(rec.roots()[1].name(), "top");
    }

    #[test]
    fn merge_matches_by_name_recursively() {
        let build = |w: f64| {
            let mut rec = PhaseRecorder::new();
            let mut outer = rec.span("outer");
            outer.add_work(w);
            let mut inner = outer.child("inner");
            inner.add_work(2.0 * w);
            drop(inner);
            drop(outer);
            rec
        };
        let mut a = build(1.0);
        a.merge(&build(10.0));
        assert_eq!(a.roots().len(), 1);
        assert_eq!(a.roots()[0].work(), 11.0);
        assert_eq!(a.roots()[0].children()[0].work(), 22.0);
        assert_eq!(a.roots()[0].children()[0].calls(), 2);
    }

    #[test]
    fn json_shape() {
        let mut rec = PhaseRecorder::new();
        {
            let mut s = rec.span("p");
            s.add_work(1.5);
        }
        let mut out = String::new();
        rec.write_json(&mut out);
        assert_eq!(
            out,
            "[{\"name\":\"p\",\"calls\":1,\"work\":1.5,\"children\":[]}]"
        );
    }
}
