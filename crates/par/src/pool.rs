//! Persistent worker pool behind [`crate::par_map_with`].
//!
//! The first generation of this crate spawned fresh `std::thread::scope`
//! workers on every parallel call. That is correct but pays thread
//! creation and teardown on every K-means iteration, every feature-matrix
//! build, every GIC evaluation — tens of microseconds per call that
//! dominate once the kernels themselves are fast. This module replaces
//! the per-call spawns with one process-wide pool of persistent workers
//! that park on a condvar between jobs.
//!
//! Nothing about the determinism contract changes: the pool only affects
//! *scheduling*, and every kernel in this crate is already
//! scheduling-invariant (fixed chunk boundaries, input-order reduction,
//! self-scheduled atomic next-index). Workers have stable identities
//! (`ecg-par-0`, `ecg-par-1`, …) pinned for the process lifetime; they
//! are spawned lazily on first demand and grow monotonically up to
//! [`MAX_POOL_WORKERS`].
//!
//! # Design
//!
//! A job is a lifetime-erased `&(dyn Fn() + Sync)` plus a claim budget
//! (`slots`). Publishing a job wakes the pool; each worker that claims a
//! slot runs the *same* closure (the closure itself loops over a shared
//! atomic index, exactly as before). The submitting thread always
//! participates too, which makes the pool deadlock-free under nesting: an
//! inner parallel call issued from a pool worker makes progress even when
//! every other worker is busy, because unclaimed slots are never waited
//! on — only workers that actually claimed a slot are.
//!
//! # Safety
//!
//! The job closure borrows the caller's stack (work slots, output slots,
//! the atomic index), so handing it to `'static` workers erases its
//! lifetime. This is sound because [`run`] does not return until every
//! worker that claimed a slot has finished running the closure and no
//! further claims are possible (`slots` is zeroed under the state lock
//! before waiting): the borrow strictly outlives every use. Worker
//! panics are caught and re-raised on the submitting thread, and a panic
//! in the submitter's own participation still closes the job before
//! unwinding, so the erased borrow can never dangle.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};

/// Hard cap on persistent workers — far above any sane `ECG_THREADS`,
/// purely a runaway backstop.
const MAX_POOL_WORKERS: usize = 256;

/// A lifetime-erased pointer to a job closure. Sent to workers through
/// the pool state; validity is guaranteed by [`run`]'s completion wait.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are
// fine) and `run` keeps the referent alive until all claimed workers
// are done, so moving the pointer across threads is sound.
unsafe impl Send for TaskPtr {}

/// One published parallel call.
struct Job {
    id: u64,
    task: TaskPtr,
    /// Worker claims still available. Zeroed when the submitter closes
    /// the job, after which no worker may join.
    slots: usize,
    /// Workers currently inside the closure.
    active: usize,
    /// First worker panic, re-raised on the submitting thread.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

#[derive(Default)]
struct State {
    jobs: Vec<Job>,
    next_id: u64,
    workers: usize,
}

struct Pool {
    state: Mutex<State>,
    work_ready: Condvar,
    job_done: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State::default()),
        work_ready: Condvar::new(),
        job_done: Condvar::new(),
    })
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let (id, task) = {
            let mut st = pool.state.lock().expect("pool state lock");
            loop {
                if let Some(job) = st.jobs.iter_mut().find(|j| j.slots > 0) {
                    job.slots -= 1;
                    job.active += 1;
                    break (job.id, job.task);
                }
                st = pool.work_ready.wait(st).expect("pool state lock");
            }
        };
        // SAFETY: `run` holds the closure alive until this worker's
        // `active` decrement below is observed; the claim above happened
        // before the job could close.
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (*task.0)() }));
        let mut st = pool.state.lock().expect("pool state lock");
        if let Some(job) = st.jobs.iter_mut().find(|j| j.id == id) {
            job.active -= 1;
            if let Err(payload) = outcome {
                if job.panic.is_none() {
                    job.panic = Some(payload);
                }
            }
            if job.active == 0 {
                pool.job_done.notify_all();
            }
        }
    }
}

/// Runs `task` on the submitting thread plus up to `extra_workers` pool
/// workers, returning when every participant has finished. Panics from
/// any participant are re-raised here.
pub(crate) fn run(extra_workers: usize, task: &(dyn Fn() + Sync)) {
    if extra_workers == 0 {
        task();
        return;
    }
    let pool = pool();
    // SAFETY: lifetime erasure only — see the module-level Safety notes.
    // The completion wait below keeps the borrow alive past every use.
    let erased: &'static (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(task) };
    let id = {
        let mut st = pool.state.lock().expect("pool state lock");
        let want = extra_workers.min(MAX_POOL_WORKERS);
        while st.workers < want {
            let index = st.workers;
            std::thread::Builder::new()
                .name(format!("ecg-par-{index}"))
                .spawn(|| worker_loop(self::pool()))
                .expect("spawn pool worker");
            st.workers += 1;
        }
        let id = st.next_id;
        st.next_id += 1;
        st.jobs.push(Job {
            id,
            task: TaskPtr(erased as *const (dyn Fn() + Sync)),
            slots: extra_workers,
            active: 0,
            panic: None,
        });
        pool.work_ready.notify_all();
        id
    };

    // The submitter always participates — this is what makes nested
    // parallel calls deadlock-free when every pool worker is busy.
    let own = catch_unwind(AssertUnwindSafe(task));

    // Close the job (no new claims) and wait out the claimed workers.
    // Only then may the erased borrow end.
    let worker_panic = {
        let mut st = pool.state.lock().expect("pool state lock");
        loop {
            let pos = st
                .jobs
                .iter()
                .position(|j| j.id == id)
                .expect("job outlives its run call");
            st.jobs[pos].slots = 0;
            if st.jobs[pos].active == 0 {
                break st.jobs.swap_remove(pos).panic;
            }
            st = pool.job_done.wait(st).expect("pool state lock");
        }
    };

    if let Err(payload) = own {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use crate::par_map_with;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn pool_workers_are_persistent_and_named() {
        let names = Mutex::new(HashSet::new());
        for _ in 0..3 {
            let out = par_map_with((0..512).collect::<Vec<usize>>(), 4, |i| {
                if let Some(name) = std::thread::current().name() {
                    names.lock().unwrap().insert(name.to_string());
                }
                i * 2
            });
            assert_eq!(out, (0..512).map(|i| i * 2).collect::<Vec<_>>());
        }
        // Any worker that joined carries a stable ecg-par-N identity;
        // three calls at 4 threads can never have minted more than the 3
        // indices the widest single call wanted (workers persist instead
        // of respawning per call). Other tests share the process-wide
        // pool, so tolerate indices they may have spawned concurrently,
        // but the name shape itself must hold for every participant.
        let names = names.lock().unwrap();
        for name in names.iter() {
            if let Some(index) = name.strip_prefix("ecg-par-") {
                let index: usize = index.parse().expect("pool worker index");
                assert!(index < 256, "worker index {index} out of range");
            }
        }
    }

    #[test]
    fn nested_parallel_calls_do_not_deadlock() {
        let out = par_map_with((0..8).collect::<Vec<usize>>(), 4, |outer| {
            let inner = par_map_with((0..100).collect::<Vec<usize>>(), 4, move |i| i + outer);
            inner.into_iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8)
            .map(|outer| (0..100).map(|i| i + outer).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "intentional kernel panic")]
    fn worker_panic_propagates_to_the_caller() {
        let _ = par_map_with((0..64).collect::<Vec<usize>>(), 4, |i| {
            if i == 33 {
                panic!("intentional kernel panic");
            }
            i
        });
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        let poisoned = std::panic::catch_unwind(|| {
            par_map_with((0..64).collect::<Vec<usize>>(), 4, |i| {
                assert!(i != 10, "poison");
                i
            })
        });
        assert!(poisoned.is_err());
        // The pool must still serve jobs afterwards.
        let out = par_map_with((0..300).collect::<Vec<usize>>(), 4, |i| i + 1);
        assert_eq!(out, (1..=300).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_jobs_from_many_threads_complete() {
        std::thread::scope(|scope| {
            for t in 0..6usize {
                scope.spawn(move || {
                    let out = par_map_with((0..400).collect::<Vec<usize>>(), 3, move |i| i * t);
                    assert_eq!(out, (0..400).map(|i| i * t).collect::<Vec<_>>());
                });
            }
        });
    }
}
