//! Deterministic data-parallel kernels.
//!
//! Every hot loop in this workspace that fans out across threads goes
//! through this crate, and all of it obeys one contract: **results are
//! identical at any thread count**. The ingredients are
//!
//! 1. **Fixed chunk boundaries** — work is split at positions derived
//!    from the input length only ([`DEFAULT_CHUNK`]), never from the
//!    thread count, so any order-sensitive per-chunk value (an f64
//!    partial sum, a derived RNG stream) is computed over the same
//!    index ranges whether one thread runs or sixteen do.
//! 2. **Input-order reduction** — [`par_map`] and [`par_chunk_map`]
//!    return results in input/chunk order; callers fold partials in
//!    that order, so floating-point summation chains are fixed.
//! 3. **Derived RNG streams** — [`derive_seed`] turns one master seed
//!    into an independent per-item stream, so randomized per-item work
//!    consumes no shared generator and is scheduling-invariant.
//!
//! The worker pool itself is self-scheduling (an atomic next-index over
//! a process-wide pool of persistent workers — see the `pool` module),
//! which is
//! safe *because* nothing order-sensitive happens at scheduling
//! granularity. Workers park between calls instead of being respawned
//! per call, so a parallel call costs a condvar wake, not a thread
//! spawn.
//!
//! Thread count resolution, in precedence order: the programmatic
//! [`set_max_threads`] override (used by benchmark sweeps), the
//! `ECG_THREADS` environment variable, then
//! [`std::thread::available_parallelism`]. When one thread is resolved,
//! every entry point degrades to a plain sequential loop with no thread
//! spawns and no synchronization.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod pool;

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Fixed work-chunk length for [`chunk_ranges`] / [`par_chunk_map`].
///
/// Chunk boundaries depend only on the input length, never on the
/// thread count — the cornerstone of thread-count-invariant partial
/// reductions.
pub const DEFAULT_CHUNK: usize = 256;

/// Programmatic thread-count override; `0` means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the thread count for every kernel in this crate,
/// process-wide, taking precedence over `ECG_THREADS` and the host
/// parallelism. `None` removes the override.
///
/// Benchmark sweeps use this to measure 1→P scaling in one process.
/// Because every kernel is thread-count-invariant, flipping the
/// override concurrently with running kernels cannot change any
/// result, only its timing.
pub fn set_max_threads(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.map_or(0, |t| t.max(1)), Ordering::SeqCst);
}

/// Maximum worker threads a kernel may use: the [`set_max_threads`]
/// override if set, else a positive integer `ECG_THREADS` environment
/// variable, else the host's available parallelism.
///
/// # Examples
///
/// ```
/// ecg_par::set_max_threads(Some(3));
/// assert_eq!(ecg_par::max_threads(), 3);
/// ecg_par::set_max_threads(None);
/// assert!(ecg_par::max_threads() >= 1);
/// ```
pub fn max_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("ECG_THREADS") {
        if let Ok(t) = raw.trim().parse::<usize>() {
            if t >= 1 {
                return t;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// [`max_threads`] clamped to the number of work items (never zero):
/// spawning more workers than items is pure overhead.
pub fn threads_for(items: usize) -> usize {
    max_threads().min(items.max(1))
}

/// Applies `f` to every item on up to [`threads_for`]`(len)` worker
/// threads, returning results in input order.
///
/// Workers self-schedule items off a shared atomic index, so long and
/// short items balance automatically; the output order is the input
/// order regardless. With one resolved thread this is a plain
/// sequential `map` — no spawns, no locks.
///
/// # Panics
///
/// Propagates a panic from any worker.
///
/// # Examples
///
/// ```
/// let squares = ecg_par::par_map(vec![1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = threads_for(items.len());
    par_map_with(items, threads, f)
}

/// [`par_map`] with an explicit worker-thread count (still clamped to
/// the item count). Callers that expose a `threads` parameter of their
/// own delegate here.
///
/// # Panics
///
/// Panics if `threads == 0`; propagates a panic from any worker.
pub fn par_map_with<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let n = items.len();
    if threads == 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let threads = threads.min(n);
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    // The submitting thread plus `threads - 1` persistent pool workers
    // all run the same self-scheduling loop; `pool::run` returns once
    // every participant has drained out.
    let worker = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let item = work[i]
            .lock()
            .expect("work slot lock")
            .take()
            .expect("each slot is taken once");
        let result = f(item);
        *out[i].lock().expect("out slot lock") = Some(result);
    };
    pool::run(threads - 1, &worker);

    out.into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("out slot lock")
                .expect("every slot was filled")
        })
        .collect()
}

/// Splits `0..n` into consecutive ranges of [`DEFAULT_CHUNK`] (the last
/// may be shorter). The boundaries depend only on `n`.
pub fn chunk_ranges(n: usize) -> Vec<Range<usize>> {
    chunk_ranges_with(n, DEFAULT_CHUNK)
}

/// [`chunk_ranges`] with an explicit chunk length.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn chunk_ranges_with(n: usize, chunk: usize) -> Vec<Range<usize>> {
    assert!(chunk > 0, "chunk length must be positive");
    (0..n.div_ceil(chunk))
        .map(|c| c * chunk..((c + 1) * chunk).min(n))
        .collect()
}

/// Applies `f` to every fixed chunk of `0..n` in parallel, returning
/// per-chunk results **in chunk order** — the map half of an ordered
/// map-reduce. Folding the returned partials left-to-right gives a
/// reduction whose floating-point association is independent of the
/// thread count (it depends only on `n` via the chunk boundaries).
///
/// # Examples
///
/// ```
/// // An ordered chunked sum: same result at any thread count.
/// let partials = ecg_par::par_chunk_map(1000, |r| r.map(|i| i as f64).sum::<f64>());
/// let total: f64 = partials.into_iter().sum();
/// assert_eq!(total, 499_500.0);
/// ```
pub fn par_chunk_map<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(Range<usize>) -> U + Sync,
{
    par_map(chunk_ranges(n), f)
}

/// Derives an independent per-item RNG seed from a master seed using a
/// SplitMix64 finalizer — the same mixer `StdRng::seed_from_u64` uses
/// to expand seeds, so derived streams are as decorrelated as directly
/// seeded ones.
///
/// Parallel randomized kernels draw **one** value from the caller's
/// generator (the master seed), then give item `i` its own
/// `StdRng::seed_from_u64(derive_seed(master, i))` stream: per-item
/// output depends only on `(master, i)`, never on which thread ran the
/// item or in what order.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    // Golden-ratio stream separation, then a SplitMix64 finalizer.
    let mut z = master.wrapping_add((index.wrapping_add(1)).wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(items, |i| i * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn par_map_runs_closures_once_each() {
        let calls = AtomicU64::new(0);
        let out = par_map((0..257).collect::<Vec<usize>>(), |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out, (0..257).collect::<Vec<usize>>());
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let items: Vec<usize> = (0..503).collect();
        let seq = par_map_with(items.clone(), 1, |i| i * i);
        for threads in [2, 3, 8, 64] {
            assert_eq!(
                par_map_with(items.clone(), threads, |i| i * i),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = par_map_with(vec![1], 0, |x: i32| x);
    }

    #[test]
    fn chunk_ranges_tile_the_input_exactly() {
        for n in [0usize, 1, 255, 256, 257, 1000, 4096] {
            let ranges = chunk_ranges(n);
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next, "n={n}");
                assert!(r.end > r.start, "n={n}");
                assert!(r.end - r.start <= DEFAULT_CHUNK, "n={n}");
                next = r.end;
            }
            assert_eq!(next, n, "n={n}");
        }
    }

    #[test]
    fn chunk_boundaries_ignore_thread_count() {
        // The ranges are a pure function of n — no thread-count input
        // exists. Changing the override must not change them.
        let a = chunk_ranges(1027);
        set_max_threads(Some(7));
        let b = chunk_ranges(1027);
        set_max_threads(None);
        assert_eq!(a, b);
    }

    #[test]
    fn ordered_chunked_f64_sum_is_thread_count_invariant() {
        // Pathological summands where association visibly matters.
        let value = |i: usize| ((i as f64) * 1e10).sin() * 1e6 + 1e-6;
        let sum_with = |threads: usize| -> f64 {
            set_max_threads(Some(threads));
            let partials = par_chunk_map(10_000, |r| r.map(value).sum::<f64>());
            set_max_threads(None);
            partials.into_iter().sum()
        };
        let t1 = sum_with(1);
        for t in [2, 4, 16] {
            let tn = sum_with(t);
            assert_eq!(t1.to_bits(), tn.to_bits(), "threads={t}");
        }
    }

    #[test]
    fn override_takes_precedence_and_restores() {
        // Single test mutates the global override so assertions cannot
        // race each other across the parallel test harness.
        set_max_threads(Some(5));
        assert_eq!(max_threads(), 5);
        assert_eq!(threads_for(3), 3);
        assert_eq!(threads_for(100), 5);
        set_max_threads(Some(0)); // clamps to 1, still an override
        assert_eq!(max_threads(), 1);
        set_max_threads(None);
        assert!(max_threads() >= 1);
        assert_eq!(threads_for(0), 1);
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let mut seen = HashSet::new();
        for master in [0u64, 1, 0xDEAD_BEEF] {
            for i in 0..10_000u64 {
                assert!(seen.insert(derive_seed(master, i)), "collision at {i}");
            }
        }
        // Pure function: same inputs, same seed.
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
    }
}
