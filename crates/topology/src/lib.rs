//! Internet topology substrate for edge cache network experiments.
//!
//! The evaluation in *Efficient Formation of Edge Cache Groups for Dynamic
//! Content Delivery* (ICDCS 2006) runs on GT-ITM transit-stub topologies.
//! This crate re-implements that model and everything downstream crates
//! need from it:
//!
//! * [`Graph`] — undirected graphs with millisecond link latencies.
//! * [`waxman`] — Waxman random graphs (GT-ITM's intra-domain model).
//! * [`TransitStubConfig`] — the hierarchical transit-stub generator.
//! * [`shortest_path`] — Dijkstra and parallel all-pairs RTT computation.
//! * [`RttMatrix`] — symmetric round-trip-time matrices.
//! * [`RttSource`] / [`SyntheticRtt`] — the pairwise-RTT oracle trait and
//!   an O(n)-state implicit geometric implementation for large-N scaling
//!   runs where a dense matrix would not fit in memory.
//! * [`EdgeNetwork`] — an origin server plus `N` placed edge caches, the
//!   problem instance every group formation scheme consumes.
//! * [`fixtures`] — the worked example from Figure 1 of the paper.
//!
//! # Examples
//!
//! Build a 100-cache edge network on a fresh transit-stub topology:
//!
//! ```
//! use ecg_topology::{EdgeNetwork, OriginPlacement, TransitStubConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let topology = TransitStubConfig::for_caches(100).generate(&mut rng);
//! let network = EdgeNetwork::place(&topology, 100, OriginPlacement::TransitNode, &mut rng)?;
//! assert_eq!(network.cache_count(), 100);
//! # Ok::<(), ecg_topology::PlacementError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must attach context to failures (`expect`/`Result`), not
// panic opaquely; tests may still unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod fixtures;
pub mod graph;
pub mod graph_io;
pub mod network;
pub mod rtt;
pub mod rtt_io;
pub mod shortest_path;
pub mod synthetic;
pub mod transit_stub;
pub mod waxman;

pub use graph::{AddEdgeError, Edge, Graph, Neighbor, NodeId};
pub use graph_io::{read_graph, write_graph, GraphIoError};
pub use network::{CacheId, EdgeNetwork, OriginPlacement, PlacementError};
pub use rtt::{RttMatrix, RttSource};
pub use rtt_io::{read_rtt_matrix, write_rtt_matrix, RttIoError};
pub use shortest_path::all_pairs_rtt;
pub use synthetic::{SyntheticRtt, SyntheticRttConfig};
pub use transit_stub::{LatencyBand, NodeKind, StubDomain, TransitStubConfig, TransitStubTopology};
pub use waxman::WaxmanConfig;
