//! Waxman random graphs.
//!
//! The Waxman model places nodes uniformly in a unit square and connects
//! each pair `(u, v)` with probability
//! `P(u, v) = alpha * exp(-d(u, v) / (beta * L))`, where `d` is the
//! Euclidean distance between the points and `L` is the maximum possible
//! distance. It is the classic intra-domain model used by the GT-ITM
//! transit-stub generator, which this crate re-implements in
//! [`crate::transit_stub`].
//!
//! Generated graphs are *always connected*: after the probabilistic phase,
//! remaining components are stitched together through their closest node
//! pairs, mirroring what GT-ITM's "re-try until connected" loop achieves
//! without unbounded retries.

use crate::graph::{Graph, NodeId};
use rand::Rng;

/// A point in the unit square used for Waxman edge probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in `[0, 1]`.
    pub x: f64,
    /// Vertical coordinate in `[0, 1]`.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Configuration of a Waxman random graph.
///
/// # Examples
///
/// ```
/// use ecg_topology::waxman::WaxmanConfig;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let cfg = WaxmanConfig::new(12).alpha(0.6).beta(0.3);
/// let mut rng = StdRng::seed_from_u64(7);
/// let (graph, points) = cfg.generate(&mut rng);
/// assert_eq!(graph.node_count(), 12);
/// assert_eq!(points.len(), 12);
/// assert!(graph.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WaxmanConfig {
    nodes: usize,
    alpha: f64,
    beta: f64,
    latency_per_unit_ms: f64,
    min_latency_ms: f64,
}

impl WaxmanConfig {
    /// Creates a configuration for a graph with `nodes` nodes and the
    /// customary defaults `alpha = 0.5`, `beta = 0.35`.
    ///
    /// Latencies default to `50 ms` across the full unit square with a
    /// `0.5 ms` floor, so a typical intra-domain hop costs a few
    /// milliseconds.
    pub fn new(nodes: usize) -> Self {
        WaxmanConfig {
            nodes,
            alpha: 0.5,
            beta: 0.35,
            latency_per_unit_ms: 50.0,
            min_latency_ms: 0.5,
        }
    }

    /// Sets the Waxman `alpha` parameter (edge density), in `(0, 1]`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the Waxman `beta` parameter (long-edge affinity), in `(0, 1]`.
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets how many milliseconds of latency one unit of Euclidean
    /// distance costs.
    pub fn latency_per_unit_ms(mut self, ms: f64) -> Self {
        self.latency_per_unit_ms = ms;
        self
    }

    /// Sets the minimum latency assigned to any edge.
    pub fn min_latency_ms(mut self, ms: f64) -> Self {
        self.min_latency_ms = ms;
        self
    }

    /// Generates a connected Waxman graph plus the sampled node positions.
    ///
    /// Edge latency is proportional to the Euclidean distance between the
    /// endpoints (`latency_per_unit_ms`, floored at `min_latency_ms`), so
    /// the triangle-flavored structure of the plane carries over to the
    /// latency space.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero nodes with parameters that
    /// are out of range (`alpha`/`beta` not in `(0, 1]`).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> (Graph, Vec<Point>) {
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "waxman alpha must be in (0, 1], got {}",
            self.alpha
        );
        assert!(
            self.beta > 0.0 && self.beta <= 1.0,
            "waxman beta must be in (0, 1], got {}",
            self.beta
        );
        let n = self.nodes;
        let points: Vec<Point> = (0..n)
            .map(|_| Point {
                x: rng.gen::<f64>(),
                y: rng.gen::<f64>(),
            })
            .collect();
        let mut graph = Graph::with_nodes(n);
        let max_dist = 2f64.sqrt();
        for i in 0..n {
            for j in (i + 1)..n {
                let d = points[i].distance(&points[j]);
                let p = self.alpha * (-d / (self.beta * max_dist)).exp();
                if rng.gen::<f64>() < p {
                    graph.add_edge(NodeId(i), NodeId(j), self.edge_latency(d));
                }
            }
        }
        self.connect_components(&mut graph, &points);
        (graph, points)
    }

    fn edge_latency(&self, euclidean: f64) -> f64 {
        (euclidean * self.latency_per_unit_ms).max(self.min_latency_ms)
    }

    /// Stitches disconnected components together through their closest
    /// node pairs so the result is always connected.
    fn connect_components(&self, graph: &mut Graph, points: &[Point]) {
        loop {
            let comps = graph.components();
            if comps.len() <= 1 {
                return;
            }
            // Join the first component to its nearest neighbor component
            // through the closest cross pair.
            let base = &comps[0];
            let mut best: Option<(NodeId, NodeId, f64)> = None;
            for other in &comps[1..] {
                for &u in base {
                    for &v in other {
                        let d = points[u.index()].distance(&points[v.index()]);
                        if best.is_none_or(|(_, _, bd)| d < bd) {
                            best = Some((u, v, d));
                        }
                    }
                }
            }
            let (u, v, d) = best.expect("at least two components");
            graph.add_edge(u, v, self.edge_latency(d));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_node_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, pts) = WaxmanConfig::new(25).generate(&mut rng);
        assert_eq!(g.node_count(), 25);
        assert_eq!(pts.len(), 25);
    }

    #[test]
    fn always_connected_even_with_sparse_parameters() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, _) = WaxmanConfig::new(30)
                .alpha(0.05)
                .beta(0.05)
                .generate(&mut rng);
            assert!(g.is_connected(), "seed {seed} produced disconnected graph");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            WaxmanConfig::new(40).generate(&mut rng).0
        };
        assert_eq!(gen(42), gen(42));
    }

    #[test]
    fn different_seeds_differ() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            WaxmanConfig::new(40).generate(&mut rng).0
        };
        assert_ne!(gen(1), gen(2));
    }

    #[test]
    fn latencies_respect_floor() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, _) = WaxmanConfig::new(30).min_latency_ms(2.0).generate(&mut rng);
        for e in g.edges() {
            assert!(e.latency_ms >= 2.0);
        }
    }

    #[test]
    fn higher_alpha_means_more_edges() {
        let edges = |alpha: f64| {
            let mut total = 0;
            for seed in 0..5 {
                let mut rng = StdRng::seed_from_u64(seed);
                total += WaxmanConfig::new(40)
                    .alpha(alpha)
                    .generate(&mut rng)
                    .0
                    .edge_count();
            }
            total
        };
        assert!(edges(0.9) > edges(0.1));
    }

    #[test]
    fn single_node_graph() {
        let mut rng = StdRng::seed_from_u64(9);
        let (g, _) = WaxmanConfig::new(1).generate(&mut rng);
        assert_eq!(g.node_count(), 1);
        assert!(g.is_connected());
    }

    #[test]
    fn point_distance_is_euclidean() {
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 3.0, y: 4.0 };
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = WaxmanConfig::new(5).alpha(0.0).generate(&mut rng);
    }
}
