//! Shared test and documentation fixtures.
//!
//! The fixture network reproduces Figure 1 of the paper so examples and
//! tests across the workspace can check behaviour against the worked
//! example: 6 edge caches plus the origin, `N = 6`, with the exact RTT
//! values from the figure's distance matrix.

use crate::rtt::RttMatrix;

/// The 7-node RTT matrix from Figure 1 of the paper.
///
/// Index `0` is the origin server `Os`; index `i + 1` is cache `Ec_i`.
/// The matrix exhibits three natural cache pairs — `{Ec0, Ec1}`,
/// `{Ec2, Ec3}`, `{Ec4, Ec5}` — each 4 ms apart internally and ≥ 11.3 ms
/// from the others, which is why the paper's example forms exactly those
/// three groups with `K = 3`.
///
/// # Examples
///
/// ```
/// use ecg_topology::fixtures::paper_figure1;
///
/// let m = paper_figure1();
/// assert_eq!(m.len(), 7);
/// assert_eq!(m.get(1, 2), 4.0); // Ec0 – Ec1
/// assert_eq!(m.get(1, 0), 12.0); // Ec0 – Os
/// ```
pub fn paper_figure1() -> RttMatrix {
    let vals = [
        (0usize, 1usize, 12.0f64),
        (0, 2, 8.0),
        (0, 3, 12.0),
        (0, 4, 8.0),
        (0, 5, 12.0),
        (0, 6, 8.0),
        (1, 2, 4.0),
        (1, 3, 17.0),
        (1, 4, 14.4),
        (1, 5, 17.0),
        (1, 6, 14.4),
        (2, 3, 14.4),
        (2, 4, 11.3),
        (2, 5, 14.4),
        (2, 6, 11.3),
        (3, 4, 4.0),
        (3, 5, 17.0),
        (3, 6, 14.4),
        (4, 5, 14.4),
        (4, 6, 11.3),
        (5, 6, 4.0),
    ];
    let mut m = RttMatrix::zeros(7);
    for (i, j, v) in vals {
        m.set(i, j, v);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_matches_paper_values() {
        let m = paper_figure1();
        // Spot-check a handful of entries against the printed matrix.
        assert_eq!(m.get(0, 1), 12.0);
        assert_eq!(m.get(0, 2), 8.0);
        assert_eq!(m.get(3, 4), 4.0);
        assert_eq!(m.get(2, 6), 11.3);
        assert_eq!(m.get(5, 6), 4.0);
    }

    #[test]
    fn fixture_cache_pairs_are_tight() {
        let m = paper_figure1();
        for (a, b) in [(1, 2), (3, 4), (5, 6)] {
            assert_eq!(m.get(a, b), 4.0);
            for other in 1..7 {
                if other != a && other != b {
                    assert!(m.get(a, other) > 4.0);
                }
            }
        }
    }
}
