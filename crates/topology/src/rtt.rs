//! Symmetric round-trip-time matrices.
//!
//! [`RttMatrix`] is the currency every other crate trades in: the group
//! formation schemes read it through the probing model, the clustering
//! quality metrics average over it, and the simulator uses it as the
//! ground-truth network delay between caches.

use std::fmt;

/// A read-only oracle of pairwise round-trip times.
///
/// [`RttMatrix`] is the materialized implementation; implicit
/// implementations (e.g. [`SyntheticRtt`](crate::SyntheticRtt)) compute
/// RTTs on the fly from O(n) state, which is what makes N ≈ 50k-cache
/// runs feasible — a dense 50k × 50k matrix alone would need ~20 GB.
/// Consumers such as the probing model hold `&dyn RttSource`, so either
/// form plugs in unchanged.
///
/// Implementations must be symmetric (`rtt_ms(a, b) == rtt_ms(b, a)`),
/// zero on the diagonal, and return finite non-negative values. The
/// `Sync` supertrait lets parallel kernels share the oracle across
/// worker threads; the `Debug` supertrait keeps holders derivable.
pub trait RttSource: fmt::Debug + Sync {
    /// Number of nodes the oracle spans.
    fn node_count(&self) -> usize;

    /// Round-trip time between nodes `a` and `b` in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    fn rtt_ms(&self, a: usize, b: usize) -> f64;
}

impl RttSource for RttMatrix {
    fn node_count(&self) -> usize {
        self.len()
    }

    fn rtt_ms(&self, a: usize, b: usize) -> f64 {
        self.get(a, b)
    }
}

/// A symmetric matrix of round-trip times in milliseconds.
///
/// Storage is a dense `n × n` `Vec<f64>`; `set` writes both `(i, j)` and
/// `(j, i)` so symmetry holds by construction, and the diagonal is pinned
/// at zero.
///
/// # Examples
///
/// ```
/// use ecg_topology::RttMatrix;
///
/// let mut m = RttMatrix::zeros(3);
/// m.set(0, 1, 10.0);
/// m.set(1, 2, 4.0);
/// assert_eq!(m.get(1, 0), 10.0);
/// assert_eq!(m.get(2, 2), 0.0);
/// assert_eq!(m.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RttMatrix {
    n: usize,
    data: Vec<f64>,
}

impl RttMatrix {
    /// Creates an `n × n` matrix of zeros.
    pub fn zeros(n: usize) -> Self {
        RttMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` for every `i < j`.
    ///
    /// The function is called once per unordered pair; the result is
    /// mirrored and the diagonal stays zero.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut m = RttMatrix::zeros(n);
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Builds an RTT matrix from per-source *one-way* latency rows, i.e.
    /// the output of an all-pairs shortest path run. RTT is twice the
    /// one-way latency; asymmetries from floating-point noise are averaged
    /// away.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not square, or if any entry is infinite
    /// (disconnected graph) or NaN.
    pub fn from_rows_one_way(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has length {} != {n}", row.len());
        }
        RttMatrix::from_fn(n, |i, j| {
            let one_way = 0.5 * (rows[i][j] + rows[j][i]);
            assert!(
                one_way.is_finite(),
                "infinite latency between {i} and {j}: graph disconnected?"
            );
            2.0 * one_way
        })
    }

    /// Matrix dimension (number of nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the 0 × 0 matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// RTT between nodes `i` and `j` in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "rtt index out of range");
        self.data[i * self.n + j]
    }

    /// Sets the RTT between `i` and `j` (and `j` and `i`).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range, if `i == j` with a non-zero
    /// value, or if the value is negative or not finite.
    pub fn set(&mut self, i: usize, j: usize, rtt_ms: f64) {
        assert!(i < self.n && j < self.n, "rtt index out of range");
        assert!(
            rtt_ms.is_finite() && rtt_ms >= 0.0,
            "rtt must be finite and non-negative, got {rtt_ms}"
        );
        if i == j {
            assert!(rtt_ms == 0.0, "diagonal rtt must be zero");
            return;
        }
        self.data[i * self.n + j] = rtt_ms;
        self.data[j * self.n + i] = rtt_ms;
    }

    /// Extracts the sub-matrix over `indices`, in the given order.
    ///
    /// Entry `(a, b)` of the result is `self.get(indices[a], indices[b])`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn submatrix(&self, indices: &[usize]) -> RttMatrix {
        let mut out = RttMatrix::zeros(0);
        self.submatrix_into(indices, &mut out);
        out
    }

    /// [`RttMatrix::submatrix`] into a caller-owned matrix, reusing its
    /// storage when the capacity suffices. Repeated extraction (e.g. a
    /// maintenance sweep removing caches one at a time) then re-copies
    /// entries into one buffer instead of allocating a fresh matrix per
    /// call.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn submatrix_into(&self, indices: &[usize], out: &mut RttMatrix) {
        let n = indices.len();
        out.n = n;
        out.data.clear();
        out.data.reserve(n * n);
        for &i in indices {
            assert!(i < self.n, "rtt index out of range");
            let row = &self.data[i * self.n..(i + 1) * self.n];
            out.data.extend(indices.iter().map(|&j| row[j]));
        }
        // Symmetry and a zero diagonal are inherited from `self`, except
        // for repeated indices, where the diagonal picks up off-diagonal
        // source entries; pin it back to zero.
        for a in 0..n {
            out.data[a * n + a] = 0.0;
        }
    }

    /// Removes node `idx` in place: row and column `idx` are deleted and
    /// later nodes shift down by one, with no new allocation. The
    /// zero-copy counterpart of `submatrix(&all_but_idx)` for repeated
    /// shrinking sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn remove_index(&mut self, idx: usize) {
        let n = self.n;
        assert!(idx < n, "rtt index out of range");
        // Forward in-place compaction: the write cursor never overtakes
        // the read cursor.
        let mut w = 0;
        for i in 0..n {
            if i == idx {
                continue;
            }
            for j in 0..n {
                if j == idx {
                    continue;
                }
                self.data[w] = self.data[i * n + j];
                w += 1;
            }
        }
        self.n = n - 1;
        self.data.truncate(w);
    }

    /// Mean RTT over all unordered distinct pairs, or `None` if `n < 2`.
    pub fn mean_off_diagonal(&self) -> Option<f64> {
        if self.n < 2 {
            return None;
        }
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                sum += self.get(i, j);
                count += 1;
            }
        }
        Some(sum / count as f64)
    }

    /// Maximum off-diagonal RTT, or `None` if `n < 2`.
    pub fn max_off_diagonal(&self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let v = self.get(i, j);
                if best.is_none_or(|b| v > b) {
                    best = Some(v);
                }
            }
        }
        best
    }

    /// Indices of the `k` nodes nearest to `from` (excluding `from`),
    /// sorted by ascending RTT. Returns fewer than `k` if the matrix is
    /// small.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn nearest_to(&self, from: usize, k: usize) -> Vec<usize> {
        let mut others: Vec<usize> = (0..self.n).filter(|&i| i != from).collect();
        others.sort_by(|&a, &b| {
            self.get(from, a)
                .partial_cmp(&self.get(from, b))
                .expect("rtts are not NaN")
                .then(a.cmp(&b))
        });
        others.truncate(k);
        others
    }

    /// Indices of the `k` nodes farthest from `from` (excluding `from`),
    /// sorted by descending RTT.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn farthest_from(&self, from: usize, k: usize) -> Vec<usize> {
        let mut others = self.nearest_to(from, self.n.saturating_sub(1));
        others.reverse();
        others.truncate(k);
        others
    }
}

impl fmt::Display for RttMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RttMatrix({} nodes)", self.n)?;
        for i in 0..self.n {
            for j in 0..self.n {
                write!(f, "{:8.2}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::fixtures::paper_figure1;

    #[test]
    fn symmetric_by_construction() {
        let m = paper_figure1();
        for i in 0..7 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..7 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn from_fn_fills_upper_triangle() {
        let m = RttMatrix::from_fn(4, |i, j| (i + j) as f64);
        assert_eq!(m.get(1, 3), 4.0);
        assert_eq!(m.get(3, 1), 4.0);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn from_rows_averages_asymmetry() {
        let rows = vec![vec![0.0, 3.0], vec![5.0, 0.0]];
        let m = RttMatrix::from_rows_one_way(&rows);
        assert_eq!(m.get(0, 1), 8.0); // 2 * (3+5)/2
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn from_rows_rejects_infinite() {
        let rows = vec![vec![0.0, f64::INFINITY], vec![f64::INFINITY, 0.0]];
        let _ = RttMatrix::from_rows_one_way(&rows);
    }

    #[test]
    fn submatrix_reindexes() {
        let m = paper_figure1();
        let sub = m.submatrix(&[1, 3, 5]); // Ec0, Ec2, Ec4
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.get(0, 1), 17.0); // Ec0-Ec2
        assert_eq!(sub.get(1, 2), 17.0); // Ec2-Ec4
    }

    #[test]
    fn submatrix_into_reuses_storage_and_matches_submatrix() {
        let m = paper_figure1();
        let mut out = RttMatrix::zeros(0);
        // Shrinking sweep: each extraction must equal the allocating
        // variant regardless of what was in the buffer before.
        for indices in [vec![0, 1, 2, 3, 4], vec![1, 3, 5], vec![6, 2]] {
            m.submatrix_into(&indices, &mut out);
            assert_eq!(out, m.submatrix(&indices));
        }
        // Repeated index: diagonal still zero, cross entries defined.
        m.submatrix_into(&[1, 1, 3], &mut out);
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(1, 1), 0.0);
        assert_eq!(out.get(0, 1), 0.0); // Ec0 to itself
        assert_eq!(out.get(0, 2), m.get(1, 3));
    }

    #[test]
    fn remove_index_matches_submatrix() {
        let m = paper_figure1();
        let mut shrunk = m.clone();
        shrunk.remove_index(2);
        let keep: Vec<usize> = (0..7).filter(|&i| i != 2).collect();
        assert_eq!(shrunk, m.submatrix(&keep));
        // Repeated sweep down to two nodes, always consistent.
        while shrunk.len() > 2 {
            let before = shrunk.clone();
            shrunk.remove_index(0);
            let keep: Vec<usize> = (1..before.len()).collect();
            assert_eq!(shrunk, before.submatrix(&keep));
        }
    }

    #[test]
    fn mean_and_max_off_diagonal() {
        let mut m = RttMatrix::zeros(3);
        m.set(0, 1, 2.0);
        m.set(0, 2, 4.0);
        m.set(1, 2, 6.0);
        assert_eq!(m.mean_off_diagonal(), Some(4.0));
        assert_eq!(m.max_off_diagonal(), Some(6.0));
        assert_eq!(RttMatrix::zeros(1).mean_off_diagonal(), None);
        assert_eq!(RttMatrix::zeros(0).max_off_diagonal(), None);
    }

    #[test]
    fn nearest_and_farthest_are_ordered() {
        let m = paper_figure1();
        // From the origin (index 0): Ec1 (8), Ec3 (8), Ec5 (8) then 12s.
        let near = m.nearest_to(0, 3);
        assert_eq!(near, vec![2, 4, 6]);
        let far = m.farthest_from(0, 3);
        for pair in far.windows(2) {
            assert!(m.get(0, pair[0]) >= m.get(0, pair[1]));
        }
        assert_eq!(far.len(), 3);
        assert!(far.iter().all(|&i| m.get(0, i) == 12.0));
    }

    #[test]
    fn nearest_to_truncates_gracefully() {
        let m = RttMatrix::zeros(2);
        assert_eq!(m.nearest_to(0, 10), vec![1]);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn set_rejects_nonzero_diagonal() {
        let mut m = RttMatrix::zeros(2);
        m.set(1, 1, 3.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn set_rejects_nan() {
        let mut m = RttMatrix::zeros(2);
        m.set(0, 1, f64::NAN);
    }

    #[test]
    fn display_contains_dimension() {
        let m = RttMatrix::zeros(2);
        assert!(m.to_string().contains("2 nodes"));
    }
}
