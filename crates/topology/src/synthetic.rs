//! Implicit synthetic RTT oracles for large-N scaling runs.
//!
//! The GT-ITM pipeline materializes a dense [`RttMatrix`], which is
//! O(n²) memory — about 20 GB at n = 50 000. The scaling benchmarks
//! instead use [`SyntheticRtt`]: a geometric RTT model that stores O(n)
//! state (a plane position and a last-hop access penalty per node) and
//! computes any pairwise RTT on demand through the
//! [`RttSource`] trait. The model is a standard
//! cities-on-a-plane abstraction: nodes cluster around metro sites,
//! propagation delay is the Euclidean plane distance, and each endpoint
//! adds its own access-link penalty — qualitatively the same
//! short-intra-site / long-inter-site structure the transit-stub
//! generator produces.

use crate::rtt::RttSource;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the [`SyntheticRtt`] geometric model.
///
/// # Examples
///
/// ```
/// use ecg_topology::{RttSource, SyntheticRttConfig};
///
/// let net = SyntheticRttConfig::default().generate(1_000, 7);
/// assert_eq!(net.node_count(), 1_000);
/// assert_eq!(net.rtt_ms(3, 3), 0.0);
/// assert_eq!(net.rtt_ms(1, 2), net.rtt_ms(2, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticRttConfig {
    extent_ms: f64,
    spread_ms: f64,
    access_min_ms: f64,
    access_max_ms: f64,
    nodes_per_site: usize,
}

impl Default for SyntheticRttConfig {
    /// A continental plane: 100 ms of one-way extent, metro sites of
    /// about 64 nodes spread over ±5 ms, and 1–5 ms access links.
    fn default() -> Self {
        SyntheticRttConfig {
            extent_ms: 100.0,
            spread_ms: 5.0,
            access_min_ms: 1.0,
            access_max_ms: 5.0,
            nodes_per_site: 64,
        }
    }
}

impl SyntheticRttConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the one-way plane extent in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is not positive and finite.
    pub fn extent_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms > 0.0, "extent must be positive");
        self.extent_ms = ms;
        self
    }

    /// Sets how far nodes scatter around their metro site, in ms.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn spread_ms(mut self, ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "spread must be finite and non-negative"
        );
        self.spread_ms = ms;
        self
    }

    /// Sets the average metro-site population.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn nodes_per_site(mut self, nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node per site");
        self.nodes_per_site = nodes;
        self
    }

    /// Generates the oracle for `nodes` nodes from a seed. Node `0`
    /// plays the origin-server role downstream consumers expect.
    ///
    /// Generation is O(n) time and memory and depends only on
    /// `(self, nodes, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn generate(&self, nodes: usize, seed: u64) -> SyntheticRtt {
        assert!(nodes > 0, "need at least one node");
        let mut rng = StdRng::seed_from_u64(seed);
        let site_count = nodes.div_ceil(self.nodes_per_site).max(1);
        let sites: Vec<(f64, f64)> = (0..site_count)
            .map(|_| {
                (
                    rng.gen_range(0.0..self.extent_ms),
                    rng.gen_range(0.0..self.extent_ms),
                )
            })
            .collect();
        let mut positions = Vec::with_capacity(nodes);
        let mut access_ms = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let (sx, sy) = sites[rng.gen_range(0..site_count)];
            positions.push((
                sx + rng.gen_range(-self.spread_ms..=self.spread_ms),
                sy + rng.gen_range(-self.spread_ms..=self.spread_ms),
            ));
            access_ms.push(rng.gen_range(self.access_min_ms..=self.access_max_ms));
        }
        SyntheticRtt {
            positions,
            access_ms,
        }
    }
}

/// An implicit RTT oracle over a geometric node embedding: O(n) state,
/// O(1) per-pair evaluation. See the module docs for the model.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticRtt {
    positions: Vec<(f64, f64)>,
    access_ms: Vec<f64>,
}

impl RttSource for SyntheticRtt {
    fn node_count(&self) -> usize {
        self.positions.len()
    }

    fn rtt_ms(&self, a: usize, b: usize) -> f64 {
        assert!(
            a < self.positions.len() && b < self.positions.len(),
            "rtt index out of range"
        );
        if a == b {
            return 0.0;
        }
        let (ax, ay) = self.positions[a];
        let (bx, by) = self.positions[b];
        let one_way = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        // The access pair is summed first: f64 addition is commutative
        // but not associative, and exact rtt(a,b) == rtt(b,a) symmetry
        // requires the same grouping from both directions.
        2.0 * one_way + (self.access_ms[a] + self.access_ms[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticRttConfig::default().generate(500, 9);
        let b = SyntheticRttConfig::default().generate(500, 9);
        assert_eq!(a, b);
        let c = SyntheticRttConfig::default().generate(500, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn symmetric_zero_diagonal_and_positive() {
        let net = SyntheticRttConfig::default().generate(100, 3);
        for i in (0..100).step_by(7) {
            assert_eq!(net.rtt_ms(i, i), 0.0);
            for j in (0..100).step_by(11) {
                let r = net.rtt_ms(i, j);
                assert_eq!(r, net.rtt_ms(j, i));
                assert!(r.is_finite() && r >= 0.0);
                if i != j {
                    // Two access links bound the RTT away from zero.
                    assert!(r >= 2.0, "rtt({i},{j}) = {r}");
                }
            }
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        // d(a,b) + acc_a + acc_b <= (d(a,c) + acc_a + acc_c)
        //                         + (d(c,b) + acc_c + acc_b)
        // because plane distances are a metric and access penalties are
        // non-negative.
        let net = SyntheticRttConfig::default().generate(40, 5);
        for a in 0..40 {
            for b in 0..40 {
                for c in 0..40 {
                    assert!(
                        net.rtt_ms(a, b) <= net.rtt_ms(a, c) + net.rtt_ms(c, b) + 1e-9,
                        "triangle violated at ({a},{b},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn memory_is_linear_in_nodes() {
        // 50k nodes is exactly the scale a dense matrix cannot reach;
        // the implicit oracle builds it in O(n).
        let net = SyntheticRttConfig::default().generate(50_000, 1);
        assert_eq!(net.node_count(), 50_000);
        assert!(net.rtt_ms(0, 49_999) > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let net = SyntheticRttConfig::default().generate(10, 1);
        let _ = net.rtt_ms(0, 10);
    }
}
