//! Edge cache network placement.
//!
//! An [`EdgeNetwork`] is the paper's problem instance: one origin server
//! `Os` plus `N` edge caches `Ec_0 … Ec_{N-1}` with known pairwise RTTs.
//! This module places those nodes onto a generated
//! [`TransitStubTopology`] — caches on stub
//! nodes (they sit at the network edge), the origin on a transit or stub
//! node — and extracts the relevant RTT sub-matrix.

use crate::graph::NodeId;
use crate::rtt::RttMatrix;
use crate::shortest_path::all_pairs_rtt;
use crate::transit_stub::TransitStubTopology;
use rand::Rng;
use std::fmt;

/// Identifier of an edge cache within an [`EdgeNetwork`].
///
/// Cache ids are dense `0..cache_count` indices, matching the paper's
/// `Ec_0 … Ec_{N-1}` notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CacheId(pub usize);

impl CacheId {
    /// Returns the id as a dense vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CacheId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ec{}", self.0)
    }
}

impl From<usize> for CacheId {
    fn from(index: usize) -> Self {
        CacheId(index)
    }
}

/// Where to place the origin server on the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OriginPlacement {
    /// On a random transit (backbone) node — a well-connected data center.
    /// This is the default.
    #[default]
    TransitNode,
    /// On a random stub node not used by any cache.
    StubNode,
}

/// Error from [`EdgeNetwork::place`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// The topology does not contain enough stub nodes for the requested
    /// cache count (plus the origin when it is stub-placed).
    NotEnoughStubNodes {
        /// Stub nodes required.
        required: usize,
        /// Stub nodes available.
        available: usize,
    },
    /// Zero caches were requested.
    NoCaches,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NotEnoughStubNodes {
                required,
                available,
            } => write!(
                f,
                "placement needs {required} stub nodes but the topology has {available}"
            ),
            PlacementError::NoCaches => write!(f, "an edge network needs at least one cache"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// An origin server plus `N` edge caches with ground-truth pairwise RTTs.
///
/// Internally the RTT matrix is indexed with the origin at slot `0` and
/// cache `Ec_i` at slot `i + 1`; the typed accessors hide this layout.
///
/// # Examples
///
/// ```
/// use ecg_topology::{EdgeNetwork, TransitStubConfig, CacheId};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let topo = TransitStubConfig::for_caches(50).generate(&mut rng);
/// let net = EdgeNetwork::place(&topo, 50, Default::default(), &mut rng)?;
/// assert_eq!(net.cache_count(), 50);
/// let rtt = net.cache_to_origin(CacheId(0));
/// assert!(rtt > 0.0);
/// # Ok::<(), ecg_topology::PlacementError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeNetwork {
    /// RTTs over [origin, cache_0, …, cache_{N-1}].
    rtt: RttMatrix,
    origin_node: Option<NodeId>,
    cache_nodes: Vec<NodeId>,
}

impl EdgeNetwork {
    /// Places an edge network on a generated topology.
    ///
    /// Caches go on `cache_count` distinct random stub nodes; the origin
    /// goes on a random transit node (or an unused stub node, per
    /// `origin`). The full-topology RTT matrix is computed once and the
    /// relevant sub-matrix extracted.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] if `cache_count == 0` or the topology
    /// has too few stub nodes.
    pub fn place<R: Rng + ?Sized>(
        topology: &TransitStubTopology,
        cache_count: usize,
        origin: OriginPlacement,
        rng: &mut R,
    ) -> Result<Self, PlacementError> {
        if cache_count == 0 {
            return Err(PlacementError::NoCaches);
        }
        let mut stubs = topology.stub_nodes();
        let origin_needs_stub = matches!(origin, OriginPlacement::StubNode);
        let required = cache_count + usize::from(origin_needs_stub);
        if stubs.len() < required {
            return Err(PlacementError::NotEnoughStubNodes {
                required,
                available: stubs.len(),
            });
        }
        // Partial Fisher-Yates: the first `required` entries become the
        // selected placement, uniformly at random.
        for i in 0..required {
            let j = rng.gen_range(i..stubs.len());
            stubs.swap(i, j);
        }
        let cache_nodes: Vec<NodeId> = stubs[..cache_count].to_vec();
        let origin_node = if origin_needs_stub {
            stubs[cache_count]
        } else {
            let transit = topology.transit_nodes();
            transit[rng.gen_range(0..transit.len())]
        };

        let full = all_pairs_rtt(topology.graph());
        let mut indices = Vec::with_capacity(cache_count + 1);
        indices.push(origin_node.index());
        indices.extend(cache_nodes.iter().map(|n| n.index()));
        Ok(EdgeNetwork {
            rtt: full.submatrix(&indices),
            origin_node: Some(origin_node),
            cache_nodes,
        })
    }

    /// Wraps an existing RTT matrix as an edge network.
    ///
    /// Index `0` of the matrix is the origin; index `i + 1` is cache
    /// `Ec_i`. Useful for tests and for replaying externally measured
    /// matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has fewer than two nodes (an origin plus at
    /// least one cache).
    pub fn from_rtt_matrix(rtt: RttMatrix) -> Self {
        assert!(
            rtt.len() >= 2,
            "edge network needs an origin plus at least one cache"
        );
        EdgeNetwork {
            rtt,
            origin_node: None,
            cache_nodes: Vec::new(),
        }
    }

    /// Number of edge caches `N`.
    pub fn cache_count(&self) -> usize {
        self.rtt.len() - 1
    }

    /// Iterates over all cache ids `Ec_0 … Ec_{N-1}`.
    pub fn caches(&self) -> impl Iterator<Item = CacheId> + '_ {
        (0..self.cache_count()).map(CacheId)
    }

    /// Ground-truth RTT between two caches, in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if a cache id is out of range.
    #[inline]
    pub fn cache_to_cache(&self, a: CacheId, b: CacheId) -> f64 {
        self.rtt.get(a.index() + 1, b.index() + 1)
    }

    /// Ground-truth RTT between a cache and the origin server.
    ///
    /// # Panics
    ///
    /// Panics if the cache id is out of range.
    #[inline]
    pub fn cache_to_origin(&self, cache: CacheId) -> f64 {
        self.rtt.get(cache.index() + 1, 0)
    }

    /// The underlying matrix over `[origin, Ec_0, …, Ec_{N-1}]`.
    pub fn rtt_matrix(&self) -> &RttMatrix {
        &self.rtt
    }

    /// Topology node the origin was placed on, if placed on a topology.
    pub fn origin_node(&self) -> Option<NodeId> {
        self.origin_node
    }

    /// Topology nodes the caches were placed on (empty if the network was
    /// built directly from a matrix).
    pub fn cache_nodes(&self) -> &[NodeId] {
        &self.cache_nodes
    }

    /// The `k` caches nearest to the origin, ascending by RTT.
    pub fn caches_nearest_origin(&self, k: usize) -> Vec<CacheId> {
        self.rtt
            .nearest_to(0, k)
            .into_iter()
            .map(|i| CacheId(i - 1))
            .collect()
    }

    /// The `k` caches farthest from the origin, descending by RTT.
    pub fn caches_farthest_origin(&self, k: usize) -> Vec<CacheId> {
        self.rtt
            .farthest_from(0, k)
            .into_iter()
            .map(|i| CacheId(i - 1))
            .collect()
    }

    /// Mean cache-to-origin RTT in milliseconds.
    pub fn mean_origin_rtt(&self) -> f64 {
        let n = self.cache_count();
        self.caches().map(|c| self.cache_to_origin(c)).sum::<f64>() / n as f64
    }

    /// Returns a new network with one additional cache appended as
    /// `Ec_N`, given its RTT to the origin and to each existing cache.
    ///
    /// This is the join operation dynamic deployments need: the existing
    /// caches keep their ids, so formed groups remain valid and the new
    /// cache can be admitted incrementally (see `ecg-core`'s
    /// maintenance module).
    ///
    /// # Panics
    ///
    /// Panics if `rtts_to_caches` does not have exactly `cache_count()`
    /// entries, or any RTT is negative or not finite.
    pub fn with_added_cache(&self, rtt_to_origin: f64, rtts_to_caches: &[f64]) -> EdgeNetwork {
        let n = self.cache_count();
        assert_eq!(
            rtts_to_caches.len(),
            n,
            "need one RTT per existing cache ({n})"
        );
        let new_idx = n + 1; // matrix index of the new cache
        let rtt = RttMatrix::from_fn(n + 2, |i, j| {
            let (lo, hi) = (i.min(j), i.max(j));
            if hi < new_idx {
                self.rtt.get(lo, hi)
            } else if lo == 0 {
                rtt_to_origin
            } else {
                rtts_to_caches[lo - 1]
            }
        });
        EdgeNetwork {
            rtt,
            origin_node: self.origin_node,
            cache_nodes: Vec::new(),
        }
    }

    /// Returns a new network with cache `removed` deleted; caches after
    /// it shift down by one id. The leave operation for dynamic
    /// deployments.
    ///
    /// # Panics
    ///
    /// Panics if `removed` is out of range or the network would drop to
    /// zero caches.
    pub fn with_removed_cache(&self, removed: CacheId) -> EdgeNetwork {
        let mut out = EdgeNetwork {
            rtt: self.rtt.clone(),
            origin_node: self.origin_node,
            cache_nodes: Vec::new(),
        };
        out.remove_cache(removed);
        out
    }

    /// Removes cache `removed` in place; caches after it shift down by
    /// one id. Unlike [`with_removed_cache`](Self::with_removed_cache)
    /// this compacts the RTT matrix within its existing buffer, so a
    /// maintenance sweep that retires many caches performs no per-step
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `removed` is out of range or the network would drop to
    /// zero caches.
    pub fn remove_cache(&mut self, removed: CacheId) {
        let n = self.cache_count();
        assert!(removed.index() < n, "cache {removed} out of range");
        assert!(n > 1, "cannot remove the last cache");
        self.rtt.remove_index(removed.index() + 1);
        // Node provenance is no longer meaningful once ids shift.
        self.cache_nodes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_figure1;
    use crate::TransitStubConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topo(seed: u64) -> TransitStubTopology {
        TransitStubConfig::default()
            .transit_domains(2)
            .transit_nodes_per_domain(2)
            .stub_domains_per_transit_node(2)
            .stub_nodes_per_domain(5)
            .generate(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn placement_produces_requested_caches() {
        let t = topo(1);
        let mut rng = StdRng::seed_from_u64(2);
        let net = EdgeNetwork::place(&t, 20, OriginPlacement::TransitNode, &mut rng).unwrap();
        assert_eq!(net.cache_count(), 20);
        assert_eq!(net.cache_nodes().len(), 20);
        // All cache nodes distinct.
        let mut nodes = net.cache_nodes().to_vec();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 20);
    }

    #[test]
    fn origin_on_transit_node_by_default() {
        let t = topo(3);
        let mut rng = StdRng::seed_from_u64(4);
        let net = EdgeNetwork::place(&t, 5, OriginPlacement::TransitNode, &mut rng).unwrap();
        let origin = net.origin_node().unwrap();
        assert!(t.kind(origin).is_transit());
    }

    #[test]
    fn origin_on_stub_node_when_requested() {
        let t = topo(5);
        let mut rng = StdRng::seed_from_u64(6);
        let net = EdgeNetwork::place(&t, 5, OriginPlacement::StubNode, &mut rng).unwrap();
        let origin = net.origin_node().unwrap();
        assert!(t.kind(origin).is_stub());
        assert!(!net.cache_nodes().contains(&origin));
    }

    #[test]
    fn rejects_zero_caches() {
        let t = topo(7);
        let mut rng = StdRng::seed_from_u64(8);
        let err = EdgeNetwork::place(&t, 0, OriginPlacement::TransitNode, &mut rng).unwrap_err();
        assert_eq!(err, PlacementError::NoCaches);
    }

    #[test]
    fn rejects_oversized_network() {
        let t = topo(9);
        let available = t.stub_nodes().len();
        let mut rng = StdRng::seed_from_u64(10);
        let err = EdgeNetwork::place(&t, available + 1, OriginPlacement::TransitNode, &mut rng)
            .unwrap_err();
        assert_eq!(
            err,
            PlacementError::NotEnoughStubNodes {
                required: available + 1,
                available
            }
        );
        assert!(err.to_string().contains("stub nodes"));
    }

    #[test]
    fn figure1_fixture_round_trips() {
        let net = EdgeNetwork::from_rtt_matrix(paper_figure1());
        assert_eq!(net.cache_count(), 6);
        assert_eq!(net.cache_to_origin(CacheId(0)), 12.0);
        assert_eq!(net.cache_to_origin(CacheId(1)), 8.0);
        assert_eq!(net.cache_to_cache(CacheId(0), CacheId(1)), 4.0);
        assert_eq!(net.cache_to_cache(CacheId(2), CacheId(3)), 4.0);
        assert!(net.origin_node().is_none());
    }

    #[test]
    fn nearest_and_farthest_partition_by_origin_rtt() {
        let net = EdgeNetwork::from_rtt_matrix(paper_figure1());
        let near = net.caches_nearest_origin(3);
        for c in &near {
            assert_eq!(net.cache_to_origin(*c), 8.0);
        }
        let far = net.caches_farthest_origin(3);
        for c in &far {
            assert_eq!(net.cache_to_origin(*c), 12.0);
        }
    }

    #[test]
    fn mean_origin_rtt_matches_hand_computation() {
        let net = EdgeNetwork::from_rtt_matrix(paper_figure1());
        let expect = (12.0 + 8.0 + 12.0 + 8.0 + 12.0 + 8.0) / 6.0;
        assert!((net.mean_origin_rtt() - expect).abs() < 1e-12);
    }

    #[test]
    fn cache_id_display() {
        assert_eq!(CacheId(4).to_string(), "Ec4");
        assert_eq!(CacheId::from(2).index(), 2);
    }

    #[test]
    fn with_added_cache_preserves_existing_rtts() {
        let net = EdgeNetwork::from_rtt_matrix(paper_figure1());
        let rtts: Vec<f64> = (0..6).map(|i| 3.0 + i as f64).collect();
        let grown = net.with_added_cache(9.5, &rtts);
        assert_eq!(grown.cache_count(), 7);
        // Old entries intact.
        for a in net.caches() {
            assert_eq!(grown.cache_to_origin(a), net.cache_to_origin(a));
            for b in net.caches() {
                assert_eq!(grown.cache_to_cache(a, b), net.cache_to_cache(a, b));
            }
        }
        // New entries in place.
        let newcomer = CacheId(6);
        assert_eq!(grown.cache_to_origin(newcomer), 9.5);
        for (i, &r) in rtts.iter().enumerate() {
            assert_eq!(grown.cache_to_cache(newcomer, CacheId(i)), r);
        }
    }

    #[test]
    fn with_removed_cache_shifts_ids() {
        let net = EdgeNetwork::from_rtt_matrix(paper_figure1());
        let shrunk = net.with_removed_cache(CacheId(1)); // drop Ec1
        assert_eq!(shrunk.cache_count(), 5);
        // Ec0 keeps id 0; Ec2 becomes id 1.
        assert_eq!(shrunk.cache_to_origin(CacheId(0)), 12.0);
        assert_eq!(shrunk.cache_to_origin(CacheId(1)), 12.0); // was Ec2
        assert_eq!(
            shrunk.cache_to_cache(CacheId(1), CacheId(2)),
            net.cache_to_cache(CacheId(2), CacheId(3))
        );
    }

    #[test]
    fn remove_cache_in_place_matches_with_removed_cache() {
        let net = EdgeNetwork::from_rtt_matrix(paper_figure1());
        let mut swept = net.clone();
        // Retire caches one by one and compare against the allocating
        // variant at every step.
        let mut expected = net;
        for victim in [3usize, 0, 2] {
            expected = expected.with_removed_cache(CacheId(victim));
            swept.remove_cache(CacheId(victim));
            assert_eq!(swept, expected);
        }
        assert_eq!(swept.cache_count(), 3);
    }

    #[test]
    #[should_panic(expected = "one RTT per existing cache")]
    fn with_added_cache_checks_arity() {
        let net = EdgeNetwork::from_rtt_matrix(paper_figure1());
        let _ = net.with_added_cache(1.0, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "last cache")]
    fn cannot_remove_last_cache() {
        let mut m = RttMatrix::zeros(2);
        m.set(0, 1, 5.0);
        let net = EdgeNetwork::from_rtt_matrix(m);
        let _ = net.with_removed_cache(CacheId(0));
    }

    #[test]
    fn placement_deterministic_per_seed() {
        let t = topo(11);
        let place = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            EdgeNetwork::place(&t, 10, OriginPlacement::TransitNode, &mut rng).unwrap()
        };
        assert_eq!(place(1), place(1));
        assert_ne!(place(1).cache_nodes(), place(2).cache_nodes());
    }
}
