//! Text serialization for latency graphs.
//!
//! Edge-list format for persisting generated topologies (so a study can
//! pin one topology across tool invocations, or import a measured one):
//!
//! ```text
//! # optional comments
//! graph 4 3         # header: node count, edge count
//! 0 1 2.5           # one edge per line: a b latency_ms
//! 1 2 10.0
//! 2 3 0.75
//! ```

use crate::graph::{Graph, NodeId};
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Error from [`read_graph`].
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed header or edge line; carries the 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "graph i/o error: {e}"),
            GraphIoError::Parse { line, message } => {
                write!(f, "malformed graph at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphIoError::Io(e) => Some(e),
            GraphIoError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for GraphIoError {
    fn from(e: io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

/// Writes `graph` in the edge-list format above.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_graph<W: Write>(mut writer: W, graph: &Graph) -> io::Result<()> {
    writeln!(
        writer,
        "graph {} {}",
        graph.node_count(),
        graph.edge_count()
    )?;
    for edge in graph.edges() {
        writeln!(
            writer,
            "{} {} {}",
            edge.a.index(),
            edge.b.index(),
            edge.latency_ms
        )?;
    }
    Ok(())
}

/// Reads a graph written by [`write_graph`].
///
/// Blank lines and `#` comments are skipped.
///
/// # Errors
///
/// Returns [`GraphIoError::Parse`] on bad headers, wrong edge counts,
/// out-of-range endpoints, self loops, or invalid latencies.
pub fn read_graph<R: Read>(reader: R) -> Result<Graph, GraphIoError> {
    let buf = BufReader::new(reader);
    let mut lines = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim().to_string();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        lines.push((idx + 1, trimmed));
    }
    let Some((header_line, header)) = lines.first() else {
        return Err(GraphIoError::Parse {
            line: 1,
            message: "empty input".into(),
        });
    };
    let parts: Vec<&str> = header.split_ascii_whitespace().collect();
    let (nodes, edges) = match parts.as_slice() {
        ["graph", n, e] => match (n.parse::<usize>(), e.parse::<usize>()) {
            (Ok(n), Ok(e)) => (n, e),
            _ => {
                return Err(GraphIoError::Parse {
                    line: *header_line,
                    message: format!("bad header counts in {header:?}"),
                })
            }
        },
        _ => {
            return Err(GraphIoError::Parse {
                line: *header_line,
                message: format!("expected `graph <nodes> <edges>`, got {header:?}"),
            })
        }
    };
    let edge_lines = &lines[1..];
    if edge_lines.len() != edges {
        return Err(GraphIoError::Parse {
            line: edge_lines.last().map(|(l, _)| *l).unwrap_or(*header_line),
            message: format!("expected {edges} edge lines, got {}", edge_lines.len()),
        });
    }
    let mut graph = Graph::with_nodes(nodes);
    for (line_no, text) in edge_lines {
        let parts: Vec<&str> = text.split_ascii_whitespace().collect();
        let [a, b, latency] = parts.as_slice() else {
            return Err(GraphIoError::Parse {
                line: *line_no,
                message: format!("expected `a b latency`, got {text:?}"),
            });
        };
        let parse_err = |message: String| GraphIoError::Parse {
            line: *line_no,
            message,
        };
        let a: usize = a
            .parse()
            .map_err(|_| parse_err(format!("bad endpoint {a:?}")))?;
        let b: usize = b
            .parse()
            .map_err(|_| parse_err(format!("bad endpoint {b:?}")))?;
        let latency: f64 = latency
            .parse()
            .map_err(|_| parse_err(format!("bad latency {latency:?}")))?;
        graph
            .try_add_edge(NodeId(a), NodeId(b), latency)
            .map_err(|e| parse_err(e.to_string()))?;
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransitStubConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_preserves_generated_topology() {
        let topo = TransitStubConfig::default()
            .transit_domains(2)
            .transit_nodes_per_domain(2)
            .stub_domains_per_transit_node(2)
            .stub_nodes_per_domain(4)
            .generate(&mut StdRng::seed_from_u64(9));
        let mut buf = Vec::new();
        write_graph(&mut buf, topo.graph()).unwrap();
        let back = read_graph(&buf[..]).unwrap();
        assert_eq!(back.node_count(), topo.graph().node_count());
        assert_eq!(back.edge_count(), topo.graph().edge_count());
        // Edge sets match exactly.
        let mut original: Vec<_> = topo
            .graph()
            .edges()
            .map(|e| (e.a, e.b, e.latency_ms.to_bits()))
            .collect();
        let mut reloaded: Vec<_> = back
            .edges()
            .map(|e| (e.a, e.b, e.latency_ms.to_bits()))
            .collect();
        original.sort_unstable();
        reloaded.sort_unstable();
        assert_eq!(original, reloaded);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# topo\ngraph 3 2\n\n0 1 5.5\n# middle\n1 2 2.25\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn malformed_inputs_are_rejected_with_line_numbers() {
        for (text, expect_line) in [
            ("nonsense\n", 1usize),
            ("graph x 1\n0 1 1.0\n", 1),
            ("graph 2 1\n0 1\n", 2),      // missing latency
            ("graph 2 1\n0 5 1.0\n", 2),  // endpoint out of range
            ("graph 2 1\n0 0 1.0\n", 2),  // self loop
            ("graph 2 1\n0 1 -3.0\n", 2), // bad latency
            ("graph 2 2\n0 1 1.0\n", 2),  // missing edge line
        ] {
            match read_graph(text.as_bytes()) {
                Err(GraphIoError::Parse { line, .. }) => {
                    assert_eq!(line, expect_line, "input {text:?}")
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::with_nodes(5);
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        let back = read_graph(&buf[..]).unwrap();
        assert_eq!(back.node_count(), 5);
        assert_eq!(back.edge_count(), 0);
    }

    #[test]
    fn error_display_is_informative() {
        let err = GraphIoError::Parse {
            line: 4,
            message: "oops".into(),
        };
        assert!(err.to_string().contains('4'));
    }
}
